//! Minimal offline stand-in for the `proptest` property-testing crate.
//!
//! The build container has no network access, so the real crates.io
//! `proptest` cannot be fetched. This shim supports the subset the
//! workspace's property tests use — the [`proptest!`] macro with
//! `arg in strategy` bindings, range and `collection::vec` strategies,
//! and `prop_assert!`/`prop_assert_eq!` — running each property over a
//! fixed number of deterministically seeded cases (seeded from the
//! test name, so failures reproduce). No shrinking: a failing case
//! reports its index and values instead.

/// Number of random cases each property is checked against.
pub const NUM_CASES: usize = 64;

pub mod test_runner {
    //! Deterministic random source and failure type.

    /// Failure raised by `prop_assert!`-style macros.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// splitmix64 generator — deterministic per test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the test name).
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// Something that can produce random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    impl Strategy for std::ops::Range<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            let span = self.end - self.start;
            self.start + (rng.next_u64() as usize) % span.max(1)
        }
    }

    impl Strategy for std::ops::Range<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut TestRng) -> i64 {
            let span = (self.end - self.start).max(1) as u64;
            self.start + (rng.next_u64() % span) as i64
        }
    }

    /// Fixed-length vector of draws from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub(crate) fn vec_strategy<S>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{vec_strategy, Strategy, VecStrategy};

    /// Vectors of exactly `len` draws from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        vec_strategy(element, len)
    }
}

pub mod prelude {
    //! Everything a property test module normally imports.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, …) { … }`
/// becomes a `#[test]` running [`NUM_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..$crate::NUM_CASES {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            $crate::NUM_CASES,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, "assertion failed: `{:?} == {:?}`", lhs, rhs);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        /// The shim's own smoke test: ranges stay in bounds.
        #[test]
        fn ranges_stay_in_bounds(
            x in -2.0f64..3.0,
            n in 1usize..7,
            v in crate::collection::vec(0.0f64..1.0, 5),
        ) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..7).contains(&n));
            prop_assert_eq!(v.len(), 5);
            prop_assert!(v.iter().all(|y| (0.0..1.0).contains(y)));
        }
    }
}
