//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The container this workspace builds in has no network access, so
//! the real crates.io `criterion` cannot be fetched. This shim
//! implements the small API subset the `mems-bench` targets use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`] — with plain wall-clock
//! timing and median-of-samples reporting instead of the full
//! statistical machinery. Swap the path dependency for the real crate
//! when networked benchmarking is wanted; no bench source changes are
//! needed.
//!
//! Two environment hooks drive the `tools/bench-summary.sh` perf
//! trajectory:
//!
//! - `MEMS_BENCH_QUICK=1` clamps the per-benchmark sample count to 3
//!   (fast smoke numbers instead of stable medians);
//! - `MEMS_BENCH_JSONL=<path>` appends one `"group/id": median`
//!   JSON-object line per benchmark, which the script assembles into
//!   `BENCH_<n>.json` so future PRs can diff named medians instead of
//!   quoting prose.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Entry point handed to each registered benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, id, self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one closure under the given id.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let qualified = format!("{}/{id}", self.name);
        run_bench(id, &qualified, self.sample_size, f);
        self
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(self) {}
}

fn run_bench<F>(id: &str, qualified: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let samples = if std::env::var_os("MEMS_BENCH_QUICK").is_some() {
        samples.min(3)
    } else {
        samples
    };
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    let mut per_sample: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.elapsed = Duration::ZERO;
        b.iterations = 0;
        f(&mut b);
        if b.iterations > 0 {
            per_sample.push(b.elapsed.as_secs_f64() / b.iterations as f64);
        }
    }
    per_sample.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_sample.get(per_sample.len() / 2).copied().unwrap_or(0.0);
    eprintln!("  {id}: median {:.3e} s/iter ({samples} samples)", median);
    if let Some(path) = std::env::var_os("MEMS_BENCH_JSONL") {
        // One `"name": value` line per benchmark; bench-summary wraps
        // the lines into a JSON object. Failures to record must not
        // fail the bench itself.
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "\"{qualified}\": {median:e}");
        }
    }
}

/// Timing handle passed to the benchmarked closure.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Prevents the optimizer from discarding a value (re-export of the
/// `std` hint for API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group: `criterion_group!(benches, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
