//! Round-trip verification of generated models: compile with
//! `mems-hdl`, host in `mems-spice`, compare against the reference
//! data the model was extracted from.

use crate::error::{PxtError, Result};
use mems_hdl::eval::{AdScalar, DualReal, EvalEnv};
use mems_hdl::model::HdlModel;
use mems_numerics::Complex64;
use mems_spice::analysis::ac::{run_with_op, FreqSweep};
use mems_spice::analysis::dcop;
use mems_spice::circuit::Circuit;
use mems_spice::devices::{AcSpec, HdlDevice, VoltageSource};
use mems_spice::solver::SimOptions;
use mems_spice::wave::Waveform;

/// Evaluation probe: feeds fixed across values into a compiled
/// two-port model (electrical + mechanical) and records the
/// contributions (a test double for the simulator).
struct Probe {
    v_elec: f64,
    v_mech: f64,
    contributions: Vec<(usize, f64)>,
}

impl EvalEnv<DualReal> for Probe {
    fn n_grad(&self) -> usize {
        2
    }
    fn across(&self, branch: usize) -> DualReal {
        let v = if branch == 0 {
            self.v_elec
        } else {
            self.v_mech
        };
        DualReal::variable(v, 2, branch.min(1))
    }
    fn unknown(&self, _index: usize) -> DualReal {
        DualReal::constant(0.0, 2)
    }
    fn contribute(&mut self, branch: usize, value: DualReal) {
        self.contributions.push((branch, value.v));
    }
    fn residual(&mut self, _index: usize, _value: DualReal) {}
    fn report(&mut self, _message: &str) {}
}

/// Verifies a generated electromechanical model's static force
/// against reference samples `(voltage, displacement, force)`.
///
/// Drives the model to each displacement with a constant-velocity
/// transient (so its internal `integ` state reaches `x`), then reads
/// the DC force.
///
/// Returns the worst relative error.
///
/// # Errors
///
/// Propagates compile/elaboration/evaluation failures.
pub fn verify_static_force(source: &str, entity: &str, samples: &[(f64, f64, f64)]) -> Result<f64> {
    let model = HdlModel::compile(source, entity, None)?;
    let mut worst = 0.0f64;
    for &(v, x, f_ref) in samples {
        let mut inst = model.instantiate("dut", &[])?;
        // Prime at rest.
        let mut env = Probe {
            v_elec: 0.0,
            v_mech: 0.0,
            contributions: Vec::new(),
        };
        inst.eval_dc(&mut env)?;
        inst.commit_dc();
        // One backward-Euler step with velocity x/h integrates the
        // internal displacement to exactly x.
        let h = 1.0;
        let mut env = Probe {
            v_elec: v,
            v_mech: x / h,
            contributions: Vec::new(),
        };
        inst.eval_transient(
            h,
            h,
            mems_numerics::ode::IntegrationMethod::BackwardEuler,
            &mut env,
        )?;
        inst.commit_transient(h);
        // Read the settled force at zero velocity.
        let mut env = Probe {
            v_elec: v,
            v_mech: 0.0,
            contributions: Vec::new(),
        };
        inst.eval_dc(&mut env)?;
        let force = env
            .contributions
            .iter()
            .rev()
            .find(|(b, _)| *b == 1)
            .map(|(_, f)| *f)
            .ok_or_else(|| PxtError::BadFit("model contributed no mechanical force".into()))?;
        let rel = (force - f_ref).abs() / f_ref.abs().max(1e-300);
        worst = worst.max(rel);
    }
    Ok(worst)
}

/// Verifies a generated one-port admittance model against a reference
/// response `H(jω) = I/V` by AC-sweeping it in the circuit simulator.
///
/// Returns the worst relative magnitude error.
///
/// # Errors
///
/// Propagates compile and simulation failures.
pub fn verify_admittance_ac(
    source: &str,
    entity: &str,
    freqs: &[f64],
    reference: &[Complex64],
) -> Result<f64> {
    if freqs.len() != reference.len() {
        return Err(PxtError::BadRequest(
            "frequency/reference length mismatch".into(),
        ));
    }
    let model = HdlModel::compile(source, entity, None)?;
    let mut ckt = Circuit::new();
    let p = ckt.enode("p")?;
    let gnd = ckt.ground();
    ckt.add(VoltageSource::new("vs", p, gnd, Waveform::Dc(0.0)).with_ac(AcSpec::unit()))?;
    ckt.add(HdlDevice::new("dut", &model, &[], &[p, gnd])?)?;
    let sim = SimOptions::default();
    let op = dcop::solve(&mut ckt, &sim)?;
    let freq_list = FreqSweep::List(freqs.to_vec()).frequencies()?;
    let ac = run_with_op(&mut ckt, &freq_list, &op)?;
    // The source branch current equals −i(model) (KCL at node p, the
    // unit AC source forces V(p) = 1∠0).
    let i_src = ac
        .phasors("i(vs,0)")
        .ok_or_else(|| PxtError::Spice("missing source current trace".into()))?;
    let scale = reference
        .iter()
        .map(|z| z.abs())
        .fold(0.0, f64::max)
        .max(1e-300);
    let mut worst = 0.0f64;
    for (i, r) in i_src.iter().zip(reference) {
        let h_model = -*i;
        worst = worst.max((h_model - *r).abs() / scale);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::dataflow::generate_dataflow_model;
    use crate::codegen::poly::generate_poly_capacitance_model;
    use crate::extract::Extraction1d;
    use crate::ratfit::RationalFit;
    use mems_numerics::poly::Polynomial;

    const E0: f64 = 8.8542e-12;
    const AREA: f64 = 1e-4;
    const GAP: f64 = 0.15e-3;

    #[test]
    fn poly_model_force_round_trips() {
        let xs: Vec<f64> = (0..17).map(|i| -4e-5 + 5e-6 * i as f64).collect();
        let cap = Extraction1d {
            param: "x".into(),
            quantity: "c".into(),
            xs: xs.clone(),
            ys: xs.iter().map(|x| E0 * AREA / (GAP + x)).collect(),
        };
        let model = generate_poly_capacitance_model("captran", &cap, 5, 1e-4).unwrap();
        let f = |v: f64, x: f64| -E0 * AREA * v * v / (2.0 * (GAP + x) * (GAP + x));
        let samples = [
            (10.0, 0.0, f(10.0, 0.0)),
            (5.0, 1e-5, f(5.0, 1e-5)),
            (15.0, -2e-5, f(15.0, -2e-5)),
        ];
        let err = verify_static_force(&model.source, "captran", &samples).unwrap();
        // The force is the *derivative* of the fit — one order looser.
        assert!(err < 5e-3, "worst force error {err}");
    }

    #[test]
    fn dataflow_model_matches_reference_ac() {
        let (r, c) = (1e3, 1e-6);
        let fit = RationalFit {
            num: Polynomial::new(vec![0.0, c]),
            den: Polynomial::new(vec![1.0, r * c]),
            max_rel_error: 0.0,
        };
        let model = generate_dataflow_model("yrc", &fit).unwrap();
        let freqs: Vec<f64> = (0..12).map(|i| 10.0 * 2f64.powi(i)).collect();
        let reference: Vec<Complex64> = freqs
            .iter()
            .map(|&f| {
                let s = Complex64::new(0.0, 2.0 * std::f64::consts::PI * f);
                s * c / (s * (r * c) + Complex64::ONE)
            })
            .collect();
        let err = verify_admittance_ac(&model.source, "yrc", &freqs, &reference).unwrap();
        assert!(err < 1e-6, "worst AC error {err}");
    }
}
