//! Concrete FE-backed extraction recipes for the paper's transducer:
//! capacitance vs displacement and force vs (voltage, displacement),
//! from electrostatic field solutions of the plate-gap problem.
//!
//! This is the paper's Fig. 6 workflow: "Figure 6 shows PXT being used
//! to calculate the electrostatic force on the movable electrode of
//! the electrostatic transducer of figure 2a."

use crate::error::Result;
use crate::extract::{extract_1d, extract_2d, Extraction1d, Extraction2d};
use mems_fem::maxwell::{maxwell_force_y, parallel_plate_problem};

/// Geometry/meshing description of the plate-gap device under test.
#[derive(Debug, Clone)]
pub struct PlateGapDut {
    /// Plate width [m] (in-plane).
    pub width: f64,
    /// Out-of-plane depth [m]; area `A = width × depth`.
    pub depth: f64,
    /// Rest gap `d` [m].
    pub gap: f64,
    /// Elements across the width.
    pub nx: usize,
    /// Elements across the gap.
    pub ny: usize,
}

impl PlateGapDut {
    /// The paper's Table 4 device: `A = 1 cm²` (1 cm × 1 cm plate),
    /// `d = 0.15 mm`, meshed 10 × 8.
    pub fn table4() -> Self {
        PlateGapDut {
            width: 0.01,
            depth: 0.01,
            gap: 0.15e-3,
            nx: 10,
            ny: 8,
        }
    }

    /// Plate area [m²].
    pub fn area(&self) -> f64 {
        self.width * self.depth
    }

    /// Solves the field at a given displacement and voltage, returning
    /// the total force on the moving plate [N] (negative = attraction
    /// opposing gap opening, matching Table 3's sign).
    ///
    /// # Errors
    ///
    /// Propagates FE failures.
    pub fn force(&self, voltage: f64, displacement: f64) -> Result<f64> {
        let g = self.gap + displacement;
        let problem = parallel_plate_problem(self.width, g, self.nx, self.ny, 0.0, voltage)?;
        let field = problem.solve()?;
        let per_depth = maxwell_force_y(&field, g * 0.5);
        Ok(per_depth * self.depth)
    }

    /// Solves the field and returns the capacitance [F] at a given
    /// displacement.
    ///
    /// # Errors
    ///
    /// Propagates FE failures.
    pub fn capacitance(&self, displacement: f64) -> Result<f64> {
        let g = self.gap + displacement;
        let v_probe = 1.0;
        let problem = parallel_plate_problem(self.width, g, self.nx, self.ny, 0.0, v_probe)?;
        let field = problem.solve()?;
        Ok(field.capacitance_per_depth(v_probe) * self.depth)
    }
}

/// Extracts `C(x)` over a displacement sweep.
///
/// # Errors
///
/// Propagates sweep and FE failures.
pub fn capacitance_vs_displacement(
    dut: &PlateGapDut,
    displacements: &[f64],
) -> Result<Extraction1d> {
    extract_1d("displacement", "capacitance", displacements, |x| {
        dut.capacitance(x)
    })
}

/// Extracts `F(V, x)` over a (voltage, displacement) grid.
///
/// # Errors
///
/// Propagates sweep and FE failures.
pub fn force_vs_voltage_displacement(
    dut: &PlateGapDut,
    voltages: &[f64],
    displacements: &[f64],
) -> Result<Extraction2d> {
    extract_2d(
        "voltage",
        "displacement",
        "force",
        voltages,
        displacements,
        |v, x| dut.force(v, x),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_fem::EPS0;

    #[test]
    fn fig6_force_matches_table3_at_zero_displacement() {
        // "The result obtained using the parameters in table 4 and
        // zero displacement (x=0) corresponds to the force in table 3."
        let dut = PlateGapDut::table4();
        let f = dut.force(10.0, 0.0).unwrap();
        let expect = -EPS0 * dut.area() * 100.0 / (2.0 * dut.gap * dut.gap);
        assert!(
            (f - expect).abs() < expect.abs() * 1e-9,
            "{f:e} vs {expect:e}"
        );
    }

    #[test]
    fn capacitance_matches_analytic_over_sweep() {
        let dut = PlateGapDut::table4();
        let xs = [-2e-5, 0.0, 2e-5, 5e-5];
        let e = capacitance_vs_displacement(&dut, &xs).unwrap();
        for (x, c) in e.xs.iter().zip(&e.ys) {
            let expect = EPS0 * dut.area() / (dut.gap + x);
            assert!(
                (c - expect).abs() < expect * 1e-6,
                "C({x}) = {c:e} vs {expect:e}"
            );
        }
    }

    #[test]
    fn force_grid_follows_v2_over_g2() {
        let dut = PlateGapDut {
            nx: 6,
            ny: 6,
            ..PlateGapDut::table4()
        };
        let grid = force_vs_voltage_displacement(&dut, &[5.0, 10.0], &[0.0, 3e-5]).unwrap();
        let f = |v: f64, x: f64| -EPS0 * dut.area() * v * v / (2.0 * (dut.gap + x).powi(2));
        for (i, &v) in grid.xs.iter().enumerate() {
            for (j, &x) in grid.ys.iter().enumerate() {
                let got = grid.zs[i * grid.ys.len() + j];
                let expect = f(v, x);
                assert!(
                    (got - expect).abs() < expect.abs() * 1e-8,
                    "F({v},{x}) = {got:e} vs {expect:e}"
                );
            }
        }
    }
}
