//! Rational transfer-function fitting of sampled frequency responses
//! (Levy's weighted linear least squares), with pole-stability
//! checking via polynomial roots.
//!
//! The paper: "Harmonic FE analysis produces real and imaginary data
//! of DOFs as discrete functions of frequencies … A polynomial filter
//! is fitted to such a macro model, and thus generating a data flow
//! HDL-A model."

use crate::error::{PxtError, Result};
use mems_fem::FrequencyResponse;
use mems_numerics::dense::DenseMatrix;
use mems_numerics::poly::Polynomial;
use mems_numerics::qr::least_squares;
use mems_numerics::Complex64;

/// A fitted rational transfer function
/// `H(s) = num(s) / den(s)` with `den(0) = 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct RationalFit {
    /// Numerator coefficients (ascending powers of `s`).
    pub num: Polynomial,
    /// Denominator coefficients (ascending, constant term 1).
    pub den: Polynomial,
    /// Maximum relative magnitude error over the fitted samples.
    pub max_rel_error: f64,
}

impl RationalFit {
    /// Evaluates the fit at a frequency [Hz].
    pub fn eval(&self, freq: f64) -> Complex64 {
        let s = Complex64::new(0.0, 2.0 * std::f64::consts::PI * freq);
        self.num.eval_complex(s) / self.den.eval_complex(s)
    }

    /// The poles (roots of the denominator).
    ///
    /// # Errors
    ///
    /// Propagates root-finding failures.
    pub fn poles(&self) -> Result<Vec<Complex64>> {
        Ok(self.den.roots()?)
    }

    /// Returns `true` when every pole lies strictly in the left half
    /// plane.
    ///
    /// # Errors
    ///
    /// Propagates root-finding failures.
    pub fn is_stable(&self) -> Result<bool> {
        Ok(self.poles()?.iter().all(|p| p.re < 0.0))
    }

    /// Evaluates the fit over a frequency grid.
    pub fn response(&self, freqs: &[f64]) -> FrequencyResponse {
        FrequencyResponse::new(
            freqs.to_vec(),
            freqs.iter().map(|&f| self.eval(f)).collect(),
        )
    }
}

/// Fits `H(s) = N(s)/D(s)` with `deg N = num_deg`, `deg D = den_deg`
/// to a sampled response, using Levy's linearization with relative
/// weighting and internal frequency scaling for conditioning.
///
/// # Errors
///
/// - [`PxtError::BadRequest`] when there are too few samples;
/// - fitting failures from the least-squares solve.
pub fn fit_rational(
    response: &FrequencyResponse,
    num_deg: usize,
    den_deg: usize,
) -> Result<RationalFit> {
    let n_unknowns = (num_deg + 1) + den_deg;
    if response.len() * 2 < n_unknowns {
        return Err(PxtError::BadRequest(format!(
            "{} samples cannot determine {} coefficients",
            response.len(),
            n_unknowns
        )));
    }
    if den_deg == 0 {
        return Err(PxtError::BadRequest(
            "denominator degree must be at least 1".into(),
        ));
    }
    // Frequency scaling: s' = s / w_ref keeps the Vandermonde terms
    // of similar magnitude.
    let w_ref = reference_omega(&response.freqs);
    let rows = response.len() * 2;
    let mut a = DenseMatrix::zeros(rows, n_unknowns);
    let mut b = vec![0.0; rows];
    for (k, (&f, &h)) in response.freqs.iter().zip(&response.h).enumerate() {
        let w = 2.0 * std::f64::consts::PI * f / w_ref;
        let s = Complex64::new(0.0, w);
        // Relative weighting tames dynamic range.
        let weight = 1.0 / h.abs().max(1e-300);
        // Σ b_j s^j − H·Σ_{i≥1} d_i s^i = H
        let mut s_pow = Complex64::ONE;
        for j in 0..=num_deg {
            a[(2 * k, j)] = s_pow.re * weight;
            a[(2 * k + 1, j)] = s_pow.im * weight;
            s_pow *= s;
        }
        let mut s_pow = s;
        for i in 0..den_deg {
            let t = -(h * s_pow);
            a[(2 * k, num_deg + 1 + i)] = t.re * weight;
            a[(2 * k + 1, num_deg + 1 + i)] = t.im * weight;
            s_pow *= s;
        }
        b[2 * k] = h.re * weight;
        b[2 * k + 1] = h.im * weight;
    }
    let coeffs = least_squares(&a, &b)?;
    // Unscale: b_j ← b_j / w_ref^j, d_i ← d_i / w_ref^i.
    let mut num = Vec::with_capacity(num_deg + 1);
    for (j, c) in coeffs[..=num_deg].iter().enumerate() {
        num.push(c / w_ref.powi(j as i32));
    }
    let mut den = vec![1.0];
    for (i, c) in coeffs[num_deg + 1..].iter().enumerate() {
        den.push(c / w_ref.powi(i as i32 + 1));
    }
    let mut fit = RationalFit {
        num: Polynomial::new(num),
        den: Polynomial::new(den),
        max_rel_error: 0.0,
    };
    fit.max_rel_error = fit.response(&response.freqs).max_rel_error(response);
    Ok(fit)
}

/// Reflects unstable poles into the left half plane (a vector-fitting
/// style repair) and refits the numerator only.
///
/// # Errors
///
/// Propagates root-finding and least-squares failures.
pub fn stabilize(fit: &RationalFit, response: &FrequencyResponse) -> Result<RationalFit> {
    let poles = fit.poles()?;
    if poles.iter().all(|p| p.re < 0.0) {
        return Ok(fit.clone());
    }
    let flipped: Vec<Complex64> = poles
        .iter()
        .map(|p| {
            if p.re >= 0.0 {
                Complex64::new(-p.re.max(1e-6 * p.abs()), p.im)
            } else {
                *p
            }
        })
        .collect();
    // Rebuild the denominator from the flipped poles (monic → scale to
    // den(0) = 1).
    let mut den = vec![Complex64::ONE];
    for p in &flipped {
        // den ← den·(s − p)
        let mut next = vec![Complex64::ZERO; den.len() + 1];
        for (i, &c) in den.iter().enumerate() {
            next[i + 1] += c;
            next[i] += c * (-*p);
        }
        den = next;
    }
    let d0 = den[0];
    let den_real: Vec<f64> = den.iter().map(|c| (*c / d0).re).collect();
    let den_poly = Polynomial::new(den_real);
    // Refit numerator with the denominator frozen: N(s) = H·D(s).
    let num_deg = fit.num.degree();
    let rows = response.len() * 2;
    let mut a = DenseMatrix::zeros(rows, num_deg + 1);
    let mut b = vec![0.0; rows];
    for (k, (&f, &h)) in response.freqs.iter().zip(&response.h).enumerate() {
        let s = Complex64::new(0.0, 2.0 * std::f64::consts::PI * f);
        let weight = 1.0 / h.abs().max(1e-300);
        let mut s_pow = Complex64::ONE;
        for j in 0..=num_deg {
            a[(2 * k, j)] = s_pow.re * weight;
            a[(2 * k + 1, j)] = s_pow.im * weight;
            s_pow *= s;
        }
        let target = h * den_poly.eval_complex(s);
        b[2 * k] = target.re * weight;
        b[2 * k + 1] = target.im * weight;
    }
    let num = least_squares(&a, &b)?;
    let mut out = RationalFit {
        num: Polynomial::new(num),
        den: den_poly,
        max_rel_error: 0.0,
    };
    out.max_rel_error = out.response(&response.freqs).max_rel_error(response);
    Ok(out)
}

fn reference_omega(freqs: &[f64]) -> f64 {
    // Geometric mean of the positive frequencies.
    let logs: Vec<f64> = freqs
        .iter()
        .filter(|f| **f > 0.0)
        .map(|f| (2.0 * std::f64::consts::PI * f).ln())
        .collect();
    if logs.is_empty() {
        1.0
    } else {
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(h: impl Fn(Complex64) -> Complex64, freqs: &[f64]) -> FrequencyResponse {
        FrequencyResponse::new(
            freqs.to_vec(),
            freqs
                .iter()
                .map(|&f| h(Complex64::new(0.0, 2.0 * std::f64::consts::PI * f)))
                .collect(),
        )
    }

    fn log_freqs(lo: f64, hi: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| lo * (hi / lo).powf(i as f64 / (n as f64 - 1.0)))
            .collect()
    }

    #[test]
    fn recovers_first_order_lowpass() {
        let tau = 1e-3;
        let resp = sample(
            |s| (s * tau + Complex64::ONE).recip(),
            &log_freqs(1.0, 1e4, 25),
        );
        let fit = fit_rational(&resp, 0, 1).unwrap();
        assert!(fit.max_rel_error < 1e-9, "err {}", fit.max_rel_error);
        assert!((fit.num.coeffs()[0] - 1.0).abs() < 1e-9);
        assert!((fit.den.coeffs()[1] - tau).abs() < tau * 1e-9);
        assert!(fit.is_stable().unwrap());
    }

    #[test]
    fn recovers_second_order_resonator() {
        // The Table 4 resonator compliance: X/F = 1/(m s² + α s + k).
        let (m, alpha, k) = (1e-4, 40e-3, 200.0);
        let resp = sample(
            |s| (s * s * m + s * alpha + Complex64::from_re(k)).recip(),
            &log_freqs(10.0, 2e3, 40),
        );
        let fit = fit_rational(&resp, 0, 2).unwrap();
        assert!(fit.max_rel_error < 1e-8, "err {}", fit.max_rel_error);
        // den(0)=1 normalization → den = [1, α/k, m/k].
        let d = fit.den.coeffs();
        assert!((d[1] - alpha / k).abs() < alpha / k * 1e-6);
        assert!((d[2] - m / k).abs() < m / k * 1e-6);
        // Poles at the damped resonance.
        let poles = fit.poles().unwrap();
        let wd = (k / m - (alpha / (2.0 * m)).powi(2)).sqrt();
        for p in poles {
            assert!(p.re < 0.0);
            assert!((p.im.abs() - wd).abs() < wd * 1e-6);
        }
    }

    #[test]
    fn fits_with_zeros() {
        // Band-stop-ish: H = (1 + s²·τ²)/(1 + 3sτ + s²τ²).
        let tau = 1e-4;
        let resp = sample(
            |s| {
                let st = s * tau;
                (st * st + Complex64::ONE) / (st * st + st * 3.0 + Complex64::ONE)
            },
            &log_freqs(10.0, 1e5, 40),
        );
        let fit = fit_rational(&resp, 2, 2).unwrap();
        assert!(fit.max_rel_error < 1e-8, "err {}", fit.max_rel_error);
    }

    #[test]
    fn rejects_underdetermined() {
        let resp = sample(|_| Complex64::ONE, &[1.0, 2.0]);
        assert!(fit_rational(&resp, 3, 3).is_err());
        assert!(fit_rational(&resp, 0, 0).is_err());
    }

    #[test]
    fn stabilize_flips_poles() {
        // Construct a fit with a RHP pole by hand: den = 1 − s·τ.
        let tau = 1e-3;
        let resp = sample(
            |s| (s * tau + Complex64::ONE).recip(),
            &log_freqs(1.0, 1e4, 30),
        );
        let bad = RationalFit {
            num: Polynomial::new(vec![1.0]),
            den: Polynomial::new(vec![1.0, -tau]),
            max_rel_error: f64::NAN,
        };
        assert!(!bad.is_stable().unwrap());
        let fixed = stabilize(&bad, &resp).unwrap();
        assert!(fixed.is_stable().unwrap());
        // The repaired fit matches the (stable) reference response.
        assert!(fixed.max_rel_error < 1e-6, "err {}", fixed.max_rel_error);
    }
}
