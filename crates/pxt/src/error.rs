//! Error type for the parameter-extraction tool chain.

use std::fmt;

/// Errors produced by extraction, fitting, code generation or
/// verification.
#[derive(Debug, Clone, PartialEq)]
pub enum PxtError {
    /// Numerical failure (FE solve, fitting).
    Numerics(String),
    /// Generated model failed to compile or elaborate.
    Hdl(String),
    /// Verification simulation failed.
    Spice(String),
    /// Invalid extraction request.
    BadRequest(String),
    /// The fitted model is unusable (unstable poles, fit error above
    /// threshold).
    BadFit(String),
}

impl fmt::Display for PxtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PxtError::Numerics(m) => write!(f, "numerics: {m}"),
            PxtError::Hdl(m) => write!(f, "hdl: {m}"),
            PxtError::Spice(m) => write!(f, "spice: {m}"),
            PxtError::BadRequest(m) => write!(f, "bad request: {m}"),
            PxtError::BadFit(m) => write!(f, "bad fit: {m}"),
        }
    }
}

impl std::error::Error for PxtError {}

impl From<mems_numerics::NumericsError> for PxtError {
    fn from(e: mems_numerics::NumericsError) -> Self {
        PxtError::Numerics(e.to_string())
    }
}

impl From<mems_hdl::HdlError> for PxtError {
    fn from(e: mems_hdl::HdlError) -> Self {
        PxtError::Hdl(e.to_string())
    }
}

impl From<mems_spice::SpiceError> for PxtError {
    fn from(e: mems_spice::SpiceError) -> Self {
        PxtError::Spice(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, PxtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: PxtError = mems_numerics::NumericsError::Singular { index: 2 }.into();
        assert!(e.to_string().contains("pivot 2"));
        let e: PxtError = mems_hdl::HdlError::Eval("boom".into()).into();
        assert!(e.to_string().contains("boom"));
    }
}
