//! Boundary-condition sweep driver.
//!
//! Mirrors the paper's PXT workflow: "By iterating the variation of
//! boundary conditions and extracting the parameter of interest, a
//! piecewise linear behavioral macro model is created."

use crate::error::{PxtError, Result};
use mems_numerics::pwl::{Pwl1, Pwl2};

/// A 1-D extraction: a macro-parameter sampled against one boundary
/// condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Extraction1d {
    /// Swept boundary-condition name (e.g. `displacement`).
    pub param: String,
    /// Extracted quantity name (e.g. `capacitance`).
    pub quantity: String,
    /// Sweep values.
    pub xs: Vec<f64>,
    /// Extracted values.
    pub ys: Vec<f64>,
}

impl Extraction1d {
    /// Builds the piecewise-linear macro model from the samples.
    ///
    /// # Errors
    ///
    /// Propagates table-validation failures (non-monotonic sweep).
    pub fn to_pwl(&self) -> Result<Pwl1> {
        Ok(Pwl1::new(self.xs.clone(), self.ys.clone())?)
    }
}

/// A 2-D extraction: a macro-parameter over a boundary-condition grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Extraction2d {
    /// First swept parameter (rows).
    pub param_x: String,
    /// Second swept parameter (columns).
    pub param_y: String,
    /// Extracted quantity name.
    pub quantity: String,
    /// Row axis.
    pub xs: Vec<f64>,
    /// Column axis.
    pub ys: Vec<f64>,
    /// Row-major values `zs[i·ys.len() + j] = q(xs[i], ys[j])`.
    pub zs: Vec<f64>,
}

impl Extraction2d {
    /// Builds the bilinear macro model from the grid.
    ///
    /// # Errors
    ///
    /// Propagates table-validation failures.
    pub fn to_pwl(&self) -> Result<Pwl2> {
        Ok(Pwl2::new(
            self.xs.clone(),
            self.ys.clone(),
            self.zs.clone(),
        )?)
    }

    /// Extracts the row `q(·, y)` nearest a column value.
    pub fn row_at(&self, y: f64) -> Extraction1d {
        let j = self
            .ys
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (*a - y)
                    .abs()
                    .partial_cmp(&(*b - y).abs())
                    .expect("finite axis")
            })
            .map(|(j, _)| j)
            .unwrap_or(0);
        Extraction1d {
            param: self.param_x.clone(),
            quantity: self.quantity.clone(),
            xs: self.xs.clone(),
            ys: self
                .xs
                .iter()
                .enumerate()
                .map(|(i, _)| self.zs[i * self.ys.len() + j])
                .collect(),
        }
    }
}

/// Sweeps one boundary condition, evaluating `measure` per point.
///
/// # Errors
///
/// Requires at least two points; propagates measurement failures with
/// the failing sweep value attached.
pub fn extract_1d(
    param: &str,
    quantity: &str,
    values: &[f64],
    mut measure: impl FnMut(f64) -> Result<f64>,
) -> Result<Extraction1d> {
    if values.len() < 2 {
        return Err(PxtError::BadRequest(format!(
            "sweep of `{param}` needs at least two points, got {}",
            values.len()
        )));
    }
    let mut ys = Vec::with_capacity(values.len());
    for &v in values {
        let y = measure(v).map_err(|e| {
            PxtError::Numerics(format!("measuring `{quantity}` at {param} = {v}: {e}"))
        })?;
        ys.push(y);
    }
    Ok(Extraction1d {
        param: param.to_string(),
        quantity: quantity.to_string(),
        xs: values.to_vec(),
        ys,
    })
}

/// Sweeps a boundary-condition grid.
///
/// # Errors
///
/// Same contract as [`extract_1d`].
pub fn extract_2d(
    param_x: &str,
    param_y: &str,
    quantity: &str,
    xs: &[f64],
    ys: &[f64],
    mut measure: impl FnMut(f64, f64) -> Result<f64>,
) -> Result<Extraction2d> {
    if xs.len() < 2 || ys.len() < 2 {
        return Err(PxtError::BadRequest(
            "2-D sweep needs at least a 2x2 grid".into(),
        ));
    }
    let mut zs = Vec::with_capacity(xs.len() * ys.len());
    for &x in xs {
        for &y in ys {
            let z = measure(x, y).map_err(|e| {
                PxtError::Numerics(format!(
                    "measuring `{quantity}` at ({param_x}, {param_y}) = ({x}, {y}): {e}"
                ))
            })?;
            zs.push(z);
        }
    }
    Ok(Extraction2d {
        param_x: param_x.to_string(),
        param_y: param_y.to_string(),
        quantity: quantity.to_string(),
        xs: xs.to_vec(),
        ys: ys.to_vec(),
        zs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_1d_and_table() {
        let e = extract_1d("x", "f", &[0.0, 1.0, 2.0], |x| Ok(x * x)).unwrap();
        assert_eq!(e.ys, vec![0.0, 1.0, 4.0]);
        let t = e.to_pwl().unwrap();
        assert_eq!(t.eval(1.5), 2.5);
    }

    #[test]
    fn sweep_rejects_single_point() {
        assert!(extract_1d("x", "f", &[1.0], Ok).is_err());
    }

    #[test]
    fn failures_carry_context() {
        let err = extract_1d("gap", "c", &[1.0, -1.0], |x| {
            if x < 0.0 {
                Err(PxtError::BadRequest("negative gap".into()))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("gap = -1"));
    }

    #[test]
    fn sweep_2d_and_row_extraction() {
        let e = extract_2d("v", "x", "f", &[1.0, 2.0, 3.0], &[0.0, 1.0], |v, x| {
            Ok(v * v + 10.0 * x)
        })
        .unwrap();
        assert_eq!(e.zs.len(), 6);
        let t = e.to_pwl().unwrap();
        assert_eq!(t.eval(2.0, 0.0), 4.0);
        assert_eq!(t.eval(2.0, 1.0), 14.0);
        let row = e.row_at(1.0);
        assert_eq!(row.ys, vec![11.0, 14.0, 19.0]);
        let row0 = e.row_at(-5.0);
        assert_eq!(row0.ys, vec![1.0, 4.0, 9.0]);
    }
}
