//! # mems-pxt — parameter extraction and HDL model generation
//!
//! Reproduction of the paper's PXT tool: "A physical parameter
//! extractor (PXT) based on the numerical integration of nodal (and
//! element) degrees of freedom has been developed, and interfaces
//! with ANSYS." Here the FE back end is `mems-fem` and the generated
//! models are compiled by `mems-hdl` and co-simulated in `mems-spice`.
//!
//! Pipeline:
//!
//! 1. [`extract`] sweeps boundary conditions over a device under test
//!    ([`recipes`] provides the paper's plate-gap transducer);
//! 2. static sweeps become macro models: closed-form polynomial
//!    ([`codegen::poly`]) or piecewise-linear tables ([`codegen::pwl`]);
//! 3. harmonic responses are fitted as rational transfer functions
//!    ([`ratfit`]) and realized as data-flow state-space models
//!    ([`codegen::dataflow`]);
//! 4. [`verify`] closes the loop: generated text → compile → simulate
//!    → compare against the reference data.
//!
//! # Example
//!
//! ```
//! use mems_pxt::recipes::{PlateGapDut, capacitance_vs_displacement};
//! use mems_pxt::codegen::poly::generate_poly_capacitance_model;
//!
//! # fn main() -> mems_pxt::Result<()> {
//! let dut = PlateGapDut::table4();
//! let sweep: Vec<f64> = (0..7).map(|i| -3e-5 + 1e-5 * i as f64).collect();
//! let table = capacitance_vs_displacement(&dut, &sweep)?;
//! let model = generate_poly_capacitance_model("captran", &table, 4, 1e-3)?;
//! assert!(model.source.contains("ENTITY captran"));
//! # Ok(())
//! # }
//! ```

pub mod codegen;
pub mod error;
pub mod extract;
pub mod ratfit;
pub mod recipes;
pub mod verify;

pub use error::{PxtError, Result};
pub use extract::{Extraction1d, Extraction2d};
pub use ratfit::{fit_rational, stabilize, RationalFit};
