//! HDL-A model generation from extraction results.
//!
//! Three generators, matching the paper's §"Parameter extraction and
//! model generation":
//!
//! - [`poly`] — closed-form polynomial models (`C(x)`, `F = ½V²·C'(x)`)
//!   fitted from static sweeps;
//! - [`pwl`] — piecewise-linear table models ("a piecewise linear
//!   behavioral macro model is created") using the `table1d` builtin;
//! - [`dataflow`] — state-space models from rational transfer-function
//!   fits of harmonic analyses ("a data flow HDL-A model").

pub mod dataflow;
pub mod poly;
pub mod pwl;

use mems_hdl::ast::Expr;
use mems_numerics::poly::ScaledPolynomial;

/// Builds the Horner-form expression of a scaled polynomial in the
/// named variable: `c0 + u·(c1 + u·(…))` with `u = (x − shift)/scale`.
pub fn horner_expr(p: &ScaledPolynomial, var: &str) -> Expr {
    let u = Expr::div(
        Expr::sub(Expr::ident(var), Expr::num(p.shift)),
        Expr::num(p.scale),
    );
    let coeffs = p.poly.coeffs();
    let mut acc = Expr::num(*coeffs.last().expect("polynomial has coefficients"));
    for &c in coeffs.iter().rev().skip(1) {
        acc = Expr::add(Expr::num(c), Expr::mul(u.clone(), acc));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_hdl::symbolic::eval_closed;
    use mems_numerics::poly::polyfit;

    #[test]
    fn horner_expression_evaluates_like_polynomial() {
        let xs: Vec<f64> = (0..12).map(|i| 1.0 + 0.25 * i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 - x + 0.5 * x * x).collect();
        let fit = polyfit(&xs, &ys, 2).unwrap();
        let e = horner_expr(&fit, "x");
        for &x in &xs {
            let got = eval_closed(&e, &[("x", x)]).unwrap();
            assert!((got - fit.eval(x)).abs() < 1e-12);
        }
    }
}
