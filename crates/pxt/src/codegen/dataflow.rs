//! Data-flow (state-space) model generation from rational
//! transfer-function fits — the paper's "polynomial filter is fitted
//! to such a macro model, and thus generating a data flow HDL-A
//! model".
//!
//! The fitted admittance `H(s) = I(s)/V(s)` is realized in controller
//! canonical form with `UNKNOWN` state variables and `EQUATION`
//! blocks:
//!
//! ```text
//! x₁' = x₂, …, x_{n−1}' = x_n
//! x_n' = u − a₀x₁ − … − a_{n−1}x_n        (monic denominator)
//! y    = c₀x₁ + … + c_{n−1}x_n + k·u     (k = direct feedthrough)
//! ```
//!
//! The `dc` context carries the equilibrium equations instead of the
//! `integ` forms, so the DC gain is `H(0)` exactly.

use crate::error::{PxtError, Result};
use crate::ratfit::RationalFit;
use mems_hdl::ast::Expr;
use mems_hdl::ast::{
    Architecture, Block, BranchRef, Ctx, Entity, EquationStmt, Module, ObjectDecl, ObjectKind,
    PinDecl, Relation, Stmt,
};
use mems_hdl::print::print_module;
use mems_hdl::span::Span;

/// A generated data-flow model.
#[derive(Debug, Clone)]
pub struct DataflowModel {
    /// Entity name.
    pub name: String,
    /// State dimension.
    pub order: usize,
    /// Direct feedthrough term.
    pub feedthrough: f64,
    /// Generated HDL-A source.
    pub source: String,
}

/// Generates a one-port admittance model `i = H(s)·v` from a rational
/// fit.
///
/// # Errors
///
/// - [`PxtError::BadFit`] for unstable fits (stabilize first) or
///   improper ones (`deg N > deg D`).
pub fn generate_dataflow_model(name: &str, fit: &RationalFit) -> Result<DataflowModel> {
    if !fit.is_stable()? {
        return Err(PxtError::BadFit(
            "transfer function has unstable poles; run `stabilize` first".into(),
        ));
    }
    let n = fit.den.degree();
    let m = fit.num.degree();
    if m > n {
        return Err(PxtError::BadFit(format!(
            "improper transfer function (deg N = {m} > deg D = {n})"
        )));
    }
    if n == 0 {
        return Err(PxtError::BadFit("constant transfer function".into()));
    }
    // Normalize the denominator monic: D(s) = a0 + a1·s + … + s^n.
    let dn = *fit.den.coeffs().last().expect("nonempty denominator");
    let a: Vec<f64> = fit.den.coeffs()[..n].iter().map(|c| c / dn).collect();
    let mut c: Vec<f64> = fit.num.coeffs().iter().map(|v| v / dn).collect();
    c.resize(n + 1, 0.0);
    // Split direct feedthrough when deg N == deg D: N = k·D + N'.
    let k = c[n];
    let c_state: Vec<f64> = (0..n).map(|i| c[i] - k * a[i]).collect();

    let sp = Span::default();
    let entity = Entity {
        name: name.to_string(),
        generics: vec![],
        pins: vec![
            PinDecl {
                name: "p".into(),
                nature: "electrical".into(),
                span: sp,
            },
            PinDecl {
                name: "q".into(),
                nature: "electrical".into(),
                span: sp,
            },
        ],
        span: sp,
    };

    let state_name = |i: usize| format!("x{}", i + 1);

    // y = Σ c_i·x_{i+1} + k·u
    let mut y = Expr::mul(Expr::num(k), Expr::ident("u"));
    for (i, &ci) in c_state.iter().enumerate() {
        y = Expr::add(y, Expr::mul(Expr::num(ci), Expr::ident(&state_name(i))));
    }
    let stmts = vec![
        Stmt::Assign {
            target: "u".into(),
            value: Expr::Branch(BranchRef {
                pin_a: "p".into(),
                pin_b: "q".into(),
                quantity: "v".into(),
                span: sp,
            }),
            span: sp,
        },
        Stmt::Assign {
            target: "y".into(),
            value: y,
            span: sp,
        },
        Stmt::Contribute {
            branch: BranchRef {
                pin_a: "p".into(),
                pin_b: "q".into(),
                quantity: "i".into(),
                span: sp,
            },
            value: Expr::ident("y"),
            span: sp,
        },
    ];

    // x_n' = u − Σ a_i·x_{i+1}
    let mut xdot_n = Expr::ident("u");
    for (i, &ai) in a.iter().enumerate() {
        xdot_n = Expr::sub(
            xdot_n,
            Expr::mul(Expr::num(ai), Expr::ident(&state_name(i))),
        );
    }
    // Dynamic equations (ac, transient): xᵢ == integ(xᵢ₊₁'), chain form.
    let mut dyn_eqs = Vec::with_capacity(n);
    for i in 0..n - 1 {
        dyn_eqs.push(EquationStmt {
            lhs: Expr::ident(&state_name(i)),
            rhs: Expr::call("integ", vec![Expr::ident(&state_name(i + 1))]),
            span: sp,
        });
    }
    dyn_eqs.push(EquationStmt {
        lhs: Expr::ident(&state_name(n - 1)),
        rhs: Expr::call("integ", vec![xdot_n.clone()]),
        span: sp,
    });
    // Equilibrium equations (dc): x₂ = … = x_n = 0, x_n' = 0.
    let mut dc_eqs = Vec::with_capacity(n);
    for i in 1..n {
        dc_eqs.push(EquationStmt {
            lhs: Expr::ident(&state_name(i)),
            rhs: Expr::num(0.0),
            span: sp,
        });
    }
    dc_eqs.push(EquationStmt {
        lhs: xdot_n,
        rhs: Expr::num(0.0),
        span: sp,
    });

    let architecture = Architecture {
        name: "pxt".into(),
        entity: name.to_string(),
        decls: vec![
            ObjectDecl {
                kind: ObjectKind::Unknown,
                names: (0..n).map(state_name).collect(),
                init: None,
                span: sp,
            },
            ObjectDecl {
                kind: ObjectKind::Variable,
                names: vec!["u".into(), "y".into()],
                init: None,
                span: sp,
            },
        ],
        relation: Relation {
            blocks: vec![
                Block::Procedural {
                    contexts: vec![Ctx::Dc, Ctx::Ac, Ctx::Transient],
                    stmts,
                    span: sp,
                },
                Block::Equation {
                    contexts: vec![Ctx::Ac, Ctx::Transient],
                    equations: dyn_eqs,
                    span: sp,
                },
                Block::Equation {
                    contexts: vec![Ctx::Dc],
                    equations: dc_eqs,
                    span: sp,
                },
            ],
        },
        span: sp,
    };
    let source = print_module(&Module {
        entities: vec![entity],
        architectures: vec![architecture],
    });
    Ok(DataflowModel {
        name: name.to_string(),
        order: n,
        feedthrough: k,
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_hdl::model::HdlModel;
    use mems_numerics::poly::Polynomial;

    fn rc_admittance() -> RationalFit {
        // Series RC admittance: Y(s) = sC/(1 + sRC), R = 1 kΩ, C = 1 µF.
        let (r, c) = (1e3, 1e-6);
        RationalFit {
            num: Polynomial::new(vec![0.0, c]),
            den: Polynomial::new(vec![1.0, r * c]),
            max_rel_error: 0.0,
        }
    }

    #[test]
    fn generated_model_compiles_with_dae_blocks() {
        let model = generate_dataflow_model("yrc", &rc_admittance()).unwrap();
        assert_eq!(model.order, 1);
        let compiled = HdlModel::compile(&model.source, "yrc", None).unwrap();
        assert_eq!(compiled.compiled().n_unknowns, 1);
        assert_eq!(compiled.compiled().n_integ_sites, 1);
    }

    #[test]
    fn feedthrough_split_for_equal_degrees() {
        // H(s) = (2 + s)/(1 + s): k = 1, residue part 1/(1+s).
        let fit = RationalFit {
            num: Polynomial::new(vec![2.0, 1.0]),
            den: Polynomial::new(vec![1.0, 1.0]),
            max_rel_error: 0.0,
        };
        let model = generate_dataflow_model("ft", &fit).unwrap();
        assert!((model.feedthrough - 1.0).abs() < 1e-12);
        HdlModel::compile(&model.source, "ft", None).unwrap();
    }

    #[test]
    fn second_order_model_compiles() {
        // The Table 4 resonator compliance realized as an admittance.
        let (m, alpha, k) = (1e-4, 40e-3, 200.0);
        let fit = RationalFit {
            num: Polynomial::new(vec![1.0 / k]),
            den: Polynomial::new(vec![1.0, alpha / k, m / k]),
            max_rel_error: 0.0,
        };
        let model = generate_dataflow_model("res2", &fit).unwrap();
        assert_eq!(model.order, 2);
        let compiled = HdlModel::compile(&model.source, "res2", None).unwrap();
        assert_eq!(compiled.compiled().n_unknowns, 2);
    }

    #[test]
    fn unstable_and_improper_rejected() {
        let unstable = RationalFit {
            num: Polynomial::new(vec![1.0]),
            den: Polynomial::new(vec![1.0, -1.0]),
            max_rel_error: 0.0,
        };
        assert!(generate_dataflow_model("u", &unstable).is_err());
        let improper = RationalFit {
            num: Polynomial::new(vec![1.0, 2.0, 3.0]),
            den: Polynomial::new(vec![1.0, 1.0]),
            max_rel_error: 0.0,
        };
        assert!(generate_dataflow_model("i", &improper).is_err());
    }
}
