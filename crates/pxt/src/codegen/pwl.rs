//! Piecewise-linear table model generation — the paper's "piecewise
//! linear behavioral macro model", emitted as `table1d` lookups.

use crate::error::{PxtError, Result};
use crate::extract::{Extraction1d, Extraction2d};
use mems_hdl::ast::Expr;
use mems_hdl::ast::{
    Architecture, Block, BranchRef, Ctx, Entity, Module, ObjectDecl, ObjectKind, PinDecl, Relation,
    Stmt,
};
use mems_hdl::print::print_module;
use mems_hdl::span::Span;

/// A generated table-based model.
#[derive(Debug, Clone)]
pub struct PwlModel {
    /// Entity name.
    pub name: String,
    /// Generated HDL-A source.
    pub source: String,
}

/// Builds the `table1d(x, x0, y0, …)` call expression.
fn table_expr(arg: Expr, xs: &[f64], ys: &[f64]) -> Expr {
    let mut args = vec![arg];
    for (&x, &y) in xs.iter().zip(ys) {
        args.push(Expr::num(x));
        args.push(Expr::num(y));
    }
    Expr::call("table1d", args)
}

/// Generates a two-port electromechanical model from extracted
/// `C(x)` and `F(V, x)` tables.
///
/// The force grid must scale as `V²` (true for any electrostatic
/// transducer); the generator factors out `F(V, x) = V²·f(x)` using
/// the reference voltage column and validates the assumption on the
/// rest of the grid.
///
/// # Errors
///
/// - [`PxtError::BadFit`] when the grid deviates from `V²` scaling by
///   more than 1 %;
/// - [`PxtError::BadRequest`] for degenerate tables.
pub fn generate_pwl_transducer_model(
    name: &str,
    cap: &Extraction1d,
    force: &Extraction2d,
) -> Result<PwlModel> {
    if cap.xs.len() < 2 {
        return Err(PxtError::BadRequest("capacitance table too small".into()));
    }
    // Pick the largest voltage as reference (best relative accuracy).
    let (iref, &vref) = force
        .xs
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.abs().partial_cmp(&b.abs()).expect("finite"))
        .ok_or_else(|| PxtError::BadRequest("empty force grid".into()))?;
    if vref == 0.0 {
        return Err(PxtError::BadRequest(
            "force grid needs a nonzero voltage".into(),
        ));
    }
    let ny = force.ys.len();
    let fcoef: Vec<f64> = (0..ny)
        .map(|j| force.zs[iref * ny + j] / (vref * vref))
        .collect();
    // Validate V² scaling across the grid.
    for (i, &v) in force.xs.iter().enumerate() {
        for (j, &fc) in fcoef.iter().enumerate() {
            let predicted = fc * v * v;
            let actual = force.zs[i * ny + j];
            let scale = actual.abs().max(fc.abs() * vref * vref);
            if scale > 0.0 && (predicted - actual).abs() > scale * 1e-2 {
                return Err(PxtError::BadFit(format!(
                    "force grid is not V²-separable at (V, x) = ({v}, {}): \
                     {actual:e} vs {predicted:e}",
                    force.ys[j]
                )));
            }
        }
    }

    let sp = Span::default();
    let entity = Entity {
        name: name.to_string(),
        generics: vec![],
        pins: vec![
            PinDecl {
                name: "a".into(),
                nature: "electrical".into(),
                span: sp,
            },
            PinDecl {
                name: "b".into(),
                nature: "electrical".into(),
                span: sp,
            },
            PinDecl {
                name: "c".into(),
                nature: "mechanical1".into(),
                span: sp,
            },
            PinDecl {
                name: "d".into(),
                nature: "mechanical1".into(),
                span: sp,
            },
        ],
        span: sp,
    };
    let stmts = vec![
        Stmt::Assign {
            target: "v".into(),
            value: Expr::Branch(BranchRef {
                pin_a: "a".into(),
                pin_b: "b".into(),
                quantity: "v".into(),
                span: sp,
            }),
            span: sp,
        },
        Stmt::Assign {
            target: "s".into(),
            value: Expr::Branch(BranchRef {
                pin_a: "c".into(),
                pin_b: "d".into(),
                quantity: "tv".into(),
                span: sp,
            }),
            span: sp,
        },
        Stmt::Assign {
            target: "x".into(),
            value: Expr::call("integ", vec![Expr::ident("s")]),
            span: sp,
        },
        Stmt::Assign {
            target: "cap".into(),
            value: table_expr(Expr::ident("x"), &cap.xs, &cap.ys),
            span: sp,
        },
        Stmt::Assign {
            target: "fcoef".into(),
            value: table_expr(Expr::ident("x"), &force.ys, &fcoef),
            span: sp,
        },
        Stmt::Contribute {
            branch: BranchRef {
                pin_a: "a".into(),
                pin_b: "b".into(),
                quantity: "i".into(),
                span: sp,
            },
            value: Expr::call("ddt", vec![Expr::mul(Expr::ident("cap"), Expr::ident("v"))]),
            span: sp,
        },
        Stmt::Contribute {
            branch: BranchRef {
                pin_a: "c".into(),
                pin_b: "d".into(),
                quantity: "f".into(),
                span: sp,
            },
            value: Expr::mul(
                Expr::mul(Expr::ident("v"), Expr::ident("v")),
                Expr::ident("fcoef"),
            ),
            span: sp,
        },
    ];
    let architecture = Architecture {
        name: "pxt".into(),
        entity: name.to_string(),
        decls: vec![
            ObjectDecl {
                kind: ObjectKind::Variable,
                names: vec!["x".into(), "cap".into(), "fcoef".into()],
                init: None,
                span: sp,
            },
            ObjectDecl {
                kind: ObjectKind::State,
                names: vec!["v".into(), "s".into()],
                init: None,
                span: sp,
            },
        ],
        relation: Relation {
            blocks: vec![Block::Procedural {
                contexts: vec![Ctx::Dc, Ctx::Ac, Ctx::Transient],
                stmts,
                span: sp,
            }],
        },
        span: sp,
    };
    let source = print_module(&Module {
        entities: vec![entity],
        architectures: vec![architecture],
    });
    Ok(PwlModel {
        name: name.to_string(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_hdl::model::HdlModel;

    const E0: f64 = 8.8542e-12;
    const AREA: f64 = 1e-4;
    const GAP: f64 = 0.15e-3;

    fn tables() -> (Extraction1d, Extraction2d) {
        let xs: Vec<f64> = (0..9).map(|i| -2e-5 + 1e-5 * i as f64).collect();
        let cap = Extraction1d {
            param: "displacement".into(),
            quantity: "capacitance".into(),
            xs: xs.clone(),
            ys: xs.iter().map(|x| E0 * AREA / (GAP + x)).collect(),
        };
        let vs = vec![5.0, 10.0, 15.0];
        let mut zs = Vec::new();
        for &v in &vs {
            for &x in &xs {
                zs.push(-E0 * AREA * v * v / (2.0 * (GAP + x) * (GAP + x)));
            }
        }
        let force = Extraction2d {
            param_x: "voltage".into(),
            param_y: "displacement".into(),
            quantity: "force".into(),
            xs: vs,
            ys: xs,
            zs,
        };
        (cap, force)
    }

    #[test]
    fn generated_pwl_model_compiles_and_has_tables() {
        let (cap, force) = tables();
        let model = generate_pwl_transducer_model("pwltran", &cap, &force).unwrap();
        let compiled = HdlModel::compile(&model.source, "pwltran", None).unwrap();
        assert_eq!(compiled.compiled().tables.len(), 2);
        // Elaboration folds the breakpoints.
        let inst = compiled.instantiate("x1", &[]).unwrap();
        assert_eq!(inst.model().n_integ_sites, 1);
    }

    #[test]
    fn non_separable_grid_is_rejected() {
        let (cap, mut force) = tables();
        // Corrupt one entry so F ≠ V²·f(x).
        force.zs[0] *= 3.0;
        let err = generate_pwl_transducer_model("bad", &cap, &force).unwrap_err();
        assert!(matches!(err, PxtError::BadFit(_)));
    }

    #[test]
    fn zero_reference_voltage_rejected() {
        let (cap, mut force) = tables();
        force.xs = vec![0.0, 0.0, 0.0];
        assert!(generate_pwl_transducer_model("bad", &cap, &force).is_err());
    }
}
