//! Closed-form polynomial model generation.
//!
//! From an extracted `C(x)` sweep, generates a complete two-port
//! electromechanical HDL-A model: the electrical port carries the
//! full charge-derivative current `i = d(C(x)·V)/dt` (including the
//! motional term) and the mechanical port the co-energy force
//! `F = ½·V²·dC/dx` — the paper's energy recipe applied to the
//! extracted capacitance.

use crate::codegen::horner_expr;
use crate::error::{PxtError, Result};
use crate::extract::Extraction1d;
use mems_hdl::ast::Expr;
use mems_hdl::ast::{
    Architecture, Block, BranchRef, Ctx, Entity, Module, ObjectDecl, ObjectKind, PinDecl, Relation,
    Stmt,
};
use mems_hdl::print::print_module;
use mems_hdl::span::Span;
use mems_numerics::poly::{polyfit, ScaledPolynomial};

/// A generated polynomial capacitance model.
#[derive(Debug, Clone)]
pub struct PolyCapacitanceModel {
    /// Entity name.
    pub name: String,
    /// The fitted `C(x)` polynomial.
    pub cap_fit: ScaledPolynomial,
    /// Maximum relative fit error over the sweep samples.
    pub max_rel_error: f64,
    /// The generated HDL-A source text.
    pub source: String,
}

/// Fits `C(x)` with degree `deg` and generates the model.
///
/// # Errors
///
/// - [`PxtError::BadFit`] when the relative fit error exceeds
///   `max_rel_error`;
/// - fitting failures.
pub fn generate_poly_capacitance_model(
    name: &str,
    extraction: &Extraction1d,
    deg: usize,
    max_rel_error: f64,
) -> Result<PolyCapacitanceModel> {
    let fit = polyfit(&extraction.xs, &extraction.ys, deg)?;
    let mut worst = 0.0f64;
    for (&x, &y) in extraction.xs.iter().zip(&extraction.ys) {
        let rel = (fit.eval(x) - y).abs() / y.abs().max(1e-300);
        worst = worst.max(rel);
    }
    if worst > max_rel_error {
        return Err(PxtError::BadFit(format!(
            "C(x) degree-{deg} fit error {worst:.3e} exceeds {max_rel_error:.3e}"
        )));
    }
    let source = print_module(&build_module(name, &fit));
    Ok(PolyCapacitanceModel {
        name: name.to_string(),
        cap_fit: fit,
        max_rel_error: worst,
        source,
    })
}

/// Derivative of a scaled polynomial as another scaled polynomial
/// (same domain scaling; coefficients divided by `scale`).
fn derivative_scaled(p: &ScaledPolynomial) -> ScaledPolynomial {
    let d = p.poly.derivative();
    let coeffs: Vec<f64> = d.coeffs().iter().map(|c| c / p.scale).collect();
    ScaledPolynomial {
        poly: mems_numerics::poly::Polynomial::new(coeffs),
        shift: p.shift,
        scale: p.scale,
    }
}

fn build_module(name: &str, cap: &ScaledPolynomial) -> Module {
    let sp = Span::default();
    let entity = Entity {
        name: name.to_string(),
        generics: vec![],
        pins: vec![
            PinDecl {
                name: "a".into(),
                nature: "electrical".into(),
                span: sp,
            },
            PinDecl {
                name: "b".into(),
                nature: "electrical".into(),
                span: sp,
            },
            PinDecl {
                name: "c".into(),
                nature: "mechanical1".into(),
                span: sp,
            },
            PinDecl {
                name: "d".into(),
                nature: "mechanical1".into(),
                span: sp,
            },
        ],
        span: sp,
    };
    let dcap = derivative_scaled(cap);
    let branch_e = BranchRef {
        pin_a: "a".into(),
        pin_b: "b".into(),
        quantity: "v".into(),
        span: sp,
    };
    let branch_m = BranchRef {
        pin_a: "c".into(),
        pin_b: "d".into(),
        quantity: "tv".into(),
        span: sp,
    };
    let stmts = vec![
        Stmt::Assign {
            target: "v".into(),
            value: Expr::Branch(branch_e),
            span: sp,
        },
        Stmt::Assign {
            target: "s".into(),
            value: Expr::Branch(branch_m),
            span: sp,
        },
        Stmt::Assign {
            target: "x".into(),
            value: Expr::call("integ", vec![Expr::ident("s")]),
            span: sp,
        },
        Stmt::Assign {
            target: "cap".into(),
            value: horner_expr(cap, "x"),
            span: sp,
        },
        Stmt::Assign {
            target: "dcap".into(),
            value: horner_expr(&dcap, "x"),
            span: sp,
        },
        Stmt::Contribute {
            branch: BranchRef {
                pin_a: "a".into(),
                pin_b: "b".into(),
                quantity: "i".into(),
                span: sp,
            },
            value: Expr::call("ddt", vec![Expr::mul(Expr::ident("cap"), Expr::ident("v"))]),
            span: sp,
        },
        Stmt::Contribute {
            branch: BranchRef {
                pin_a: "c".into(),
                pin_b: "d".into(),
                quantity: "f".into(),
                span: sp,
            },
            value: Expr::mul(
                Expr::mul(
                    Expr::num(0.5),
                    Expr::mul(Expr::ident("v"), Expr::ident("v")),
                ),
                Expr::ident("dcap"),
            ),
            span: sp,
        },
    ];
    let architecture = Architecture {
        name: "pxt".into(),
        entity: name.to_string(),
        decls: vec![
            ObjectDecl {
                kind: ObjectKind::Variable,
                names: vec!["x".into(), "cap".into(), "dcap".into()],
                init: None,
                span: sp,
            },
            ObjectDecl {
                kind: ObjectKind::State,
                names: vec!["v".into(), "s".into()],
                init: None,
                span: sp,
            },
        ],
        relation: Relation {
            blocks: vec![Block::Procedural {
                contexts: vec![Ctx::Dc, Ctx::Ac, Ctx::Transient],
                stmts,
                span: sp,
            }],
        },
        span: sp,
    };
    Module {
        entities: vec![entity],
        architectures: vec![architecture],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_hdl::model::HdlModel;

    fn analytic_extraction() -> Extraction1d {
        // C(x) = ε0·A/(d + x) over a ±40 µm range around d = 0.15 mm.
        let (e0, a, d) = (8.8542e-12, 1e-4, 0.15e-3);
        let xs: Vec<f64> = (0..17).map(|i| -4e-5 + 5e-6 * i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| e0 * a / (d + x)).collect();
        Extraction1d {
            param: "displacement".into(),
            quantity: "capacitance".into(),
            xs,
            ys,
        }
    }

    #[test]
    fn generated_source_compiles() {
        let model =
            generate_poly_capacitance_model("captran", &analytic_extraction(), 4, 1e-3).unwrap();
        assert!(model.max_rel_error < 1e-3);
        let compiled = HdlModel::compile(&model.source, "captran", None).unwrap();
        assert_eq!(compiled.compiled().pins.len(), 4);
        assert_eq!(compiled.compiled().n_integ_sites, 1);
        assert_eq!(compiled.compiled().n_ddt_sites, 1);
    }

    #[test]
    fn fit_error_gate_rejects_low_degree() {
        // Degree 0 cannot represent 1/(d+x) to 0.1 %.
        let err =
            generate_poly_capacitance_model("bad", &analytic_extraction(), 0, 1e-3).unwrap_err();
        assert!(matches!(err, PxtError::BadFit(_)));
    }

    #[test]
    fn derivative_polynomial_matches_numeric() {
        let ext = analytic_extraction();
        let fit = polyfit(&ext.xs, &ext.ys, 4).unwrap();
        let dfit = derivative_scaled(&fit);
        for &x in &ext.xs {
            let h = 1e-7;
            let numeric = (fit.eval(x + h) - fit.eval(x - h)) / (2.0 * h);
            assert!(
                (dfit.eval(x) - numeric).abs() < numeric.abs() * 1e-5,
                "at {x}: {} vs {numeric}",
                dfit.eval(x)
            );
        }
    }
}
