//! Shared Newton–Raphson machinery.
//!
//! Every analysis formulates `F(x) = 0` over the unknown vector and
//! iterates `J·Δ = −F`. Convergence uses SPICE-style mixed criteria:
//! per-unknown update tolerances (with per-kind absolute floors) and
//! residual tolerances scaled by the magnitude of the terms that were
//! summed into each row.

use crate::circuit::{Circuit, UnknownKind, UnknownLayout};
use crate::device::{LoadCtx, LoadKind};
use crate::error::{Result, SpiceError};
use crate::system::{new_system_solver, FactorKind, FillOrdering, MatrixBackend, SystemMatrix};
use mems_hdl::Nature;

/// Global simulator options (tolerances, iteration budgets).
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Relative tolerance on unknown updates and residuals.
    pub reltol: f64,
    /// Absolute tolerance for electrical node voltages [V].
    pub abstol_voltage: f64,
    /// Absolute tolerance for non-electrical across quantities
    /// (velocities m/s, pressures Pa, …).
    pub abstol_across: f64,
    /// Absolute tolerance for internal unknowns (currents A, forces N).
    pub abstol_internal: f64,
    /// Newton iteration budget per solve.
    pub max_iter: usize,
    /// Leak conductance from every node to ground.
    pub gmin: f64,
    /// Maximum per-iteration update magnitude (Newton damping); `0`
    /// disables limiting.
    pub max_step: f64,
    /// Linear-algebra backend (deck option `sparse=0/1`; `Auto`
    /// switches to sparse at
    /// [`AUTO_SPARSE_THRESHOLD`](crate::system::AUTO_SPARSE_THRESHOLD)
    /// unknowns).
    pub matrix: MatrixBackend,
    /// Fill-reducing column ordering for the sparse backend (deck
    /// option `order=amd|natural`; `Amd` by default). Ignored by the
    /// dense backend.
    pub ordering: FillOrdering,
    /// Numeric factorization path for the sparse backend (deck option
    /// `factor=auto|scalar|super`; `Auto` switches to the supernodal
    /// engine at
    /// [`SUPERNODAL_AUTO_THRESHOLD`](crate::system::SUPERNODAL_AUTO_THRESHOLD)
    /// unknowns). Ignored by the dense backend.
    pub factor: FactorKind,
    /// Worker threads for the supernodal factorization (deck option
    /// `factor_threads=<n>`; `0` = auto, see
    /// [`mems_numerics::par::resolve_factor_threads`]).
    pub factor_threads: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            reltol: 1e-6,
            abstol_voltage: 1e-9,
            abstol_across: 1e-12,
            abstol_internal: 1e-12,
            max_iter: 100,
            gmin: 1e-12,
            max_step: 0.0,
            matrix: MatrixBackend::Auto,
            ordering: FillOrdering::default(),
            factor: FactorKind::default(),
            factor_threads: 0,
        }
    }
}

impl SimOptions {
    /// Absolute tolerance for one unknown kind.
    pub fn abstol(&self, kind: UnknownKind) -> f64 {
        match kind {
            UnknownKind::NodeAcross(Nature::Electrical) => self.abstol_voltage,
            UnknownKind::NodeAcross(_) => self.abstol_across,
            UnknownKind::Internal => self.abstol_internal,
        }
    }
}

/// Reusable assembly storage (avoids reallocating each iteration —
/// and, on the sparse backend, carries the sparsity pattern and
/// symbolic factorization across Newton iterations, transient steps,
/// analyses, and batch points with identical structure).
pub struct Workspace {
    /// System (Jacobian) matrix behind the backend-agnostic trait.
    pub sys: Box<dyn SystemMatrix<f64>>,
    /// Residual vector.
    pub resid: Vec<f64>,
    /// Row scales (sums of |terms| per row).
    pub row_scale: Vec<f64>,
    backend: MatrixBackend,
    ordering: FillOrdering,
    factor: FactorKind,
    factor_threads: usize,
}

impl Workspace {
    /// Allocates a workspace for `n` unknowns with automatic backend
    /// selection.
    pub fn new(n: usize) -> Self {
        Self::with_backend(n, MatrixBackend::Auto)
    }

    /// Allocates a workspace with an explicit backend policy and the
    /// default fill-reducing ordering.
    pub fn with_backend(n: usize, backend: MatrixBackend) -> Self {
        Self::with_policy(n, backend, FillOrdering::default())
    }

    /// Allocates a workspace with explicit backend and sparse-ordering
    /// policies (the [`SimOptions::matrix`]/[`SimOptions::ordering`]
    /// pair).
    pub fn with_policy(n: usize, backend: MatrixBackend, ordering: FillOrdering) -> Self {
        Self::with_solver(n, backend, ordering, FactorKind::default(), 0)
    }

    /// Allocates a workspace with the full solver policy: backend,
    /// sparse ordering, numeric factorization path, and thread budget
    /// (the [`SimOptions::matrix`]/[`SimOptions::ordering`]/
    /// [`SimOptions::factor`]/[`SimOptions::factor_threads`] tuple).
    pub fn with_solver(
        n: usize,
        backend: MatrixBackend,
        ordering: FillOrdering,
        factor: FactorKind,
        factor_threads: usize,
    ) -> Self {
        Workspace {
            sys: new_system_solver(n, backend, ordering, factor, factor_threads),
            resid: vec![0.0; n],
            row_scale: vec![0.0; n],
            backend,
            ordering,
            factor,
            factor_threads,
        }
    }

    /// Unknown count the workspace is sized for.
    pub fn n(&self) -> usize {
        self.sys.n()
    }

    /// Re-targets the workspace to `n` unknowns under `backend` and
    /// `ordering`, keeping all cached structure (sparsity pattern,
    /// column ordering, symbolic factorization) when everything
    /// already matches. This is the reuse hook for sweeps and
    /// `.STEP`/`.MC` batches: same topology → same layout → the
    /// expensive analysis happens once.
    pub fn ensure(&mut self, n: usize, backend: MatrixBackend, ordering: FillOrdering) {
        self.ensure_solver(n, backend, ordering, self.factor, self.factor_threads);
    }

    /// [`Workspace::ensure`] with the full solver policy — rebuilds only
    /// when the resolved backend, ordering, or factorization policy
    /// actually changes.
    pub fn ensure_solver(
        &mut self,
        n: usize,
        backend: MatrixBackend,
        ordering: FillOrdering,
        factor: FactorKind,
        factor_threads: usize,
    ) {
        let same_backend = self.sys.n() == n && self.backend.resolve(n) == backend.resolve(n);
        // Ordering and factorization policy only matter on the sparse
        // path.
        let dense = backend.resolve(n) == MatrixBackend::Dense;
        let same_ordering = self.ordering == ordering || dense;
        let same_factor = dense
            || (self.factor.resolve(n) == factor.resolve(n)
                && self.factor_threads == factor_threads);
        if same_backend && same_ordering && same_factor {
            return;
        }
        *self = Workspace::with_solver(n, backend, ordering, factor, factor_threads);
    }
}

/// Assembles `F` and `J` at iterate `x`.
///
/// # Errors
///
/// Propagates device evaluation failures.
pub fn assemble(
    circuit: &mut Circuit,
    layout: &UnknownLayout,
    kind: LoadKind,
    gmin: f64,
    x: &[f64],
    ws: &mut Workspace,
) -> Result<()> {
    ws.sys.clear();
    ws.resid.iter_mut().for_each(|v| *v = 0.0);
    ws.row_scale.iter_mut().for_each(|v| *v = 0.0);
    {
        let mut ctx = LoadCtx::new(
            kind,
            layout,
            x,
            ws.sys.as_mut(),
            &mut ws.resid,
            &mut ws.row_scale,
        );
        for dev in circuit.devices_mut() {
            dev.load(&mut ctx)?;
        }
    }
    // gmin leak on node rows keeps floating nodes solvable.
    if gmin > 0.0 {
        for (k, kind) in layout.kinds.iter().enumerate() {
            if matches!(kind, UnknownKind::NodeAcross(_)) {
                ws.resid[k] += gmin * x[k];
                ws.sys.add(k, k, gmin);
            }
        }
    }
    Ok(())
}

/// Newton solve outcome.
#[derive(Debug, Clone)]
pub struct NewtonOutcome {
    /// The converged solution.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
}

/// Runs the Newton iteration from `x0`.
///
/// # Errors
///
/// - [`SpiceError::NoConvergence`] when the budget is exhausted;
/// - [`SpiceError::Singular`] from the linear solver;
/// - device errors from assembly.
pub fn newton(
    circuit: &mut Circuit,
    layout: &UnknownLayout,
    kind: LoadKind,
    gmin: f64,
    opts: &SimOptions,
    x0: &[f64],
    ws: &mut Workspace,
) -> Result<NewtonOutcome> {
    let n = layout.n_unknowns;
    let mut x = x0.to_vec();
    for it in 0..opts.max_iter {
        assemble(circuit, layout, kind, gmin, &x, ws)?;
        if !ws.sys.all_finite() {
            return Err(SpiceError::Device {
                device: "<assembly>".into(),
                detail: "non-finite Jacobian entry".into(),
            });
        }
        ws.sys.factor().map_err(|e| {
            SpiceError::Singular(format!(
                "{e} (unknowns: {})",
                worst_rows(layout, &ws.row_scale)
            ))
        })?;
        let neg_f: Vec<f64> = ws.resid.iter().map(|f| -f).collect();
        let mut delta = ws.sys.solve(&neg_f)?;

        // Optional damping.
        if opts.max_step > 0.0 {
            let worst = delta.iter().fold(0.0f64, |m, d| m.max(d.abs()));
            if worst > opts.max_step {
                let k = opts.max_step / worst;
                delta.iter_mut().for_each(|d| *d *= k);
            }
        }

        let mut converged = true;
        for k in 0..n {
            let x_new = x[k] + delta[k];
            let tol = opts.reltol * x[k].abs().max(x_new.abs()) + opts.abstol(layout.kinds[k]);
            if delta[k].abs() > tol {
                converged = false;
            }
            x[k] = x_new;
        }
        // Residual criterion on the *pre-update* residual: a row must
        // be small relative to the terms that built it.
        if converged {
            for k in 0..n {
                let tol = opts.reltol * ws.row_scale[k] + opts.abstol(layout.kinds[k]);
                if ws.resid[k].abs() > tol {
                    converged = false;
                    break;
                }
            }
        }
        if converged {
            return Ok(NewtonOutcome {
                x,
                iterations: it + 1,
            });
        }
    }
    Err(SpiceError::NoConvergence {
        analysis: "newton".into(),
        detail: format!("{} iterations exhausted", opts.max_iter),
    })
}

fn worst_rows(layout: &UnknownLayout, row_scale: &[f64]) -> String {
    let mut idx: Vec<usize> = (0..row_scale.len()).collect();
    idx.sort_by(|&a, &b| {
        row_scale[a]
            .partial_cmp(&row_scale[b])
            .expect("finite scales")
    });
    idx.iter()
        .take(3)
        .map(|&i| layout.labels[i].as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::devices::controlled::ProductVccs;
    use crate::devices::passive::Resistor;
    use crate::devices::sources::{CurrentSource, VoltageSource};
    use crate::wave::Waveform;

    fn dc_kind() -> LoadKind {
        LoadKind::Dc {
            gmin: 0.0,
            source_scale: 1.0,
        }
    }

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let b = c.enode("b").unwrap();
        let g = c.ground();
        c.add(VoltageSource::new("v1", a, g, Waveform::Dc(10.0)))
            .unwrap();
        c.add(Resistor::new("r1", a, b, 1e3)).unwrap();
        c.add(Resistor::new("r2", b, g, 3e3)).unwrap();
        let layout = c.layout();
        let mut ws = Workspace::new(layout.n_unknowns);
        let opts = SimOptions::default();
        let out = newton(
            &mut c,
            &layout,
            dc_kind(),
            opts.gmin,
            &opts,
            &vec![0.0; layout.n_unknowns],
            &mut ws,
        )
        .unwrap();
        let va = layout.node_value(&out.x, a);
        let vb = layout.node_value(&out.x, b);
        assert!((va - 10.0).abs() < 1e-9);
        assert!((vb - 7.5).abs() < 1e-8);
        // Branch current of the source: −10 V across 4 kΩ total.
        let j = out.x[2];
        assert!((j + 2.5e-3).abs() < 1e-9, "source current {j}");
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let g = c.ground();
        c.add(CurrentSource::new("i1", g, a, Waveform::Dc(1e-3)))
            .unwrap();
        c.add(Resistor::new("r1", a, g, 2e3)).unwrap();
        let layout = c.layout();
        let mut ws = Workspace::new(layout.n_unknowns);
        let opts = SimOptions::default();
        let out = newton(
            &mut c,
            &layout,
            dc_kind(),
            opts.gmin,
            &opts,
            &[0.0],
            &mut ws,
        )
        .unwrap();
        // 1 mA pushed into node a across 2 kΩ → 2 V (gmin shifts ~nV).
        assert!((out.x[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn nonlinear_product_source_converges() {
        // i = k·v·v with a 1 A pull-up: v² = 1/k → v = sqrt(1/k).
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let g = c.ground();
        c.add(CurrentSource::new("i1", g, a, Waveform::Dc(1.0)))
            .unwrap();
        c.add(ProductVccs::new("q1", a, g, a, g, a, g, 0.25))
            .unwrap();
        let layout = c.layout();
        let mut ws = Workspace::new(layout.n_unknowns);
        let opts = SimOptions::default();
        let out = newton(
            &mut c,
            &layout,
            dc_kind(),
            opts.gmin,
            &opts,
            &[1.0],
            &mut ws,
        )
        .unwrap();
        assert!((out.x[0] - 2.0).abs() < 1e-9, "v = {}", out.x[0]);
        assert!(out.iterations < 20);
    }

    #[test]
    fn floating_node_is_singular_without_gmin() {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let b = c.enode("b").unwrap();
        let g = c.ground();
        c.add(Resistor::new("r1", a, g, 1e3)).unwrap();
        // b floats.
        let _ = b;
        let layout = c.layout();
        let mut ws = Workspace::new(layout.n_unknowns);
        let opts = SimOptions::default();
        let err = newton(
            &mut c,
            &layout,
            dc_kind(),
            0.0,
            &opts,
            &vec![0.0; layout.n_unknowns],
            &mut ws,
        );
        assert!(matches!(err, Err(SpiceError::Singular(_))));
        // With gmin it solves (b pulled to 0).
        let out = newton(
            &mut c,
            &layout,
            dc_kind(),
            1e-12,
            &opts,
            &vec![0.0; layout.n_unknowns],
            &mut ws,
        )
        .unwrap();
        assert_eq!(out.x[1], 0.0);
    }
}
