//! # mems-spice — a multi-nature SPICE-class circuit simulator
//!
//! The solver substrate of the paper reproduction: "SPICE simulators
//! may be used as lumped parameter (discrete variable) analog solvers
//! to simulate transducers by exploiting electrical-mechanical
//! analogies". This crate provides:
//!
//! - typed nodes over the physical [natures](mems_hdl::Nature) of
//!   Table 1 (electrical, mechanical translation/rotation, hydraulic,
//!   thermal, magnetic) sharing one ground;
//! - a device library: R/L/C, independent sources with waveforms,
//!   the four controlled sources, the paper's `I = k·V1·V2` product
//!   source, ideal transformer/gyrator, mechanical sugar (mass,
//!   spring, damper under the force–current analogy), and the
//!   [behavioral HDL device](devices::HdlDevice) hosting compiled
//!   `mems-hdl` models;
//! - analyses: DC operating point (Newton + gmin/source stepping),
//!   transient (trapezoidal/BE/Gear-2, LTE step control, breakpoint
//!   snapping), AC small-signal sweeps, and DC sweeps.
//!
//! # Example: the paper's mechanical resonator
//!
//! ```
//! use mems_spice::circuit::Circuit;
//! use mems_spice::devices::{Mass, Spring, Damper, CurrentSource};
//! use mems_spice::wave::Waveform;
//! use mems_spice::analysis::transient::{run, TranOptions};
//! use mems_spice::solver::SimOptions;
//!
//! # fn main() -> mems_spice::error::Result<()> {
//! let mut ckt = Circuit::new();
//! let vel = ckt.mnode("vel")?;
//! let gnd = ckt.ground();
//! ckt.add(Mass::new("m1", vel, gnd, 1.0e-4))?;      // 0.1 g
//! ckt.add(Spring::new("k1", vel, gnd, 200.0))?;      // 200 N/m
//! ckt.add(Damper::new("a1", vel, gnd, 40e-3))?;      // 40 mN·s/m
//! ckt.add(CurrentSource::new("f1", gnd, vel,         // 1 µN step force
//!     Waveform::Pwl(vec![(0.0, 0.0), (1e-4, 1e-6)])))?;
//! let result = run(&mut ckt, &TranOptions::new(50e-3), &SimOptions::default())?;
//! let displacement = result.integrated_trace("v(vel)", 0.0).unwrap();
//! assert!(displacement.last().unwrap().abs() > 1e-10);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod circuit;
pub mod device;
pub mod devices;
pub mod error;
pub mod output;
pub mod solver;
pub mod system;
pub mod wave;

pub use circuit::{Circuit, NodeId};
pub use error::{Result, SpiceError};
pub use solver::SimOptions;
pub use system::{FillOrdering, MatrixBackend, SystemMatrix};
pub use wave::Waveform;
