//! Small-signal AC analysis: complex MNA around the DC operating
//! point.

use crate::circuit::Circuit;
use crate::device::AcLoadCtx;
use crate::error::{Result, SpiceError};
use crate::output::{AcResult, OpSolution};
use crate::solver::SimOptions;
use crate::system::{new_system_solver, FactorKind, FillOrdering, MatrixBackend, SystemMatrix};
use mems_numerics::Complex64;

/// Frequency sweep specification.
#[derive(Debug, Clone)]
pub enum FreqSweep {
    /// Logarithmic sweep with `points_per_decade` points from `start`
    /// to `stop` [Hz].
    Decade {
        /// Start frequency [Hz] (> 0).
        start: f64,
        /// Stop frequency [Hz].
        stop: f64,
        /// Points per decade.
        points_per_decade: usize,
    },
    /// Linear sweep with `points` samples.
    Linear {
        /// Start frequency [Hz].
        start: f64,
        /// Stop frequency [Hz].
        stop: f64,
        /// Total points (≥ 2).
        points: usize,
    },
    /// Explicit frequency list [Hz].
    List(Vec<f64>),
}

impl FreqSweep {
    /// Expands the sweep into a frequency list.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadOptions`] for non-positive log sweeps
    /// or empty lists.
    pub fn frequencies(&self) -> Result<Vec<f64>> {
        match self {
            FreqSweep::Decade {
                start,
                stop,
                points_per_decade,
            } => {
                if *start <= 0.0 || *stop < *start || *points_per_decade == 0 {
                    return Err(SpiceError::BadOptions(format!(
                        "bad decade sweep [{start}, {stop}] x{points_per_decade}"
                    )));
                }
                let mut out = Vec::new();
                let decades = (stop / start).log10();
                let n = (decades * *points_per_decade as f64).ceil() as usize;
                for i in 0..=n {
                    let f = start * 10f64.powf(i as f64 / *points_per_decade as f64);
                    if f > stop * (1.0 + 1e-12) {
                        break;
                    }
                    out.push(f);
                }
                if out.last().is_none_or(|f| (f - stop).abs() > stop * 1e-9) {
                    out.push(*stop);
                }
                Ok(out)
            }
            FreqSweep::Linear {
                start,
                stop,
                points,
            } => {
                if *points < 2 || stop <= start {
                    return Err(SpiceError::BadOptions(format!(
                        "bad linear sweep [{start}, {stop}] x{points}"
                    )));
                }
                Ok((0..*points)
                    .map(|i| start + (stop - start) * i as f64 / (*points as f64 - 1.0))
                    .collect())
            }
            FreqSweep::List(fs) => {
                if fs.is_empty() {
                    return Err(SpiceError::BadOptions("empty frequency list".into()));
                }
                Ok(fs.clone())
            }
        }
    }
}

/// Runs an AC sweep. Solves the DC operating point first (committing
/// it into the devices), then one complex solve per frequency.
///
/// # Errors
///
/// Propagates DC failures and singular complex systems.
pub fn run(circuit: &mut Circuit, sweep: &FreqSweep, sim: &SimOptions) -> Result<AcResult> {
    let freqs = sweep.frequencies()?;
    let op = super::dcop::solve(circuit, sim)?;
    run_with_op_solver(
        circuit,
        &freqs,
        &op,
        sim.matrix,
        sim.ordering,
        sim.factor,
        sim.factor_threads,
    )
}

/// Runs the sweep against an already-solved operating point (automatic
/// backend selection).
///
/// # Errors
///
/// Returns singular-system and device errors.
pub fn run_with_op(circuit: &mut Circuit, freqs: &[f64], op: &OpSolution) -> Result<AcResult> {
    run_with_op_backend(circuit, freqs, op, MatrixBackend::Auto)
}

/// [`run_with_op`] with an explicit matrix backend. The complex
/// system is assembled through [`SystemMatrix`], so all frequency
/// points share one sparsity pattern — on the sparse backend the
/// symbolic factorization from the first point is replayed
/// numeric-only for every further point.
///
/// # Errors
///
/// As [`run_with_op`].
pub fn run_with_op_backend(
    circuit: &mut Circuit,
    freqs: &[f64],
    op: &OpSolution,
    backend: MatrixBackend,
) -> Result<AcResult> {
    run_with_op_ordered(circuit, freqs, op, backend, FillOrdering::default())
}

/// [`run_with_op_backend`] with an explicit sparse fill-reducing
/// ordering (ignored on the dense path).
///
/// # Errors
///
/// As [`run_with_op`].
pub fn run_with_op_ordered(
    circuit: &mut Circuit,
    freqs: &[f64],
    op: &OpSolution,
    backend: MatrixBackend,
    ordering: FillOrdering,
) -> Result<AcResult> {
    run_with_op_solver(
        circuit,
        freqs,
        op,
        backend,
        ordering,
        FactorKind::default(),
        0,
    )
}

/// [`run_with_op_ordered`] with the full solver policy: the complex
/// systems ride the same numeric factorization path (scalar or
/// supernodal) as the real analyses.
///
/// # Errors
///
/// As [`run_with_op`].
pub fn run_with_op_solver(
    circuit: &mut Circuit,
    freqs: &[f64],
    op: &OpSolution,
    backend: MatrixBackend,
    ordering: FillOrdering,
    factor: FactorKind,
    factor_threads: usize,
) -> Result<AcResult> {
    let mut sys: Box<dyn SystemMatrix<Complex64>> = new_system_solver(
        op.layout.n_unknowns,
        backend,
        ordering,
        factor,
        factor_threads,
    );
    run_with_op_in(circuit, freqs, op, sys.as_mut())
}

/// [`run_with_op`] over a caller-owned complex system matrix: batch
/// engines hand the same system to every `.STEP`/`.MC` point, so the
/// sparse backend's pattern discovery and symbolic analysis happen
/// once per worker rather than once per point. The system's order
/// must match the operating point's unknown count.
///
/// # Errors
///
/// As [`run_with_op`], plus a build error on an order mismatch.
pub fn run_with_op_in(
    circuit: &mut Circuit,
    freqs: &[f64],
    op: &OpSolution,
    sys: &mut dyn SystemMatrix<Complex64>,
) -> Result<AcResult> {
    let layout = &op.layout;
    let n = layout.n_unknowns;
    if sys.n() != n {
        return Err(SpiceError::Build(format!(
            "AC system matrix order {} does not match {} unknowns",
            sys.n(),
            n
        )));
    }
    let mut result = AcResult {
        freqs: freqs.to_vec(),
        labels: layout.labels.clone(),
        data: Vec::with_capacity(freqs.len()),
    };
    let mut rhs = vec![Complex64::ZERO; n];
    for &f in freqs {
        let omega = 2.0 * std::f64::consts::PI * f;
        sys.clear();
        rhs.iter_mut().for_each(|v| *v = Complex64::ZERO);
        {
            let mut ctx = AcLoadCtx::new(omega, layout, &op.x, &mut *sys, &mut rhs);
            for dev in circuit.devices_mut() {
                dev.load_ac(&mut ctx)?;
            }
        }
        // gmin on node diagonals keeps floating nodes benign.
        for (k, kind) in layout.kinds.iter().enumerate() {
            if matches!(kind, crate::circuit::UnknownKind::NodeAcross(_)) {
                sys.add(k, k, Complex64::from_re(1e-12));
            }
        }
        sys.factor()
            .map_err(|e| SpiceError::Singular(format!("AC at {f} Hz: {e}")))?;
        let x = sys.solve(&rhs)?;
        result.data.push(x);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::devices::passive::{Capacitor, Inductor, Resistor};
    use crate::devices::sources::{AcSpec, VoltageSource};
    use crate::wave::Waveform;

    #[test]
    fn sweep_expansion() {
        let fs = FreqSweep::Decade {
            start: 1.0,
            stop: 1000.0,
            points_per_decade: 10,
        }
        .frequencies()
        .unwrap();
        assert_eq!(fs.len(), 31);
        assert!((fs[0] - 1.0).abs() < 1e-12);
        assert!((fs.last().unwrap() - 1000.0).abs() < 1e-6);
        let fs = FreqSweep::Linear {
            start: 0.0,
            stop: 10.0,
            points: 3,
        }
        .frequencies()
        .unwrap();
        assert_eq!(fs, vec![0.0, 5.0, 10.0]);
        assert!(FreqSweep::List(vec![]).frequencies().is_err());
        assert!(FreqSweep::Decade {
            start: 0.0,
            stop: 1.0,
            points_per_decade: 5
        }
        .frequencies()
        .is_err());
    }

    #[test]
    fn rc_lowpass_corner() {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let b = c.enode("b").unwrap();
        let g = c.ground();
        c.add(VoltageSource::new("v1", a, g, Waveform::Dc(0.0)).with_ac(AcSpec::unit()))
            .unwrap();
        c.add(Resistor::new("r1", a, b, 1e3)).unwrap();
        c.add(Capacitor::new("c1", b, g, 1e-6)).unwrap();
        // Corner at 1/(2πRC) ≈ 159.15 Hz.
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-6);
        let res = run(
            &mut c,
            &FreqSweep::List(vec![fc / 100.0, fc, fc * 100.0]),
            &SimOptions::default(),
        )
        .unwrap();
        let mag = res.magnitude("v(b)").unwrap();
        assert!((mag[0] - 1.0).abs() < 1e-3);
        assert!((mag[1] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert!(mag[2] < 0.011);
        let ph = res.phase_deg("v(b)").unwrap();
        assert!((ph[1] + 45.0).abs() < 0.1);
    }

    #[test]
    fn rlc_series_resonance() {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let b = c.enode("b").unwrap();
        let d = c.enode("d").unwrap();
        let g = c.ground();
        c.add(VoltageSource::new("v1", a, g, Waveform::Dc(0.0)).with_ac(AcSpec::unit()))
            .unwrap();
        c.add(Resistor::new("r1", a, b, 10.0)).unwrap();
        c.add(Inductor::new("l1", b, d, 1e-3)).unwrap();
        c.add(Capacitor::new("c1", d, g, 1e-6)).unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-3f64 * 1e-6).sqrt());
        let res = run(&mut c, &FreqSweep::List(vec![f0]), &SimOptions::default()).unwrap();
        // At resonance the current is v/R → 0.1 A.
        let i = res.magnitude("i(l1,0)").unwrap()[0];
        assert!((i - 0.1).abs() < 1e-6, "resonant current {i}");
    }
}
