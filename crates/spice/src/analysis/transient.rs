//! Transient analysis: implicit integration with Newton at each step,
//! adaptive step control by local-truncation-error estimation, and
//! waveform-breakpoint snapping.

use crate::circuit::Circuit;
use crate::device::{CommitKind, LoadKind};
use crate::error::{Result, SpiceError};
use crate::output::TranResult;
use crate::solver::{newton, SimOptions, Workspace};
use mems_numerics::ode::IntegrationMethod;

/// Options for a transient run.
#[derive(Debug, Clone)]
pub struct TranOptions {
    /// Stop time [s].
    pub t_stop: f64,
    /// Initial step (default `t_stop / 1000`).
    pub h_init: Option<f64>,
    /// Maximum step (default `t_stop / 50`).
    pub h_max: Option<f64>,
    /// Minimum step before giving up (default `t_stop × 1e-12`).
    pub h_min: Option<f64>,
    /// Integration method (default trapezoidal, as in SPICE).
    pub method: IntegrationMethod,
    /// Enable LTE-based step adaptation (default true). When false the
    /// engine marches at `h_init` (still snapping to breakpoints).
    pub adaptive: bool,
    /// LTE target relative to the convergence tolerances (default 50:
    /// the step error may be 50× looser than Newton's tolerance).
    pub lte_factor: f64,
}

impl TranOptions {
    /// Sensible defaults for a run to `t_stop`.
    pub fn new(t_stop: f64) -> Self {
        TranOptions {
            t_stop,
            h_init: None,
            h_max: None,
            h_min: None,
            method: IntegrationMethod::Trapezoidal,
            adaptive: true,
            lte_factor: 50.0,
        }
    }

    /// Fixed-step variant (useful for benchmarks and convergence
    /// studies).
    pub fn fixed_step(t_stop: f64, h: f64) -> Self {
        TranOptions {
            t_stop,
            h_init: Some(h),
            h_max: Some(h),
            h_min: Some(h * 1e-6),
            method: IntegrationMethod::Trapezoidal,
            adaptive: false,
            lte_factor: 50.0,
        }
    }
}

/// Runs a transient analysis: DC operating point at `t = 0`, then
/// steps to `t_stop`.
///
/// # Errors
///
/// - propagates DC convergence failures;
/// - [`SpiceError::StepUnderflow`] when step halving bottoms out;
/// - [`SpiceError::BadOptions`] for a non-positive horizon.
pub fn run(circuit: &mut Circuit, opts: &TranOptions, sim: &SimOptions) -> Result<TranResult> {
    run_from(circuit, opts, sim, None)
}

/// [`run`] with a Newton guess for the initial DC operating point
/// (e.g. the previous `.STEP` batch point's operating point — same
/// topology, nearby parameter values). A wrong-length guess is
/// ignored; a bad guess only costs the usual homotopy fallbacks.
///
/// # Errors
///
/// As [`run`].
pub fn run_from(
    circuit: &mut Circuit,
    opts: &TranOptions,
    sim: &SimOptions,
    op_guess: Option<&[f64]>,
) -> Result<TranResult> {
    let mut ws =
        Workspace::with_solver(0, sim.matrix, sim.ordering, sim.factor, sim.factor_threads);
    run_in(circuit, opts, sim, op_guess, &mut ws)
}

/// [`run_from`] over a caller-owned [`Workspace`] (see
/// [`dcop::solve_in`](super::dcop::solve_in) for the reuse contract).
/// The DC operating point and every transient step share the
/// workspace, so the sparse backend analyzes the Jacobian structure
/// once for the whole run.
///
/// # Errors
///
/// As [`run`].
pub fn run_in(
    circuit: &mut Circuit,
    opts: &TranOptions,
    sim: &SimOptions,
    op_guess: Option<&[f64]>,
    ws: &mut Workspace,
) -> Result<TranResult> {
    // `!(x > 0.0)` (rather than `x <= 0.0`) also rejects a NaN horizon.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(opts.t_stop > 0.0) {
        return Err(SpiceError::BadOptions(format!(
            "t_stop must be positive, got {}",
            opts.t_stop
        )));
    }
    let h_init = opts.h_init.unwrap_or(opts.t_stop / 1000.0);
    let h_max = opts.h_max.unwrap_or(opts.t_stop / 50.0).max(h_init);
    let h_min = opts.h_min.unwrap_or(opts.t_stop * 1e-12);

    // Breakpoints (sorted, deduplicated, strictly inside the horizon).
    let mut breakpoints: Vec<f64> = circuit
        .devices()
        .iter()
        .flat_map(|d| d.breakpoints(opts.t_stop))
        .filter(|t| *t > 0.0 && *t < opts.t_stop)
        .collect();
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    breakpoints.dedup_by(|a, b| (*a - *b).abs() < 1e-15);

    // Operating point at t = 0 (also commits device histories).
    let op = super::dcop::solve_in(circuit, sim, op_guess, ws)?;
    let layout = op.layout.clone();

    let mut result = TranResult {
        time: vec![0.0],
        labels: layout.labels.clone(),
        samples: vec![op.x.clone()],
        total_newton_iterations: op.iterations,
        rejected_steps: 0,
    };

    let mut t = 0.0f64;
    let mut x = op.x.clone();
    let mut x_prev: Option<(f64, Vec<f64>)> = None; // (h_prev, solution before x)
    let mut h = h_init.min(h_max);
    let mut bp_idx = 0usize;
    let trace = std::env::var_os("MEMS_SPICE_TRACE").is_some();
    let mut loop_count = 0u64;
    // Restart integration with backward Euler on the first step and
    // after every breakpoint: trapezoidal needs a consistent
    // derivative history, and a waveform corner invalidates it (the
    // classic TR "ringing" failure).
    let mut be_restart = true;

    while t < opts.t_stop * (1.0 - 1e-12) {
        loop_count += 1;
        if trace && loop_count.is_multiple_of(1000) {
            eprintln!(
                "[tran] loop {loop_count}: t = {t:.9e}, h = {h:.3e}, accepted {}, rejected {}",
                result.time.len(),
                result.rejected_steps
            );
        }
        // Snap to the next breakpoint or the horizon.
        let mut h_attempt = h.min(h_max);
        let next_bp = breakpoints.get(bp_idx).copied().unwrap_or(f64::INFINITY);
        let limit = next_bp.min(opts.t_stop);
        let mut snapped = false;
        if t + h_attempt >= limit - 1e-15 * limit.abs().max(1.0) {
            h_attempt = limit - t;
            snapped = true;
        }
        if h_attempt < h_min {
            // Forced tiny step onto a breakpoint is fine; anything else
            // means the controller collapsed.
            if !snapped {
                return Err(SpiceError::StepUnderflow {
                    time: t,
                    h: h_attempt,
                });
            }
        }

        let t_new = t + h_attempt;
        let method = if be_restart {
            IntegrationMethod::BackwardEuler
        } else {
            opts.method
        };
        let kind = LoadKind::Transient {
            t: t_new,
            h: h_attempt,
            method,
        };
        let solve = newton(circuit, &layout, kind, sim.gmin, sim, &x, ws);
        match solve {
            Ok(out) => {
                result.total_newton_iterations += out.iterations;
                // LTE estimate: compare with the linear predictor.
                if opts.adaptive {
                    if let Some((h_prev, ref xp)) = x_prev {
                        let mut worst: f64 = 0.0;
                        for k in 0..layout.n_unknowns {
                            let slope = (x[k] - xp[k]) / h_prev;
                            let pred = x[k] + slope * h_attempt;
                            let tol = opts.lte_factor
                                * (sim.reltol * x[k].abs().max(out.x[k].abs())
                                    + sim.abstol(layout.kinds[k]));
                            let err = (out.x[k] - pred).abs() / tol;
                            worst = worst.max(err);
                        }
                        if worst > 1.0 && h_attempt > h_min && !snapped {
                            // Reject and retry with a smaller step.
                            result.rejected_steps += 1;
                            let order = opts.method.order() as f64;
                            let shrink = (1.0 / worst).powf(1.0 / (order + 1.0)).clamp(0.1, 0.9);
                            h = (h_attempt * shrink).max(h_min);
                            continue;
                        }
                        // Accepted: adapt the next step.
                        let order = opts.method.order() as f64;
                        let grow = if worst > 0.0 {
                            (1.0 / worst).powf(1.0 / (order + 1.0)).min(2.0)
                        } else {
                            2.0
                        };
                        h = (h_attempt * grow.max(0.5) * 0.9).clamp(h_min, h_max);
                    } else {
                        h = (h_attempt * 1.5).clamp(h_min, h_max);
                    }
                }
                // Commit.
                for dev in circuit.devices_mut() {
                    dev.commit(
                        &out.x,
                        &layout,
                        CommitKind {
                            is_dc: false,
                            h: h_attempt,
                        },
                    );
                }
                x_prev = Some((h_attempt, x.clone()));
                x = out.x;
                t = t_new;
                be_restart = false;
                if snapped && (t - next_bp).abs() < 1e-15 * next_bp.abs().max(1.0) {
                    bp_idx += 1;
                    // Restart small, with BE, after a slope discontinuity.
                    h = h_init.min(h_max);
                    x_prev = None;
                    be_restart = true;
                }
                result.time.push(t);
                result.samples.push(x.clone());
            }
            Err(SpiceError::NoConvergence { .. }) | Err(SpiceError::Device { .. }) => {
                result.rejected_steps += 1;
                let h_new = h_attempt / 4.0;
                if h_new < h_min {
                    return Err(SpiceError::StepUnderflow { time: t, h: h_new });
                }
                h = h_new;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::mechanical::{Damper, Mass, Spring};
    use crate::devices::passive::{Capacitor, Resistor};
    use crate::devices::sources::{CurrentSource, VoltageSource};
    use crate::wave::Waveform;

    #[test]
    fn rc_step_response_matches_analytic() {
        // R = 1 kΩ, C = 1 µF, step 1 V at t = 0 through PWL ramp.
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let b = c.enode("b").unwrap();
        let g = c.ground();
        c.add(VoltageSource::new(
            "v1",
            a,
            g,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-6, 1.0)]),
        ))
        .unwrap();
        c.add(Resistor::new("r1", a, b, 1e3)).unwrap();
        c.add(Capacitor::new("c1", b, g, 1e-6)).unwrap();
        let tau = 1e-3;
        let opts = TranOptions::new(5.0 * tau);
        let res = run(&mut c, &opts, &SimOptions::default()).unwrap();
        let vb = res.node_trace("b").unwrap();
        let t_end = *res.time.last().unwrap();
        let expect = 1.0 - (-t_end / tau).exp();
        let got = *vb.last().unwrap();
        assert!(
            (got - expect).abs() < 2e-3,
            "v(b) at {t_end}: {got} vs {expect}"
        );
        // Also check a mid-trace point against the analytic solution.
        let mid = res.time.len() / 2;
        let tm = res.time[mid];
        if tm > 2e-6 {
            let em = 1.0 - (-(tm - 1e-6) / tau).exp();
            assert!(
                (vb[mid] - em).abs() < 5e-3,
                "v(b) at {tm}: {} vs {em}",
                vb[mid]
            );
        }
    }

    #[test]
    fn resonator_rings_at_natural_frequency() {
        // Table 4 resonator: m = 1e-4 kg, k = 200 N/m, α = 40e-3 →
        // f0 ≈ 225 Hz, ζ ≈ 0.14 (under-damped).
        let mut c = Circuit::new();
        let v = c.mnode("vel").unwrap();
        let g = c.ground();
        c.add(Mass::new("m1", v, g, 1e-4)).unwrap();
        c.add(Spring::new("k1", v, g, 200.0)).unwrap();
        c.add(Damper::new("d1", v, g, 40e-3)).unwrap();
        // Force step of 1 µN.
        c.add(CurrentSource::new(
            "f1",
            g,
            v,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-5, 1e-6)]),
        ))
        .unwrap();
        let opts = TranOptions::new(60e-3);
        let res = run(&mut c, &opts, &SimOptions::default()).unwrap();
        // Displacement = spring force / k; spring force is i(k1,0).
        let f_spring = res.trace("i(k1,0)").unwrap();
        let x: Vec<f64> = f_spring.iter().map(|f| f / 200.0).collect();
        // Static deflection 1µN/200 = 5e-9 m.
        let settled = mems_numerics::stats::settled_value(&x, 0.1);
        assert!(
            (settled - 5e-9).abs() < 5e-10,
            "settled displacement {settled}"
        );
        // Ring frequency ≈ damped natural frequency.
        let f_est = mems_numerics::stats::crossing_frequency(&res.time, &x).expect("oscillates");
        let wn = (200.0f64 / 1e-4).sqrt();
        let zeta = 40e-3 / (2.0 * (200.0f64 * 1e-4).sqrt());
        let fd = wn * (1.0 - zeta * zeta).sqrt() / (2.0 * std::f64::consts::PI);
        assert!(
            (f_est - fd).abs() < fd * 0.05,
            "rings at {f_est} Hz, expected {fd}"
        );
        // Peak overshoot exists (under-damped).
        let peak = x.iter().fold(0.0f64, |m, v| m.max(*v));
        assert!(peak > settled * 1.3, "peak {peak} vs settled {settled}");
    }

    #[test]
    fn fixed_step_equals_adaptive_for_linear_rc() {
        let build = || {
            let mut c = Circuit::new();
            let a = c.enode("a").unwrap();
            let b = c.enode("b").unwrap();
            let g = c.ground();
            c.add(VoltageSource::new(
                "v1",
                a,
                g,
                Waveform::Sin {
                    offset: 0.0,
                    ampl: 1.0,
                    freq: 100.0,
                    delay: 0.0,
                    theta: 0.0,
                },
            ))
            .unwrap();
            c.add(Resistor::new("r1", a, b, 1e3)).unwrap();
            c.add(Capacitor::new("c1", b, g, 1e-6)).unwrap();
            c
        };
        let sim = SimOptions::default();
        let mut c1 = build();
        let r1 = run(&mut c1, &TranOptions::fixed_step(0.02, 2e-5), &sim).unwrap();
        let mut c2 = build();
        let r2 = run(&mut c2, &TranOptions::new(0.02), &sim).unwrap();
        let (_, y1) = r1.resample("v(b)", 200).unwrap();
        let (_, y2) = r2.resample("v(b)", 200).unwrap();
        let diff = mems_numerics::stats::max_abs_diff(&y1, &y2);
        assert!(diff < 5e-3, "fixed vs adaptive diverge: {diff}");
    }

    #[test]
    fn breakpoints_are_hit_exactly() {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let g = c.ground();
        c.add(VoltageSource::new(
            "v1",
            a,
            g,
            Waveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 3e-3,
                rise: 1e-3,
                fall: 1e-3,
                width: 2e-3,
                period: 0.0,
            },
        ))
        .unwrap();
        c.add(Resistor::new("r1", a, g, 1e3)).unwrap();
        let res = run(&mut c, &TranOptions::new(10e-3), &SimOptions::default()).unwrap();
        for bp in [3e-3, 4e-3, 6e-3, 7e-3] {
            assert!(
                res.time.iter().any(|t| (t - bp).abs() < 1e-12),
                "breakpoint {bp} missed"
            );
        }
    }

    #[test]
    fn rejects_bad_horizon() {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let g = c.ground();
        c.add(Resistor::new("r1", a, g, 1.0)).unwrap();
        assert!(matches!(
            run(&mut c, &TranOptions::new(0.0), &SimOptions::default()),
            Err(SpiceError::BadOptions(_))
        ));
    }
}
