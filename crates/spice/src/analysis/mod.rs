//! Analyses: DC operating point, transient, AC, DC sweep.

pub mod ac;
pub mod dcop;
pub mod sweep;
pub mod transient;
