//! DC operating-point analysis with gmin and source stepping.

use crate::circuit::Circuit;
use crate::device::{CommitKind, LoadKind};
use crate::error::{Result, SpiceError};
use crate::output::OpSolution;
use crate::solver::{newton, SimOptions, Workspace};

/// Solves the DC operating point and commits it to every device
/// (histories seed for a following transient or AC analysis).
///
/// Strategy: plain Newton from zero → gmin stepping (leak decades from
/// 1e-3 down to `opts.gmin`) → source stepping (ramp sources 0 → 1).
///
/// # Errors
///
/// Returns [`SpiceError::NoConvergence`] when every homotopy fails.
pub fn solve(circuit: &mut Circuit, opts: &SimOptions) -> Result<OpSolution> {
    solve_from(circuit, opts, None)
}

/// [`solve`] warm-started from a previous solution: plain Newton runs
/// from `guess` first (a sweep's previous point is usually a few
/// iterations away), falling back to the cold-start homotopies when it
/// diverges. A `guess` of the wrong length is ignored.
///
/// # Errors
///
/// As [`solve`].
pub fn solve_from(
    circuit: &mut Circuit,
    opts: &SimOptions,
    guess: Option<&[f64]>,
) -> Result<OpSolution> {
    let mut ws = Workspace::with_solver(
        0,
        opts.matrix,
        opts.ordering,
        opts.factor,
        opts.factor_threads,
    );
    solve_in(circuit, opts, guess, &mut ws)
}

/// [`solve_from`] over a caller-owned [`Workspace`], the reuse hook
/// for sweeps, transients, and `.STEP`/`.MC` batch points: when the
/// workspace already matches the circuit's unknown count (same
/// topology), its cached structure — notably the sparse backend's
/// sparsity pattern and symbolic factorization — carries over and
/// only the numeric factorization is redone.
///
/// # Errors
///
/// As [`solve`].
pub fn solve_in(
    circuit: &mut Circuit,
    opts: &SimOptions,
    guess: Option<&[f64]>,
    ws: &mut Workspace,
) -> Result<OpSolution> {
    let layout = circuit.layout();
    ws.ensure_solver(
        layout.n_unknowns,
        opts.matrix,
        opts.ordering,
        opts.factor,
        opts.factor_threads,
    );
    let x0 = match guess {
        Some(g) if g.len() == layout.n_unknowns => g.to_vec(),
        _ => vec![0.0; layout.n_unknowns],
    };

    // 1. Plain Newton.
    let direct = newton(
        circuit,
        &layout,
        LoadKind::Dc {
            gmin: opts.gmin,
            source_scale: 1.0,
        },
        opts.gmin,
        opts,
        &x0,
        ws,
    );
    let outcome = match direct {
        Ok(o) => Ok(o),
        Err(_) => {
            // Homotopies always restart from zero: a bad warm-start
            // guess must not poison the fallback path.
            let zeros = vec![0.0; layout.n_unknowns];
            gmin_stepping(circuit, &layout, opts, &zeros, ws)
                .or_else(|_| source_stepping(circuit, &layout, opts, &zeros, ws))
        }
    };
    let outcome = outcome.map_err(|e| SpiceError::NoConvergence {
        analysis: "dc operating point".into(),
        detail: e.to_string(),
    })?;

    for dev in circuit.devices_mut() {
        dev.commit(
            &outcome.x,
            &layout,
            CommitKind {
                is_dc: true,
                h: 0.0,
            },
        );
    }
    Ok(OpSolution {
        x: outcome.x,
        layout,
        iterations: outcome.iterations,
    })
}

fn gmin_stepping(
    circuit: &mut Circuit,
    layout: &crate::circuit::UnknownLayout,
    opts: &SimOptions,
    x0: &[f64],
    ws: &mut Workspace,
) -> Result<crate::solver::NewtonOutcome> {
    let mut x = x0.to_vec();
    let mut gmin = 1e-3;
    let mut last = None;
    while gmin >= opts.gmin.max(1e-15) {
        let out = newton(
            circuit,
            layout,
            LoadKind::Dc {
                gmin,
                source_scale: 1.0,
            },
            gmin,
            opts,
            &x,
            ws,
        )?;
        x = out.x.clone();
        last = Some(out);
        gmin /= 10.0;
    }
    // Final solve at the target gmin.
    let out = newton(
        circuit,
        layout,
        LoadKind::Dc {
            gmin: opts.gmin,
            source_scale: 1.0,
        },
        opts.gmin,
        opts,
        &x,
        ws,
    )?;
    let _ = last;
    Ok(out)
}

fn source_stepping(
    circuit: &mut Circuit,
    layout: &crate::circuit::UnknownLayout,
    opts: &SimOptions,
    x0: &[f64],
    ws: &mut Workspace,
) -> Result<crate::solver::NewtonOutcome> {
    let mut x = x0.to_vec();
    let steps = 20;
    for k in 1..=steps {
        let scale = k as f64 / steps as f64;
        let out = newton(
            circuit,
            layout,
            LoadKind::Dc {
                gmin: opts.gmin,
                source_scale: scale,
            },
            opts.gmin,
            opts,
            &x,
            ws,
        )?;
        x = out.x.clone();
        if k == steps {
            return Ok(out);
        }
    }
    unreachable!("loop returns at k == steps")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::coupling::{Gyrator, IdealTransformer};
    use crate::devices::passive::{Capacitor, Inductor, Resistor};
    use crate::devices::sources::VoltageSource;
    use crate::wave::Waveform;

    #[test]
    fn rc_ladder_op() {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let b = c.enode("b").unwrap();
        let g = c.ground();
        c.add(VoltageSource::new("v1", a, g, Waveform::Dc(5.0)))
            .unwrap();
        c.add(Resistor::new("r1", a, b, 1e3)).unwrap();
        c.add(Capacitor::new("c1", b, g, 1e-9)).unwrap();
        let op = solve(&mut c, &SimOptions::default()).unwrap();
        // Capacitor open at DC → no drop across r1.
        assert!((op.v(a) - 5.0).abs() < 1e-9);
        assert!((op.v(b) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn inductor_shorts_at_dc() {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let b = c.enode("b").unwrap();
        let g = c.ground();
        c.add(VoltageSource::new("v1", a, g, Waveform::Dc(1.0)))
            .unwrap();
        c.add(Resistor::new("r1", a, b, 100.0)).unwrap();
        c.add(Inductor::new("l1", b, g, 1e-3)).unwrap();
        let op = solve(&mut c, &SimOptions::default()).unwrap();
        assert!(op.v(b).abs() < 1e-8);
        // Inductor current = 1 V / 100 Ω.
        let il = op.by_label("i(l1,0)").unwrap();
        assert!((il - 0.01).abs() < 1e-9);
    }

    #[test]
    fn transformer_reflects_voltage() {
        let mut c = Circuit::new();
        let p = c.enode("p").unwrap();
        let s = c.enode("s").unwrap();
        let g = c.ground();
        c.add(VoltageSource::new("v1", p, g, Waveform::Dc(8.0)))
            .unwrap();
        c.add(IdealTransformer::new("t1", p, g, s, g, 4.0)).unwrap();
        c.add(Resistor::new("rl", s, g, 50.0)).unwrap();
        let op = solve(&mut c, &SimOptions::default()).unwrap();
        // v1 = n·v2 → v2 = 2 V.
        assert!((op.v(s) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gyrator_converts_voltage_to_current() {
        let mut c = Circuit::new();
        let p = c.enode("p").unwrap();
        let s = c.enode("s").unwrap();
        let g = c.ground();
        c.add(VoltageSource::new("v1", p, g, Waveform::Dc(2.0)))
            .unwrap();
        c.add(Gyrator::new("g1", p, g, s, g, 0.1)).unwrap();
        c.add(Resistor::new("rl", s, g, 10.0)).unwrap();
        let op = solve(&mut c, &SimOptions::default()).unwrap();
        // Port 2: i2 = −g·v1 = −0.2 A delivered into node s → v(s) = 2 V.
        assert!((op.v(s) - 2.0).abs() < 1e-9, "v(s) = {}", op.v(s));
    }
}
