//! DC parameter sweeps.
//!
//! The circuit is rebuilt per sweep point (circuits here are small —
//! the paper's systems are a handful of nodes), which keeps the API
//! free of device-mutation plumbing and each point warm-started from
//! the previous solution.

use crate::circuit::Circuit;
use crate::error::Result;
use crate::output::OpSolution;
use crate::solver::SimOptions;

/// Result of a DC sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Swept parameter values.
    pub values: Vec<f64>,
    /// Operating point per value.
    pub points: Vec<OpSolution>,
}

impl SweepResult {
    /// Extracts one unknown (by label) across the sweep.
    pub fn trace(&self, label: &str) -> Option<Vec<f64>> {
        self.points
            .iter()
            .map(|op| op.by_label(label))
            .collect::<Option<Vec<f64>>>()
    }
}

/// Runs a DC sweep: `build(value)` constructs the circuit for each
/// point, and the operating point is solved per point.
///
/// # Errors
///
/// Propagates build and convergence failures (the failing sweep value
/// is included in the error detail).
pub fn dc_sweep(
    mut build: impl FnMut(f64) -> Result<Circuit>,
    values: &[f64],
    sim: &SimOptions,
) -> Result<SweepResult> {
    let mut result = SweepResult {
        values: values.to_vec(),
        points: Vec::with_capacity(values.len()),
    };
    for &v in values {
        let mut circuit = build(v)?;
        let op = super::dcop::solve(&mut circuit, sim).map_err(|e| {
            crate::error::SpiceError::NoConvergence {
                analysis: format!("dc sweep at value {v}"),
                detail: e.to_string(),
            }
        })?;
        result.points.push(op);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::passive::Resistor;
    use crate::devices::sources::VoltageSource;
    use crate::wave::Waveform;

    #[test]
    fn sweeps_a_divider() {
        let result = dc_sweep(
            |v| {
                let mut c = Circuit::new();
                let a = c.enode("a")?;
                let b = c.enode("b")?;
                let g = c.ground();
                c.add(VoltageSource::new("v1", a, g, Waveform::Dc(v)))?;
                c.add(Resistor::new("r1", a, b, 1e3))?;
                c.add(Resistor::new("r2", b, g, 1e3))?;
                Ok(c)
            },
            &[0.0, 1.0, 2.0, 5.0],
            &SimOptions::default(),
        )
        .unwrap();
        let vb = result.trace("v(b)").unwrap();
        assert_eq!(vb.len(), 4);
        for (v, expect) in vb.iter().zip(&[0.0, 0.5, 1.0, 2.5]) {
            assert!((v - expect).abs() < 1e-6);
        }
    }
}
