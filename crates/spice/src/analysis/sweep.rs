//! DC parameter sweeps.
//!
//! Each point is warm-started from the previous solution. The
//! classic entry points rebuild the circuit per sweep value;
//! [`dc_sweep_reuse_in`] hands the previous point's circuit back to
//! the caller so a device-level `set_param` path can patch it in
//! place instead.

use crate::circuit::Circuit;
use crate::error::Result;
use crate::output::OpSolution;
use crate::solver::{SimOptions, Workspace};

/// Result of a DC sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Swept parameter values.
    pub values: Vec<f64>,
    /// Operating point per value.
    pub points: Vec<OpSolution>,
}

impl SweepResult {
    /// Extracts one unknown (by label) across the sweep.
    pub fn trace(&self, label: &str) -> Option<Vec<f64>> {
        self.points
            .iter()
            .map(|op| op.by_label(label))
            .collect::<Option<Vec<f64>>>()
    }
}

/// Runs a DC sweep: `build(value)` constructs the circuit for each
/// point, and the operating point is solved per point.
///
/// # Errors
///
/// Propagates build and convergence failures (the failing sweep value
/// is included in the error detail).
pub fn dc_sweep(
    build: impl FnMut(f64) -> Result<Circuit>,
    values: &[f64],
    sim: &SimOptions,
) -> Result<SweepResult> {
    let mut ws =
        Workspace::with_solver(0, sim.matrix, sim.ordering, sim.factor, sim.factor_threads);
    dc_sweep_in(build, values, sim, &mut ws)
}

/// [`dc_sweep`] over a caller-owned [`Workspace`]: besides the
/// warm-start, every point shares one assembly workspace (and, on the
/// sparse backend, one symbolic factorization — the rebuilt circuits
/// have identical topology).
///
/// # Errors
///
/// As [`dc_sweep`].
pub fn dc_sweep_in(
    mut build: impl FnMut(f64) -> Result<Circuit>,
    values: &[f64],
    sim: &SimOptions,
    ws: &mut Workspace,
) -> Result<SweepResult> {
    dc_sweep_reuse_in(|v, _| build(v), values, sim, ws).map(|(result, _)| result)
}

/// The circuit-reuse form of [`dc_sweep_in`]: `supply(value, prev)`
/// receives the previous point's circuit back (None on the first
/// point) so callers with a device-level `set_param` path can patch
/// one circuit in place instead of rebuilding per value. Returns the
/// final circuit alongside the result so it can keep serving later
/// sweeps (e.g. the next `.STEP`/`.MC` batch point).
///
/// # Errors
///
/// As [`dc_sweep`].
pub fn dc_sweep_reuse_in(
    mut supply: impl FnMut(f64, Option<Circuit>) -> Result<Circuit>,
    values: &[f64],
    sim: &SimOptions,
    ws: &mut Workspace,
) -> Result<(SweepResult, Option<Circuit>)> {
    let mut result = SweepResult {
        values: values.to_vec(),
        points: Vec::with_capacity(values.len()),
    };
    let mut prev: Option<Vec<f64>> = None;
    let mut circuit: Option<Circuit> = None;
    for &v in values {
        let mut ckt = supply(v, circuit.take())?;
        let op = super::dcop::solve_in(&mut ckt, sim, prev.as_deref(), ws).map_err(|e| {
            crate::error::SpiceError::NoConvergence {
                analysis: format!("dc sweep at value {v}"),
                detail: e.to_string(),
            }
        })?;
        prev = Some(op.x.clone());
        result.points.push(op);
        circuit = Some(ckt);
    }
    Ok((result, circuit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::controlled::ProductVccs;
    use crate::devices::passive::Resistor;
    use crate::devices::sources::VoltageSource;
    use crate::wave::Waveform;

    /// A strongly nonlinear one-node circuit: source → resistor →
    /// node loaded by a quadratic sink `i = k·v(out)²`.
    fn quadratic_circuit(v: f64) -> crate::error::Result<Circuit> {
        let mut c = Circuit::new();
        let a = c.enode("a")?;
        let out = c.enode("out")?;
        let g = c.ground();
        c.add(VoltageSource::new("v1", a, g, Waveform::Dc(v)))?;
        c.add(Resistor::new("r1", a, out, 1.0))?;
        c.add(Resistor::new("rleak", out, g, 1e6))?;
        c.add(ProductVccs::new("q1", out, g, out, g, out, g, 2.0))?;
        Ok(c)
    }

    /// Analytic solution of v + 2·v² ·1 = vs (ignoring the 1 MΩ leak):
    /// the stable root of 2v² + v − vs = 0.
    fn quadratic_expect(vs: f64) -> f64 {
        (-1.0 + (1.0 + 8.0 * vs).sqrt()) / 4.0
    }

    #[test]
    fn warm_start_reuses_previous_point() {
        let values: Vec<f64> = (0..21).map(|i| i as f64 * 0.5).collect();
        let sim = SimOptions::default();
        let result = dc_sweep(quadratic_circuit, &values, &sim).unwrap();

        // Solutions are right regardless of starting point.
        let out = result.trace("v(out)").unwrap();
        for (vs, v) in values.iter().zip(&out) {
            assert!(
                (v - quadratic_expect(*vs)).abs() < 1e-5,
                "vs {vs}: {v} vs {}",
                quadratic_expect(*vs)
            );
        }

        // Warm starting must not cost more Newton iterations than
        // cold-starting every point — and on this quadratic it is
        // strictly cheaper overall.
        let warm_total: usize = result.points.iter().map(|p| p.iterations).sum();
        let cold_total: usize = values
            .iter()
            .map(|&v| {
                let mut c = quadratic_circuit(v).unwrap();
                super::super::dcop::solve(&mut c, &sim).unwrap().iterations
            })
            .sum();
        assert!(
            warm_total < cold_total,
            "warm {warm_total} vs cold {cold_total}"
        );

        // Warm-started points match the cold solutions exactly (same
        // converged solution, not a drifted one).
        for (&v, p) in values.iter().zip(&result.points) {
            let mut c = quadratic_circuit(v).unwrap();
            let cold = super::super::dcop::solve(&mut c, &sim).unwrap();
            let a = p.by_label("v(out)").unwrap();
            let b = cold.by_label("v(out)").unwrap();
            assert!((a - b).abs() < 1e-9, "vs {v}: warm {a} vs cold {b}");
        }
    }

    #[test]
    fn warm_start_guess_of_wrong_length_is_ignored() {
        let mut c = quadratic_circuit(2.0).unwrap();
        let sim = SimOptions::default();
        let bad_guess = vec![1.0; 99];
        let op = super::super::dcop::solve_from(&mut c, &sim, Some(&bad_guess)).unwrap();
        assert!((op.by_label("v(out)").unwrap() - quadratic_expect(2.0)).abs() < 1e-5);
    }

    #[test]
    fn trace_with_missing_label_is_none() {
        let result = dc_sweep(
            |v| {
                let mut c = Circuit::new();
                let a = c.enode("a")?;
                let g = c.ground();
                c.add(VoltageSource::new("v1", a, g, Waveform::Dc(v)))?;
                c.add(Resistor::new("r1", a, g, 1e3))?;
                Ok(c)
            },
            &[1.0, 2.0],
            &SimOptions::default(),
        )
        .unwrap();
        assert!(result.trace("v(a)").is_some());
        assert!(result.trace("v(nope)").is_none());
        assert!(result.trace("").is_none());
        // An empty sweep yields empty traces, not None.
        let empty = SweepResult {
            values: vec![],
            points: vec![],
        };
        assert_eq!(empty.trace("v(a)"), Some(vec![]));
    }

    #[test]
    fn sweeps_a_divider() {
        let result = dc_sweep(
            |v| {
                let mut c = Circuit::new();
                let a = c.enode("a")?;
                let b = c.enode("b")?;
                let g = c.ground();
                c.add(VoltageSource::new("v1", a, g, Waveform::Dc(v)))?;
                c.add(Resistor::new("r1", a, b, 1e3))?;
                c.add(Resistor::new("r2", b, g, 1e3))?;
                Ok(c)
            },
            &[0.0, 1.0, 2.0, 5.0],
            &SimOptions::default(),
        )
        .unwrap();
        let vb = result.trace("v(b)").unwrap();
        assert_eq!(vb.len(), 4);
        for (v, expect) in vb.iter().zip(&[0.0, 0.5, 1.0, 2.5]) {
            assert!((v - expect).abs() < 1e-6);
        }
    }
}
