//! The behavioral device: hosts a compiled HDL-A model instance.
//!
//! This is the paper's central mechanism — "system-level simulation is
//! performed in the SPICE simulator using behavioral models of the
//! transducers". The device maps the instance's pins onto circuit
//! nodes, exposes the model's `UNKNOWN` objects as extra MNA unknowns,
//! and converts dual-number contributions into residual/Jacobian
//! stamps.

use crate::circuit::{NodeId, UnknownLayout};
use crate::device::{AcLoadCtx, CommitKind, Device, LoadCtx, LoadKind};
use crate::error::{Result, SpiceError};
use mems_hdl::compile::BranchInfo;
use mems_hdl::eval::{DualComplex, DualReal, EvalEnv};
use mems_hdl::model::{HdlModel, Instance};
use mems_numerics::Complex64;

/// A behavioral device wrapping an elaborated HDL-A instance.
pub struct HdlDevice {
    model: HdlModel,
    instance: Instance,
    pins: Vec<NodeId>,
    branches: Vec<BranchInfo>,
    n_unknowns: usize,
    base: usize,
    /// Reports collected during the last evaluation.
    pub last_reports: Vec<String>,
}

impl std::fmt::Debug for HdlDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HdlDevice")
            .field("name", &self.instance.name())
            .field("model", &self.instance.model().name)
            .field("pins", &self.pins)
            .finish()
    }
}

impl HdlDevice {
    /// Builds a behavioral device.
    ///
    /// `nodes` are positional, matching the entity's pin declaration
    /// order; `generics` override model parameters by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Build`] for a pin-count mismatch and
    /// propagates elaboration failures.
    pub fn new(
        name: &str,
        model: &HdlModel,
        generics: &[(&str, f64)],
        nodes: &[NodeId],
    ) -> Result<Self> {
        let compiled = model.compiled();
        if nodes.len() != compiled.pins.len() {
            return Err(SpiceError::Build(format!(
                "model `{}` has {} pins but {} nodes were supplied",
                compiled.name,
                compiled.pins.len(),
                nodes.len()
            )));
        }
        let instance = model
            .instantiate(name, generics)
            .map_err(|e| SpiceError::Device {
                device: name.to_string(),
                detail: e.to_string(),
            })?;
        let branches = compiled.branches.clone();
        let n_unknowns = compiled.n_unknowns;
        Ok(HdlDevice {
            model: model.clone(),
            instance,
            pins: nodes.to_vec(),
            branches,
            n_unknowns,
            base: usize::MAX,
            last_reports: Vec::new(),
        })
    }

    /// The hosted instance (model introspection, state access).
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Mutable access to the hosted instance (evaluator selection,
    /// state manipulation in tests).
    pub fn instance_mut(&mut self) -> &mut Instance {
        &mut self.instance
    }

    /// Re-binds the generics by re-elaborating the instance in place
    /// (elaborate-once batches): the fresh instance re-runs the
    /// `init` program, re-folds the tables, and starts from pristine
    /// history — exactly the state a rebuilt deck would produce. The
    /// selected evaluator carries over.
    ///
    /// # Errors
    ///
    /// Same failures as [`HdlDevice::new`] (unknown/missing generics,
    /// bad table axes, `init` assertions).
    pub fn set_generics(&mut self, generics: &[(&str, f64)]) -> Result<()> {
        let mode = self.instance.eval_mode();
        let mut instance = self
            .model
            .instantiate(self.instance.name(), generics)
            .map_err(|e| SpiceError::Device {
                device: self.instance.name().to_string(),
                detail: e.to_string(),
            })?;
        instance.set_eval_mode(mode);
        self.instance = instance;
        self.last_reports.clear();
        Ok(())
    }

    /// Local gradient slot count: one per pin, then one per unknown.
    fn n_local(&self) -> usize {
        self.pins.len() + self.n_unknowns
    }
}

/// Real-valued evaluation adapter.
struct RealEnv<'a, 'b> {
    dev_pins: &'a [NodeId],
    branches: &'a [BranchInfo],
    base: usize,
    n_local: usize,
    ctx: &'a mut LoadCtx<'b>,
    reports: Vec<String>,
}

impl<'a, 'b> RealEnv<'a, 'b> {
    fn map_slot(&self, slot: usize) -> Option<usize> {
        if slot < self.dev_pins.len() {
            self.ctx.node_unknown(self.dev_pins[slot])
        } else {
            Some(self.base + (slot - self.dev_pins.len()))
        }
    }
}

impl<'a, 'b> EvalEnv<DualReal> for RealEnv<'a, 'b> {
    fn n_grad(&self) -> usize {
        self.n_local
    }

    fn across(&self, branch: usize) -> DualReal {
        let info = self.branches[branch];
        let va = self.ctx.v(self.dev_pins[info.pin_a]);
        let vb = self.ctx.v(self.dev_pins[info.pin_b]);
        let mut g = vec![0.0; self.n_local];
        g[info.pin_a] += 1.0;
        g[info.pin_b] -= 1.0;
        DualReal { v: va - vb, g }
    }

    fn unknown(&self, index: usize) -> DualReal {
        DualReal::variable(
            self.ctx.unknown(self.base + index),
            self.n_local,
            self.dev_pins.len() + index,
        )
    }

    fn contribute(&mut self, branch: usize, value: DualReal) {
        let info = self.branches[branch];
        let a = self.dev_pins[info.pin_a];
        let b = self.dev_pins[info.pin_b];
        let di: Vec<(Option<usize>, f64)> = value
            .g
            .iter()
            .enumerate()
            .filter(|(_, g)| **g != 0.0)
            .map(|(slot, g)| (self.map_slot(slot), *g))
            .collect();
        self.ctx.through(a, b, value.v, &di);
    }

    fn residual(&mut self, index: usize, value: DualReal) {
        let row = Some(self.base + index);
        self.ctx.residual(row, value.v);
        for (slot, g) in value.g.iter().enumerate() {
            if *g != 0.0 {
                self.ctx.stamp(row, self.map_slot(slot), *g);
            }
        }
    }

    fn report(&mut self, message: &str) {
        self.reports.push(message.to_string());
    }
}

/// Complex-valued (AC) evaluation adapter.
struct AcEnv<'a, 'b> {
    dev_pins: &'a [NodeId],
    branches: &'a [BranchInfo],
    base: usize,
    n_local: usize,
    ctx: &'a mut AcLoadCtx<'b>,
}

impl<'a, 'b> AcEnv<'a, 'b> {
    fn map_slot(&self, slot: usize) -> Option<usize> {
        if slot < self.dev_pins.len() {
            self.ctx.node_unknown(self.dev_pins[slot])
        } else {
            Some(self.base + (slot - self.dev_pins.len()))
        }
    }
}

impl<'a, 'b> EvalEnv<DualComplex> for AcEnv<'a, 'b> {
    fn n_grad(&self) -> usize {
        self.n_local
    }

    fn across(&self, branch: usize) -> DualComplex {
        let info = self.branches[branch];
        let va = self.ctx.op_v(self.dev_pins[info.pin_a]);
        let vb = self.ctx.op_v(self.dev_pins[info.pin_b]);
        let mut g = vec![Complex64::ZERO; self.n_local];
        g[info.pin_a] += Complex64::ONE;
        g[info.pin_b] -= Complex64::ONE;
        DualComplex { v: va - vb, g }
    }

    fn unknown(&self, index: usize) -> DualComplex {
        DualComplex::variable(
            self.ctx.op_unknown(self.base + index),
            self.n_local,
            self.dev_pins.len() + index,
        )
    }

    fn contribute(&mut self, branch: usize, value: DualComplex) {
        let info = self.branches[branch];
        let ra = self.ctx.node_unknown(self.dev_pins[info.pin_a]);
        let rb = self.ctx.node_unknown(self.dev_pins[info.pin_b]);
        for (slot, g) in value.g.iter().enumerate() {
            if *g != Complex64::ZERO {
                let col = self.map_slot(slot);
                self.ctx.stamp(ra, col, *g);
                self.ctx.stamp(rb, col, -*g);
            }
        }
    }

    fn residual(&mut self, index: usize, value: DualComplex) {
        let row = Some(self.base + index);
        for (slot, g) in value.g.iter().enumerate() {
            if *g != Complex64::ZERO {
                self.ctx.stamp(row, self.map_slot(slot), *g);
            }
        }
    }

    fn report(&mut self, _message: &str) {}
}

impl Device for HdlDevice {
    fn name(&self) -> &str {
        self.instance.name()
    }

    fn pins(&self) -> &[NodeId] {
        &self.pins
    }

    fn n_internal(&self) -> usize {
        self.n_unknowns
    }

    fn set_internal_base(&mut self, base: usize) {
        self.base = base;
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        if self.n_unknowns > 0 && self.base == usize::MAX {
            return Err(SpiceError::Device {
                device: self.instance.name().to_string(),
                detail: "layout() was not run before load".into(),
            });
        }
        let kind = ctx.kind;
        let mut env = RealEnv {
            dev_pins: &self.pins,
            branches: &self.branches,
            base: self.base,
            n_local: self.n_local(),
            ctx,
            reports: Vec::new(),
        };
        let result = match kind {
            LoadKind::Dc { .. } => self.instance.eval_dc(&mut env),
            LoadKind::Transient { t, h, method } => {
                self.instance.eval_transient(t, h, method, &mut env)
            }
        };
        self.last_reports = env.reports;
        result.map_err(|e| SpiceError::Device {
            device: self.instance.name().to_string(),
            detail: e.to_string(),
        })
    }

    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        let omega = ctx.omega;
        let mut env = AcEnv {
            dev_pins: &self.pins,
            branches: &self.branches,
            base: self.base,
            n_local: self.n_local(),
            ctx,
        };
        self.instance
            .eval_ac(omega, &mut env)
            .map_err(|e| SpiceError::Device {
                device: self.instance.name().to_string(),
                detail: e.to_string(),
            })
    }

    fn commit(&mut self, _x: &[f64], _layout: &UnknownLayout, kind: CommitKind) {
        if kind.is_dc {
            self.instance.commit_dc();
        } else {
            self.instance.commit_transient(kind.h);
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}
