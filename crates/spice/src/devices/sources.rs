//! Independent sources with waveforms and AC specifications.

use crate::circuit::{NodeId, UnknownLayout};
use crate::device::{AcLoadCtx, CommitKind, Device, LoadCtx};
use crate::error::{Result, SpiceError};
use crate::wave::Waveform;
use mems_numerics::Complex64;

/// Small-signal stimulus specification (magnitude, phase in degrees).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcSpec {
    /// Magnitude of the phasor.
    pub mag: f64,
    /// Phase in degrees.
    pub phase_deg: f64,
}

impl AcSpec {
    /// Unit stimulus (1∠0°).
    pub fn unit() -> Self {
        AcSpec {
            mag: 1.0,
            phase_deg: 0.0,
        }
    }

    /// The complex phasor.
    pub fn phasor(self) -> Complex64 {
        Complex64::from_polar(self.mag, self.phase_deg.to_radians())
    }
}

/// Independent voltage source (nature-agnostic "across source": also
/// serves as a velocity source on mechanical nodes under the FI
/// analogy).
#[derive(Debug, Clone)]
pub struct VoltageSource {
    name: String,
    pins: [NodeId; 2],
    wave: Waveform,
    ac: Option<AcSpec>,
    base: usize,
}

impl VoltageSource {
    /// Creates a source forcing `v_a − v_b = wave(t)`.
    pub fn new(name: &str, a: NodeId, b: NodeId, wave: Waveform) -> Self {
        VoltageSource {
            name: name.to_string(),
            pins: [a, b],
            wave,
            ac: None,
            base: usize::MAX,
        }
    }

    /// Attaches an AC stimulus.
    pub fn with_ac(mut self, spec: AcSpec) -> Self {
        self.ac = Some(spec);
        self
    }

    /// The waveform.
    pub fn waveform(&self) -> &Waveform {
        &self.wave
    }

    /// Replaces the waveform in place (elaborate-once batches).
    pub fn set_wave(&mut self, wave: Waveform) {
        self.wave = wave;
    }

    /// Replaces the AC stimulus in place (elaborate-once batches).
    pub fn set_ac(&mut self, spec: Option<AcSpec>) {
        self.ac = spec;
    }

    /// Global unknown index of the branch current.
    pub fn branch_unknown(&self) -> usize {
        self.base
    }
}

impl Device for VoltageSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn pins(&self) -> &[NodeId] {
        &self.pins
    }

    fn n_internal(&self) -> usize {
        1
    }

    fn set_internal_base(&mut self, base: usize) {
        self.base = base;
    }

    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        if self.base == usize::MAX {
            return Err(SpiceError::Device {
                device: self.name.clone(),
                detail: "layout() was not run before load".into(),
            });
        }
        let (a, b) = (self.pins[0], self.pins[1]);
        let j = ctx.unknown(self.base);
        let row_j = Some(self.base);
        ctx.through(a, b, j, &[(row_j, 1.0)]);
        let target = self.wave.at(ctx.kind.time()) * ctx.kind.source_scale();
        let ca = ctx.node_unknown(a);
        let cb = ctx.node_unknown(b);
        ctx.residual(row_j, ctx.v(a) - ctx.v(b) - target);
        ctx.stamp(row_j, ca, 1.0);
        ctx.stamp(row_j, cb, -1.0);
        Ok(())
    }

    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        let (a, b) = (self.pins[0], self.pins[1]);
        let row_j = Some(self.base);
        let ca = ctx.node_unknown(a);
        let cb = ctx.node_unknown(b);
        ctx.stamp(ca, row_j, Complex64::ONE);
        ctx.stamp(cb, row_j, -Complex64::ONE);
        ctx.stamp(row_j, ca, Complex64::ONE);
        ctx.stamp(row_j, cb, -Complex64::ONE);
        let phasor = self.ac.map_or(Complex64::ZERO, AcSpec::phasor);
        ctx.rhs(row_j, phasor);
        Ok(())
    }

    fn commit(&mut self, _x: &[f64], _layout: &UnknownLayout, _kind: CommitKind) {}

    fn breakpoints(&self, t_end: f64) -> Vec<f64> {
        self.wave.breakpoints(t_end)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Independent current source (a force source on mechanical nodes
/// under the FI analogy): pushes `wave(t)` from pin `a` through itself
/// to pin `b`.
#[derive(Debug, Clone)]
pub struct CurrentSource {
    name: String,
    pins: [NodeId; 2],
    wave: Waveform,
    ac: Option<AcSpec>,
}

impl CurrentSource {
    /// Creates a source forcing current `wave(t)` from `a` to `b`.
    pub fn new(name: &str, a: NodeId, b: NodeId, wave: Waveform) -> Self {
        CurrentSource {
            name: name.to_string(),
            pins: [a, b],
            wave,
            ac: None,
        }
    }

    /// Attaches an AC stimulus.
    pub fn with_ac(mut self, spec: AcSpec) -> Self {
        self.ac = Some(spec);
        self
    }

    /// The waveform.
    pub fn waveform(&self) -> &Waveform {
        &self.wave
    }

    /// Replaces the waveform in place (elaborate-once batches).
    pub fn set_wave(&mut self, wave: Waveform) {
        self.wave = wave;
    }

    /// Replaces the AC stimulus in place (elaborate-once batches).
    pub fn set_ac(&mut self, spec: Option<AcSpec>) {
        self.ac = spec;
    }
}

impl Device for CurrentSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn pins(&self) -> &[NodeId] {
        &self.pins
    }

    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        let i = self.wave.at(ctx.kind.time()) * ctx.kind.source_scale();
        ctx.through(self.pins[0], self.pins[1], i, &[]);
        Ok(())
    }

    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        // Constant (x-independent) term moves to the RHS with opposite
        // sign: J·X = B.
        let phasor = self.ac.map_or(Complex64::ZERO, AcSpec::phasor);
        let ra = ctx.node_unknown(self.pins[0]);
        let rb = ctx.node_unknown(self.pins[1]);
        ctx.rhs(ra, -phasor);
        ctx.rhs(rb, phasor);
        Ok(())
    }

    fn breakpoints(&self, t_end: f64) -> Vec<f64> {
        self.wave.breakpoints(t_end)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ac_spec_phasor() {
        let p = AcSpec {
            mag: 2.0,
            phase_deg: 90.0,
        }
        .phasor();
        assert!(p.re.abs() < 1e-12);
        assert!((p.im - 2.0).abs() < 1e-12);
        assert_eq!(AcSpec::unit().mag, 1.0);
    }
}
