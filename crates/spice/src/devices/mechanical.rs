//! Mechanical elements under the force–current analogy.
//!
//! The paper (Fig. 4) maps the resonator onto electrical primitives:
//! mass → capacitor `C = m`, damper → resistor `R = 1/α`, spring →
//! inductor `L = 1/k`. These wrappers keep the mechanical parameter
//! names and delegate to the electrical stamps, so netlists read like
//! the physics.

use crate::circuit::{NodeId, UnknownLayout};
use crate::device::{AcLoadCtx, CommitKind, Device, LoadCtx};
use crate::devices::passive::{Capacitor, Inductor, Resistor};
use crate::error::Result;

/// A point mass attached to a velocity node (second terminal is the
/// inertial reference, i.e. ground): force `F = m·dv/dt`.
#[derive(Debug, Clone)]
pub struct Mass {
    inner: Capacitor,
    mass: f64,
}

impl Mass {
    /// Creates a mass of `m` kilograms on velocity node `v`,
    /// referenced to `reference` (normally ground).
    pub fn new(name: &str, v: NodeId, reference: NodeId, m: f64) -> Self {
        Mass {
            inner: Capacitor::new(name, v, reference, m),
            mass: m,
        }
    }

    /// The mass [kg].
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// Re-binds the mass in place, resetting the integration history
    /// (elaborate-once batches).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive/non-finite mass, like [`Mass::new`].
    pub fn set_mass(&mut self, m: f64) {
        let name = self.inner.name().to_string();
        let [a, b] = [self.inner.pins()[0], self.inner.pins()[1]];
        *self = Mass::new(&name, a, b, m);
    }
}

impl Device for Mass {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn pins(&self) -> &[NodeId] {
        self.inner.pins()
    }
    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        self.inner.load(ctx)
    }
    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        self.inner.load_ac(ctx)
    }
    fn commit(&mut self, x: &[f64], layout: &UnknownLayout, kind: CommitKind) {
        self.inner.commit(x, layout, kind);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// A linear spring between two velocity nodes: `F = k·∫(v_a − v_b)dt`.
///
/// Its branch unknown *is the spring force*, so the displacement is
/// `x = F/k` — the quantity plotted in Fig. 5.
#[derive(Debug, Clone)]
pub struct Spring {
    inner: Inductor,
    stiffness: f64,
}

impl Spring {
    /// Creates a spring of stiffness `k` [N/m].
    pub fn new(name: &str, a: NodeId, b: NodeId, k: f64) -> Self {
        Spring {
            inner: Inductor::new(name, a, b, 1.0 / k),
            stiffness: k,
        }
    }

    /// The stiffness [N/m].
    pub fn stiffness(&self) -> f64 {
        self.stiffness
    }

    /// Re-binds the stiffness in place, resetting the integration
    /// history (elaborate-once batches).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive/non-finite stiffness (the underlying
    /// inductance `1/k` must stay positive and finite).
    pub fn set_stiffness(&mut self, k: f64) {
        let name = self.inner.name().to_string();
        let [a, b] = [self.inner.pins()[0], self.inner.pins()[1]];
        *self = Spring::new(&name, a, b, k);
    }

    /// Global unknown index of the spring force (branch current).
    pub fn force_unknown(&self) -> usize {
        self.inner.branch_unknown()
    }
}

impl Device for Spring {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn pins(&self) -> &[NodeId] {
        self.inner.pins()
    }
    fn n_internal(&self) -> usize {
        self.inner.n_internal()
    }
    fn set_internal_base(&mut self, base: usize) {
        self.inner.set_internal_base(base);
    }
    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        self.inner.load(ctx)
    }
    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        self.inner.load_ac(ctx)
    }
    fn commit(&mut self, x: &[f64], layout: &UnknownLayout, kind: CommitKind) {
        self.inner.commit(x, layout, kind);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// A linear (viscous) damper: `F = α·(v_a − v_b)`.
#[derive(Debug, Clone)]
pub struct Damper {
    inner: Resistor,
    damping: f64,
}

impl Damper {
    /// Creates a damper with coefficient `alpha` [N·s/m].
    pub fn new(name: &str, a: NodeId, b: NodeId, alpha: f64) -> Self {
        Damper {
            inner: Resistor::new(name, a, b, 1.0 / alpha),
            damping: alpha,
        }
    }

    /// The damping coefficient [N·s/m].
    pub fn damping(&self) -> f64 {
        self.damping
    }

    /// Re-binds the damping coefficient in place (elaborate-once
    /// batches).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive/non-finite coefficient (the
    /// underlying resistance `1/α` must stay nonzero and finite).
    pub fn set_damping(&mut self, alpha: f64) {
        let name = self.inner.name().to_string();
        let [a, b] = [self.inner.pins()[0], self.inner.pins()[1]];
        *self = Damper::new(&name, a, b, alpha);
    }
}

impl Device for Damper {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn pins(&self) -> &[NodeId] {
        self.inner.pins()
    }
    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        self.inner.load(ctx)
    }
    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        self.inner.load_ac(ctx)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn fi_analogy_parameter_mapping() {
        let mut c = Circuit::new();
        let v = c.mnode("vel").unwrap();
        let g = c.ground();
        let m = Mass::new("m1", v, g, 1.0e-4);
        assert_eq!(m.mass(), 1.0e-4);
        let s = Spring::new("k1", v, g, 200.0);
        assert_eq!(s.stiffness(), 200.0);
        let d = Damper::new("a1", v, g, 40e-3);
        assert_eq!(d.damping(), 40e-3);
        // Table 4 mapping: C = m, L = 1/k, R = 1/α.
        assert_eq!(s.inner.inductance(), 1.0 / 200.0);
        assert_eq!(d.inner.resistance(), 1.0 / 40e-3);
    }
}
