//! Controlled sources: the four linear SPICE types plus the nonlinear
//! product-controlled current source the paper mentions as the
//! equivalent-circuit escape hatch ("a controlled source
//! `I = const·V1·V2` SPICE primitive").

use crate::circuit::{NodeId, UnknownLayout};
use crate::device::{AcLoadCtx, CommitKind, Device, LoadCtx};
use crate::error::{Result, SpiceError};
use mems_numerics::Complex64;

/// Voltage-controlled current source: `i(out) = gm·(v_cp − v_cn)`.
#[derive(Debug, Clone)]
pub struct Vccs {
    name: String,
    pins: [NodeId; 4],
    gm: f64,
}

impl Vccs {
    /// `out_p → out_n` current controlled by `(cp, cn)` across value.
    pub fn new(name: &str, out_p: NodeId, out_n: NodeId, cp: NodeId, cn: NodeId, gm: f64) -> Self {
        Vccs {
            name: name.to_string(),
            pins: [out_p, out_n, cp, cn],
            gm,
        }
    }

    /// Transconductance [S] (or [N·s/m], … depending on natures).
    pub fn gm(&self) -> f64 {
        self.gm
    }

    /// Re-binds the transconductance in place (elaborate-once
    /// batches).
    pub fn set_gm(&mut self, gm: f64) {
        self.gm = gm;
    }
}

impl Device for Vccs {
    fn name(&self) -> &str {
        &self.name
    }

    fn pins(&self) -> &[NodeId] {
        &self.pins
    }

    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        let [op, on, cp, cn] = self.pins;
        let vc = ctx.v(cp) - ctx.v(cn);
        let ccp = ctx.node_unknown(cp);
        let ccn = ctx.node_unknown(cn);
        ctx.through(op, on, self.gm * vc, &[(ccp, self.gm), (ccn, -self.gm)]);
        Ok(())
    }

    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        let [op, on, cp, cn] = self.pins;
        let g = Complex64::from_re(self.gm);
        let (ro, rn) = (ctx.node_unknown(op), ctx.node_unknown(on));
        let (ccp, ccn) = (ctx.node_unknown(cp), ctx.node_unknown(cn));
        ctx.stamp(ro, ccp, g);
        ctx.stamp(ro, ccn, -g);
        ctx.stamp(rn, ccp, -g);
        ctx.stamp(rn, ccn, g);
        Ok(())
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Voltage-controlled voltage source: `v(out) = gain·(v_cp − v_cn)`.
#[derive(Debug, Clone)]
pub struct Vcvs {
    name: String,
    pins: [NodeId; 4],
    gain: f64,
    base: usize,
}

impl Vcvs {
    /// `v(out_p, out_n) = gain·v(cp, cn)`.
    pub fn new(
        name: &str,
        out_p: NodeId,
        out_n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> Self {
        Vcvs {
            name: name.to_string(),
            pins: [out_p, out_n, cp, cn],
            gain,
            base: usize::MAX,
        }
    }

    /// The voltage gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Re-binds the gain in place (elaborate-once batches).
    pub fn set_gain(&mut self, gain: f64) {
        self.gain = gain;
    }
}

impl Device for Vcvs {
    fn name(&self) -> &str {
        &self.name
    }

    fn pins(&self) -> &[NodeId] {
        &self.pins
    }

    fn n_internal(&self) -> usize {
        1
    }

    fn set_internal_base(&mut self, base: usize) {
        self.base = base;
    }

    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        let [op, on, cp, cn] = self.pins;
        let j = ctx.unknown(self.base);
        let row_j = Some(self.base);
        ctx.through(op, on, j, &[(row_j, 1.0)]);
        // v(op,on) − gain·v(cp,cn) = 0
        ctx.residual(
            row_j,
            ctx.v(op) - ctx.v(on) - self.gain * (ctx.v(cp) - ctx.v(cn)),
        );
        let (o1, o2) = (ctx.node_unknown(op), ctx.node_unknown(on));
        let (c1, c2) = (ctx.node_unknown(cp), ctx.node_unknown(cn));
        ctx.stamp(row_j, o1, 1.0);
        ctx.stamp(row_j, o2, -1.0);
        ctx.stamp(row_j, c1, -self.gain);
        ctx.stamp(row_j, c2, self.gain);
        Ok(())
    }

    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        let [op, on, cp, cn] = self.pins;
        let row_j = Some(self.base);
        let (o1, o2) = (ctx.node_unknown(op), ctx.node_unknown(on));
        let (c1, c2) = (ctx.node_unknown(cp), ctx.node_unknown(cn));
        ctx.stamp(o1, row_j, Complex64::ONE);
        ctx.stamp(o2, row_j, -Complex64::ONE);
        ctx.stamp(row_j, o1, Complex64::ONE);
        ctx.stamp(row_j, o2, -Complex64::ONE);
        ctx.stamp(row_j, c1, Complex64::from_re(-self.gain));
        ctx.stamp(row_j, c2, Complex64::from_re(self.gain));
        Ok(())
    }

    fn commit(&mut self, _x: &[f64], _layout: &UnknownLayout, _kind: CommitKind) {}

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Current-controlled current source: `i(out) = gain·i(sense)`, where
/// the sense branch is a zero-volt source inserted by this device.
#[derive(Debug, Clone)]
pub struct Cccs {
    name: String,
    pins: [NodeId; 4],
    gain: f64,
    base: usize,
}

impl Cccs {
    /// Current from `out_p` to `out_n` equals `gain` times the current
    /// flowing from `sense_p` to `sense_n` through this device's
    /// internal zero-volt sense branch.
    pub fn new(
        name: &str,
        out_p: NodeId,
        out_n: NodeId,
        sense_p: NodeId,
        sense_n: NodeId,
        gain: f64,
    ) -> Self {
        Cccs {
            name: name.to_string(),
            pins: [out_p, out_n, sense_p, sense_n],
            gain,
            base: usize::MAX,
        }
    }

    /// The current gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Re-binds the gain in place (elaborate-once batches).
    pub fn set_gain(&mut self, gain: f64) {
        self.gain = gain;
    }
}

impl Device for Cccs {
    fn name(&self) -> &str {
        &self.name
    }

    fn pins(&self) -> &[NodeId] {
        &self.pins
    }

    fn n_internal(&self) -> usize {
        1
    }

    fn set_internal_base(&mut self, base: usize) {
        self.base = base;
    }

    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        let [op, on, sp, sn] = self.pins;
        let j = ctx.unknown(self.base);
        let row_j = Some(self.base);
        // Sense branch: zero-volt source carrying j.
        ctx.through(sp, sn, j, &[(row_j, 1.0)]);
        ctx.residual(row_j, ctx.v(sp) - ctx.v(sn));
        let (s1, s2) = (ctx.node_unknown(sp), ctx.node_unknown(sn));
        ctx.stamp(row_j, s1, 1.0);
        ctx.stamp(row_j, s2, -1.0);
        // Output current.
        ctx.through(op, on, self.gain * j, &[(row_j, self.gain)]);
        Ok(())
    }

    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        let [op, on, sp, sn] = self.pins;
        let row_j = Some(self.base);
        let (s1, s2) = (ctx.node_unknown(sp), ctx.node_unknown(sn));
        let (o1, o2) = (ctx.node_unknown(op), ctx.node_unknown(on));
        ctx.stamp(s1, row_j, Complex64::ONE);
        ctx.stamp(s2, row_j, -Complex64::ONE);
        ctx.stamp(row_j, s1, Complex64::ONE);
        ctx.stamp(row_j, s2, -Complex64::ONE);
        ctx.stamp(o1, row_j, Complex64::from_re(self.gain));
        ctx.stamp(o2, row_j, Complex64::from_re(-self.gain));
        Ok(())
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Current-controlled voltage source: `v(out) = r·i(sense)`.
#[derive(Debug, Clone)]
pub struct Ccvs {
    name: String,
    pins: [NodeId; 4],
    r: f64,
    base: usize,
}

impl Ccvs {
    /// `v(out_p, out_n) = r · i(sense_p → sense_n)`.
    pub fn new(
        name: &str,
        out_p: NodeId,
        out_n: NodeId,
        sense_p: NodeId,
        sense_n: NodeId,
        r: f64,
    ) -> Self {
        Ccvs {
            name: name.to_string(),
            pins: [out_p, out_n, sense_p, sense_n],
            r,
            base: usize::MAX,
        }
    }

    /// The transresistance.
    pub fn transresistance(&self) -> f64 {
        self.r
    }

    /// Re-binds the transresistance in place (elaborate-once
    /// batches).
    pub fn set_transresistance(&mut self, r: f64) {
        self.r = r;
    }
}

impl Device for Ccvs {
    fn name(&self) -> &str {
        &self.name
    }

    fn pins(&self) -> &[NodeId] {
        &self.pins
    }

    fn n_internal(&self) -> usize {
        2
    }

    fn set_internal_base(&mut self, base: usize) {
        self.base = base;
    }

    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        let [op, on, sp, sn] = self.pins;
        let js = ctx.unknown(self.base); // sense current
        let jo = ctx.unknown(self.base + 1); // output current
        let row_s = Some(self.base);
        let row_o = Some(self.base + 1);
        // Sense zero-volt branch.
        ctx.through(sp, sn, js, &[(row_s, 1.0)]);
        ctx.residual(row_s, ctx.v(sp) - ctx.v(sn));
        let (s1, s2) = (ctx.node_unknown(sp), ctx.node_unknown(sn));
        ctx.stamp(row_s, s1, 1.0);
        ctx.stamp(row_s, s2, -1.0);
        // Output branch.
        ctx.through(op, on, jo, &[(row_o, 1.0)]);
        ctx.residual(row_o, ctx.v(op) - ctx.v(on) - self.r * js);
        let (o1, o2) = (ctx.node_unknown(op), ctx.node_unknown(on));
        ctx.stamp(row_o, o1, 1.0);
        ctx.stamp(row_o, o2, -1.0);
        ctx.stamp(row_o, row_s, -self.r);
        Ok(())
    }

    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        let [op, on, sp, sn] = self.pins;
        let row_s = Some(self.base);
        let row_o = Some(self.base + 1);
        let (s1, s2) = (ctx.node_unknown(sp), ctx.node_unknown(sn));
        let (o1, o2) = (ctx.node_unknown(op), ctx.node_unknown(on));
        ctx.stamp(s1, row_s, Complex64::ONE);
        ctx.stamp(s2, row_s, -Complex64::ONE);
        ctx.stamp(row_s, s1, Complex64::ONE);
        ctx.stamp(row_s, s2, -Complex64::ONE);
        ctx.stamp(o1, row_o, Complex64::ONE);
        ctx.stamp(o2, row_o, -Complex64::ONE);
        ctx.stamp(row_o, o1, Complex64::ONE);
        ctx.stamp(row_o, o2, -Complex64::ONE);
        ctx.stamp(row_o, row_s, Complex64::from_re(-self.r));
        Ok(())
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Nonlinear product-controlled current source
/// `i(out) = k·v(c1)·v(c2)` — the SPICE-primitive workaround the paper
/// suggests for improving linearized equivalent circuits.
#[derive(Debug, Clone)]
pub struct ProductVccs {
    name: String,
    pins: [NodeId; 6],
    k: f64,
}

impl ProductVccs {
    /// `i(out_p → out_n) = k · v(c1p, c1n) · v(c2p, c2n)`.
    // Six pins + name + coefficient: inherent to a three-port device.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        out_p: NodeId,
        out_n: NodeId,
        c1p: NodeId,
        c1n: NodeId,
        c2p: NodeId,
        c2n: NodeId,
        k: f64,
    ) -> Self {
        ProductVccs {
            name: name.to_string(),
            pins: [out_p, out_n, c1p, c1n, c2p, c2n],
            k,
        }
    }

    /// The product coefficient.
    pub fn coefficient(&self) -> f64 {
        self.k
    }

    /// Re-binds the coefficient in place (elaborate-once batches).
    pub fn set_coefficient(&mut self, k: f64) {
        self.k = k;
    }
}

impl Device for ProductVccs {
    fn name(&self) -> &str {
        &self.name
    }

    fn pins(&self) -> &[NodeId] {
        &self.pins
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        let [op, on, c1p, c1n, c2p, c2n] = self.pins;
        let v1 = ctx.v(c1p) - ctx.v(c1n);
        let v2 = ctx.v(c2p) - ctx.v(c2n);
        let i = self.k * v1 * v2;
        if !i.is_finite() {
            return Err(SpiceError::Device {
                device: self.name.clone(),
                detail: "non-finite output current".into(),
            });
        }
        let g1 = self.k * v2;
        let g2 = self.k * v1;
        let (a1, b1) = (ctx.node_unknown(c1p), ctx.node_unknown(c1n));
        let (a2, b2) = (ctx.node_unknown(c2p), ctx.node_unknown(c2n));
        ctx.through(op, on, i, &[(a1, g1), (b1, -g1), (a2, g2), (b2, -g2)]);
        Ok(())
    }

    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        // Small-signal: i ≈ k·V2₀·Δv1 + k·V1₀·Δv2.
        let [op, on, c1p, c1n, c2p, c2n] = self.pins;
        let v1 = ctx.op_v(c1p) - ctx.op_v(c1n);
        let v2 = ctx.op_v(c2p) - ctx.op_v(c2n);
        let g1 = Complex64::from_re(self.k * v2);
        let g2 = Complex64::from_re(self.k * v1);
        let (ro, rn) = (ctx.node_unknown(op), ctx.node_unknown(on));
        for (ctrl_p, ctrl_n, g) in [(c1p, c1n, g1), (c2p, c2n, g2)] {
            let (cp, cn) = (ctx.node_unknown(ctrl_p), ctx.node_unknown(ctrl_n));
            ctx.stamp(ro, cp, g);
            ctx.stamp(ro, cn, -g);
            ctx.stamp(rn, cp, -g);
            ctx.stamp(rn, cn, g);
        }
        Ok(())
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}
