//! Device library: passives, sources, controlled sources, two-port
//! couplers, mechanical (force–current analogy) elements, and the
//! behavioral HDL device.

pub mod controlled;
pub mod coupling;
pub mod hdl_device;
pub mod mechanical;
pub mod passive;
pub mod sources;

pub use controlled::{Cccs, Ccvs, ProductVccs, Vccs, Vcvs};
pub use coupling::{Gyrator, IdealTransformer};
pub use hdl_device::HdlDevice;
pub use mechanical::{Damper, Mass, Spring};
pub use passive::{Capacitor, Inductor, Resistor};
pub use sources::{AcSpec, CurrentSource, VoltageSource};
