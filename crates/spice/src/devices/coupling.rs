//! Two-port coupling elements: ideal transformer and gyrator.
//!
//! Linearized electromechanical transducers reduce to exactly these
//! elements (Tilmans' equivalent circuits, the paper's reference [1]):
//! under the force–current analogy an electrostatic transducer
//! linearizes to a *transformer*-coupled two-port with transduction
//! factor Γ, an electrodynamic one to a *gyrator*.

use crate::circuit::{NodeId, UnknownLayout};
use crate::device::{AcLoadCtx, CommitKind, Device, LoadCtx};
use crate::error::{Result, SpiceError};
use mems_numerics::Complex64;

/// Ideal transformer: `v1 = n·v2`, `i2 = −n·i1` (power conserving).
#[derive(Debug, Clone)]
pub struct IdealTransformer {
    name: String,
    pins: [NodeId; 4],
    ratio: f64,
    base: usize,
}

impl IdealTransformer {
    /// Primary `(p1, n1)`, secondary `(p2, n2)`, turns ratio
    /// `n = v1/v2`.
    pub fn new(name: &str, p1: NodeId, n1: NodeId, p2: NodeId, n2: NodeId, ratio: f64) -> Self {
        IdealTransformer {
            name: name.to_string(),
            pins: [p1, n1, p2, n2],
            ratio,
            base: usize::MAX,
        }
    }

    /// The turns ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Re-binds the turns ratio in place (elaborate-once batches).
    pub fn set_ratio(&mut self, ratio: f64) {
        self.ratio = ratio;
    }
}

impl Device for IdealTransformer {
    fn name(&self) -> &str {
        &self.name
    }

    fn pins(&self) -> &[NodeId] {
        &self.pins
    }

    fn n_internal(&self) -> usize {
        1
    }

    fn set_internal_base(&mut self, base: usize) {
        self.base = base;
    }

    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        if self.base == usize::MAX {
            return Err(SpiceError::Device {
                device: self.name.clone(),
                detail: "layout() was not run before load".into(),
            });
        }
        let [p1, n1, p2, n2] = self.pins;
        let j = ctx.unknown(self.base); // primary current
        let row_j = Some(self.base);
        // Primary carries j; secondary carries −n·j (out of p2).
        ctx.through(p1, n1, j, &[(row_j, 1.0)]);
        ctx.through(p2, n2, -self.ratio * j, &[(row_j, -self.ratio)]);
        // Constraint: v1 − n·v2 = 0.
        ctx.residual(
            row_j,
            ctx.v(p1) - ctx.v(n1) - self.ratio * (ctx.v(p2) - ctx.v(n2)),
        );
        let (a1, b1) = (ctx.node_unknown(p1), ctx.node_unknown(n1));
        let (a2, b2) = (ctx.node_unknown(p2), ctx.node_unknown(n2));
        ctx.stamp(row_j, a1, 1.0);
        ctx.stamp(row_j, b1, -1.0);
        ctx.stamp(row_j, a2, -self.ratio);
        ctx.stamp(row_j, b2, self.ratio);
        Ok(())
    }

    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        let [p1, n1, p2, n2] = self.pins;
        let row_j = Some(self.base);
        let (a1, b1) = (ctx.node_unknown(p1), ctx.node_unknown(n1));
        let (a2, b2) = (ctx.node_unknown(p2), ctx.node_unknown(n2));
        let n = Complex64::from_re(self.ratio);
        ctx.stamp(a1, row_j, Complex64::ONE);
        ctx.stamp(b1, row_j, -Complex64::ONE);
        ctx.stamp(a2, row_j, -n);
        ctx.stamp(b2, row_j, n);
        ctx.stamp(row_j, a1, Complex64::ONE);
        ctx.stamp(row_j, b1, -Complex64::ONE);
        ctx.stamp(row_j, a2, -n);
        ctx.stamp(row_j, b2, n);
        Ok(())
    }

    fn commit(&mut self, _x: &[f64], _layout: &UnknownLayout, _kind: CommitKind) {}

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Ideal gyrator: `i1 = g·v2`, `i2 = −g·v1` (power conserving).
#[derive(Debug, Clone)]
pub struct Gyrator {
    name: String,
    pins: [NodeId; 4],
    g: f64,
}

impl Gyrator {
    /// Port 1 `(p1, n1)`, port 2 `(p2, n2)`, gyration conductance `g`.
    pub fn new(name: &str, p1: NodeId, n1: NodeId, p2: NodeId, n2: NodeId, g: f64) -> Self {
        Gyrator {
            name: name.to_string(),
            pins: [p1, n1, p2, n2],
            g,
        }
    }

    /// The gyration conductance.
    pub fn conductance(&self) -> f64 {
        self.g
    }

    /// Re-binds the gyration conductance in place (elaborate-once
    /// batches).
    pub fn set_conductance(&mut self, g: f64) {
        self.g = g;
    }
}

impl Device for Gyrator {
    fn name(&self) -> &str {
        &self.name
    }

    fn pins(&self) -> &[NodeId] {
        &self.pins
    }

    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        let [p1, n1, p2, n2] = self.pins;
        let v1 = ctx.v(p1) - ctx.v(n1);
        let v2 = ctx.v(p2) - ctx.v(n2);
        let (a1, b1) = (ctx.node_unknown(p1), ctx.node_unknown(n1));
        let (a2, b2) = (ctx.node_unknown(p2), ctx.node_unknown(n2));
        ctx.through(p1, n1, self.g * v2, &[(a2, self.g), (b2, -self.g)]);
        ctx.through(p2, n2, -self.g * v1, &[(a1, -self.g), (b1, self.g)]);
        Ok(())
    }

    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        let [p1, n1, p2, n2] = self.pins;
        let g = Complex64::from_re(self.g);
        let (a1, b1) = (ctx.node_unknown(p1), ctx.node_unknown(n1));
        let (a2, b2) = (ctx.node_unknown(p2), ctx.node_unknown(n2));
        // i1 = g·v2
        ctx.stamp(a1, a2, g);
        ctx.stamp(a1, b2, -g);
        ctx.stamp(b1, a2, -g);
        ctx.stamp(b1, b2, g);
        // i2 = −g·v1
        ctx.stamp(a2, a1, -g);
        ctx.stamp(a2, b1, g);
        ctx.stamp(b2, a1, g);
        ctx.stamp(b2, b1, -g);
        Ok(())
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}
