//! Linear passives: resistor, capacitor, inductor.

use crate::circuit::{NodeId, UnknownLayout};
use crate::device::{AcLoadCtx, CommitKind, Device, LoadCtx, LoadKind};
use crate::error::{Result, SpiceError};
use mems_numerics::ode::DiffFormula;
use mems_numerics::Complex64;

/// Linear resistor `i = (v_a − v_b)/R`.
#[derive(Debug, Clone)]
pub struct Resistor {
    name: String,
    pins: [NodeId; 2],
    resistance: f64,
}

impl Resistor {
    /// Creates a resistor; `resistance` must be nonzero and finite.
    ///
    /// # Panics
    ///
    /// Panics on zero/non-finite resistance (programming error).
    pub fn new(name: &str, a: NodeId, b: NodeId, resistance: f64) -> Self {
        assert!(
            resistance != 0.0 && resistance.is_finite(),
            "resistor `{name}` needs a nonzero finite resistance"
        );
        Resistor {
            name: name.to_string(),
            pins: [a, b],
            resistance,
        }
    }

    /// The resistance [Ω].
    pub fn resistance(&self) -> f64 {
        self.resistance
    }

    /// Re-binds the resistance in place (elaborate-once batches).
    ///
    /// # Panics
    ///
    /// Panics on zero/non-finite resistance, like [`Resistor::new`].
    pub fn set_resistance(&mut self, resistance: f64) {
        *self = Resistor::new(&self.name, self.pins[0], self.pins[1], resistance);
    }
}

impl Device for Resistor {
    fn name(&self) -> &str {
        &self.name
    }

    fn pins(&self) -> &[NodeId] {
        &self.pins
    }

    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        ctx.conductance(self.pins[0], self.pins[1], 1.0 / self.resistance);
        Ok(())
    }

    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        ctx.admittance(
            self.pins[0],
            self.pins[1],
            Complex64::from_re(1.0 / self.resistance),
        );
        Ok(())
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Linear capacitor `i = C·d(v_a − v_b)/dt`.
#[derive(Debug, Clone)]
pub struct Capacitor {
    name: String,
    pins: [NodeId; 2],
    capacitance: f64,
    /// Committed voltage and its derivative (for TR history).
    v_prev: f64,
    dvdt_prev: f64,
    v_prev2: f64,
    h_prev: f64,
    primed2: bool,
    /// Formula of the in-flight step (committed on accept).
    last_formula: Option<DiffFormula>,
}

impl Capacitor {
    /// Creates a capacitor; `capacitance` must be positive and finite.
    ///
    /// # Panics
    ///
    /// Panics on non-positive/non-finite capacitance.
    pub fn new(name: &str, a: NodeId, b: NodeId, capacitance: f64) -> Self {
        assert!(
            capacitance > 0.0 && capacitance.is_finite(),
            "capacitor `{name}` needs a positive capacitance"
        );
        Capacitor {
            name: name.to_string(),
            pins: [a, b],
            capacitance,
            v_prev: 0.0,
            dvdt_prev: 0.0,
            v_prev2: 0.0,
            h_prev: 0.0,
            primed2: false,
            last_formula: None,
        }
    }

    /// The capacitance [F].
    pub fn capacitance(&self) -> f64 {
        self.capacitance
    }

    /// Re-binds the capacitance in place, resetting the integration
    /// history to the freshly built state (elaborate-once batches).
    ///
    /// # Panics
    ///
    /// Panics on non-positive/non-finite capacitance, like
    /// [`Capacitor::new`].
    pub fn set_capacitance(&mut self, capacitance: f64) {
        *self = Capacitor::new(&self.name, self.pins[0], self.pins[1], capacitance);
    }
}

impl Device for Capacitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn pins(&self) -> &[NodeId] {
        &self.pins
    }

    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        match ctx.kind {
            LoadKind::Dc { .. } => {
                // Open at DC; nothing to stamp.
                self.last_formula = None;
                Ok(())
            }
            LoadKind::Transient { h, method, .. } => {
                let f = DiffFormula::new(
                    method,
                    h,
                    self.v_prev,
                    self.dvdt_prev,
                    self.v_prev2,
                    self.h_prev,
                    self.primed2,
                );
                self.last_formula = Some(f);
                let (a, b) = (self.pins[0], self.pins[1]);
                let v = ctx.v(a) - ctx.v(b);
                let i = self.capacitance * f.ddt(v);
                let g = self.capacitance * f.c0;
                let ca = ctx.node_unknown(a);
                let cb = ctx.node_unknown(b);
                ctx.through(a, b, i, &[(ca, g), (cb, -g)]);
                Ok(())
            }
        }
    }

    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        ctx.admittance(
            self.pins[0],
            self.pins[1],
            Complex64::new(0.0, ctx.omega * self.capacitance),
        );
        Ok(())
    }

    fn commit(&mut self, x: &[f64], layout: &UnknownLayout, kind: CommitKind) {
        let v = layout.node_value(x, self.pins[0]) - layout.node_value(x, self.pins[1]);
        if kind.is_dc {
            self.v_prev = v;
            self.dvdt_prev = 0.0;
            self.v_prev2 = v;
            self.h_prev = 0.0;
            self.primed2 = false;
        } else {
            self.v_prev2 = self.v_prev;
            self.primed2 = true;
            let dvdt = match self.last_formula {
                Some(f) => f.ddt(v),
                None => 0.0,
            };
            self.v_prev = v;
            self.dvdt_prev = dvdt;
            self.h_prev = kind.h;
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Linear inductor `v_a − v_b = L·di/dt` with a branch-current
/// unknown (MNA group 2).
#[derive(Debug, Clone)]
pub struct Inductor {
    name: String,
    pins: [NodeId; 2],
    inductance: f64,
    base: usize,
    i_prev: f64,
    didt_prev: f64,
    i_prev2: f64,
    h_prev: f64,
    primed2: bool,
    last_formula: Option<DiffFormula>,
}

impl Inductor {
    /// Creates an inductor; `inductance` must be positive and finite.
    ///
    /// # Panics
    ///
    /// Panics on non-positive/non-finite inductance.
    pub fn new(name: &str, a: NodeId, b: NodeId, inductance: f64) -> Self {
        assert!(
            inductance > 0.0 && inductance.is_finite(),
            "inductor `{name}` needs a positive inductance"
        );
        Inductor {
            name: name.to_string(),
            pins: [a, b],
            inductance,
            base: usize::MAX,
            i_prev: 0.0,
            didt_prev: 0.0,
            i_prev2: 0.0,
            h_prev: 0.0,
            primed2: false,
            last_formula: None,
        }
    }

    /// The inductance [H].
    pub fn inductance(&self) -> f64 {
        self.inductance
    }

    /// Re-binds the inductance in place, resetting the integration
    /// history to the freshly built state (elaborate-once batches).
    ///
    /// # Panics
    ///
    /// Panics on non-positive/non-finite inductance, like
    /// [`Inductor::new`].
    pub fn set_inductance(&mut self, inductance: f64) {
        *self = Inductor::new(&self.name, self.pins[0], self.pins[1], inductance);
    }

    /// Global unknown index of the branch current.
    pub fn branch_unknown(&self) -> usize {
        self.base
    }
}

impl Device for Inductor {
    fn name(&self) -> &str {
        &self.name
    }

    fn pins(&self) -> &[NodeId] {
        &self.pins
    }

    fn n_internal(&self) -> usize {
        1
    }

    fn set_internal_base(&mut self, base: usize) {
        self.base = base;
    }

    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()> {
        if self.base == usize::MAX {
            return Err(SpiceError::Device {
                device: self.name.clone(),
                detail: "layout() was not run before load".into(),
            });
        }
        let (a, b) = (self.pins[0], self.pins[1]);
        let j = ctx.unknown(self.base);
        let row_j = Some(self.base);
        // KCL: branch current enters at a, leaves at b.
        ctx.through(a, b, j, &[(row_j, 1.0)]);
        let va = ctx.v(a);
        let vb = ctx.v(b);
        let ca = ctx.node_unknown(a);
        let cb = ctx.node_unknown(b);
        match ctx.kind {
            LoadKind::Dc { .. } => {
                // Short at DC: v_a − v_b = 0, regularized with a
                // vanishing series resistance so parallel inductors
                // (e.g. two springs on one mechanical node) do not
                // make the DC system exactly singular. The resistance
                // is proportional to L so parallel inductors divide DC
                // current ∝ 1/L — the physical split (spring forces
                // ∝ stiffness).
                let r_reg = 1e-6 * self.inductance;
                self.last_formula = None;
                ctx.residual(row_j, va - vb - r_reg * j);
                ctx.stamp(row_j, ca, 1.0);
                ctx.stamp(row_j, cb, -1.0);
                ctx.stamp(row_j, row_j, -r_reg);
            }
            LoadKind::Transient { h, method, .. } => {
                let f = DiffFormula::new(
                    method,
                    h,
                    self.i_prev,
                    self.didt_prev,
                    self.i_prev2,
                    self.h_prev,
                    self.primed2,
                );
                self.last_formula = Some(f);
                // v_a − v_b − L·(c0·j + hist) = 0
                ctx.residual(row_j, va - vb - self.inductance * f.ddt(j));
                ctx.stamp(row_j, ca, 1.0);
                ctx.stamp(row_j, cb, -1.0);
                ctx.stamp(row_j, row_j, -self.inductance * f.c0);
            }
        }
        Ok(())
    }

    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()> {
        let (a, b) = (self.pins[0], self.pins[1]);
        let row_j = Some(self.base);
        let ca = ctx.node_unknown(a);
        let cb = ctx.node_unknown(b);
        // KCL.
        ctx.stamp(ca, row_j, Complex64::ONE);
        ctx.stamp(cb, row_j, -Complex64::ONE);
        // Branch: V_a − V_b − jωL·J = 0.
        ctx.stamp(row_j, ca, Complex64::ONE);
        ctx.stamp(row_j, cb, -Complex64::ONE);
        ctx.stamp(
            row_j,
            row_j,
            Complex64::new(0.0, -ctx.omega * self.inductance),
        );
        Ok(())
    }

    fn commit(&mut self, x: &[f64], _layout: &UnknownLayout, kind: CommitKind) {
        let j = x[self.base];
        if kind.is_dc {
            self.i_prev = j;
            self.didt_prev = 0.0;
            self.i_prev2 = j;
            self.h_prev = 0.0;
            self.primed2 = false;
        } else {
            self.i_prev2 = self.i_prev;
            self.primed2 = true;
            let didt = match self.last_formula {
                Some(f) => f.ddt(j),
                None => 0.0,
            };
            self.i_prev = j;
            self.didt_prev = didt;
            self.h_prev = kind.h;
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}
