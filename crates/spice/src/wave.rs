//! Source waveforms: DC, pulse, sine, piecewise linear, exponential.
//!
//! The Fig. 5 experiment drives the transducer with "a voltage source
//! with a finite rise and fall time" — [`Waveform::Pulse`] — and the
//! transient engine collects [`Waveform::breakpoints`] so steps land
//! exactly on the corners.

/// A time-dependent source value.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE-style pulse train.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first rise.
        delay: f64,
        /// Rise time (> 0 for the paper's "finite rise time").
        rise: f64,
        /// Fall time.
        fall: f64,
        /// Width of the flat top.
        width: f64,
        /// Period (0 = single pulse).
        period: f64,
    },
    /// Sinusoid `offset + ampl·sin(2πf(t−delay))` for `t ≥ delay`.
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency [Hz].
        freq: f64,
        /// Start delay.
        delay: f64,
        /// Exponential damping factor [1/s].
        theta: f64,
    },
    /// Piecewise-linear `(t, v)` corners (t strictly increasing).
    Pwl(Vec<(f64, f64)>),
    /// Single exponential rise/fall.
    Exp {
        /// Initial value.
        v1: f64,
        /// Target value.
        v2: f64,
        /// Rise start delay.
        td1: f64,
        /// Rise time constant.
        tau1: f64,
        /// Fall start delay.
        td2: f64,
        /// Fall time constant.
        tau2: f64,
    },
}

impl Waveform {
    /// Source value at time `t` (transient analyses).
    pub fn at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let mut tp = t - delay;
                if *period > 0.0 {
                    tp %= period;
                }
                if tp < *rise {
                    if *rise == 0.0 {
                        *v2
                    } else {
                        v1 + (v2 - v1) * tp / rise
                    }
                } else if tp < rise + width {
                    *v2
                } else if tp < rise + width + fall {
                    if *fall == 0.0 {
                        *v1
                    } else {
                        v2 + (v1 - v2) * (tp - rise - width) / fall
                    }
                } else {
                    *v1
                }
            }
            Waveform::Sin {
                offset,
                ampl,
                freq,
                delay,
                theta,
            } => {
                if t < *delay {
                    *offset
                } else {
                    let dt = t - delay;
                    let damp = if *theta != 0.0 {
                        (-dt * theta).exp()
                    } else {
                        1.0
                    };
                    offset + ampl * damp * (2.0 * std::f64::consts::PI * freq * dt).sin()
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().expect("nonempty").1
            }
            Waveform::Exp {
                v1,
                v2,
                td1,
                tau1,
                td2,
                tau2,
            } => {
                let mut v = *v1;
                if t >= *td1 {
                    v += (v2 - v1) * (1.0 - (-(t - td1) / tau1).exp());
                }
                if t >= *td2 {
                    v += (v1 - v2) * (1.0 - (-(t - td2) / tau2).exp());
                }
                v
            }
        }
    }

    /// The DC (t = 0⁻) value used by the operating-point analysis.
    pub fn dc_value(&self) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse { v1, .. } => *v1,
            Waveform::Sin { offset, .. } => *offset,
            Waveform::Pwl(points) => points.first().map_or(0.0, |p| p.1),
            Waveform::Exp { v1, .. } => *v1,
        }
    }

    /// Time points where the waveform has slope discontinuities within
    /// `[0, t_end]`; the transient engine snaps steps onto these.
    pub fn breakpoints(&self, t_end: f64) -> Vec<f64> {
        let mut bps = Vec::new();
        match self {
            Waveform::Dc(_) | Waveform::Sin { .. } => {}
            Waveform::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let corners = [
                    *delay,
                    delay + rise,
                    delay + rise + width,
                    delay + rise + width + fall,
                ];
                if *period > 0.0 {
                    let mut base = 0.0;
                    while delay + base <= t_end {
                        for c in corners {
                            let t = c + base;
                            if t <= t_end {
                                bps.push(t);
                            }
                        }
                        base += period;
                    }
                } else {
                    bps.extend(corners.iter().copied().filter(|t| *t <= t_end));
                }
            }
            Waveform::Pwl(points) => {
                bps.extend(points.iter().map(|p| p.0).filter(|t| *t <= t_end));
            }
            Waveform::Exp { td1, td2, .. } => {
                for t in [*td1, *td2] {
                    if t <= t_end {
                        bps.push(t);
                    }
                }
            }
        }
        bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_pulse(level: f64) -> Waveform {
        // A 10 ms rise, 40 ms top, 10 ms fall pulse like Fig. 5's.
        Waveform::Pulse {
            v1: 0.0,
            v2: level,
            delay: 5e-3,
            rise: 10e-3,
            fall: 10e-3,
            width: 40e-3,
            period: 0.0,
        }
    }

    #[test]
    fn pulse_shape() {
        let p = fig5_pulse(10.0);
        assert_eq!(p.at(0.0), 0.0);
        assert_eq!(p.at(5e-3), 0.0);
        assert!((p.at(10e-3) - 5.0).abs() < 1e-12); // mid-rise
        assert_eq!(p.at(20e-3), 10.0);
        assert_eq!(p.at(50e-3), 10.0);
        assert!((p.at(60e-3) - 5.0).abs() < 1e-12); // mid-fall
        assert_eq!(p.at(80e-3), 0.0);
        assert_eq!(p.dc_value(), 0.0);
    }

    #[test]
    fn pulse_periodic_repeats() {
        let p = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.3,
            period: 1.0,
        };
        assert!((p.at(0.05) - p.at(1.05)).abs() < 1e-12);
        assert!((p.at(0.2) - 1.0).abs() < 1e-12);
        assert!((p.at(1.2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rise_pulse_steps() {
        let p = Waveform::Pulse {
            v1: 1.0,
            v2: 2.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 1.0,
            period: 0.0,
        };
        assert_eq!(p.at(0.0), 2.0);
        assert_eq!(p.at(0.5), 2.0);
        assert_eq!(p.at(1.5), 1.0);
    }

    #[test]
    fn sin_with_damping() {
        let s = Waveform::Sin {
            offset: 1.0,
            ampl: 2.0,
            freq: 50.0,
            delay: 0.0,
            theta: 10.0,
        };
        assert_eq!(s.at(0.0), 1.0);
        let quarter = 1.0 / 200.0;
        let expect = 1.0 + 2.0 * (-quarter * 10.0f64).exp();
        assert!((s.at(quarter) - expect).abs() < 1e-12);
        assert_eq!(s.dc_value(), 1.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 10.0), (2.0, -10.0)]);
        assert_eq!(w.at(-1.0), 0.0);
        assert_eq!(w.at(0.5), 5.0);
        assert_eq!(w.at(1.5), 0.0);
        assert_eq!(w.at(3.0), -10.0);
    }

    #[test]
    fn exp_waveform() {
        let e = Waveform::Exp {
            v1: 0.0,
            v2: 1.0,
            td1: 0.0,
            tau1: 1.0,
            td2: 5.0,
            tau2: 1.0,
        };
        assert!((e.at(1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(e.at(10.0) < 0.1);
    }

    #[test]
    fn breakpoints_cover_pulse_corners() {
        let p = fig5_pulse(10.0);
        let bps = p.breakpoints(0.18);
        assert_eq!(bps, vec![5e-3, 15e-3, 55e-3, 65e-3]);
        // Truncated horizon drops later corners.
        let bps = p.breakpoints(20e-3);
        assert_eq!(bps, vec![5e-3, 15e-3]);
    }

    #[test]
    fn breakpoints_of_periodic_pulse() {
        let p = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.2,
            period: 1.0,
        };
        let bps = p.breakpoints(2.0);
        assert!(bps.contains(&0.1));
        assert!(bps.contains(&1.1));
        assert!(bps.iter().all(|t| *t <= 2.0));
    }
}
