//! The backend-agnostic system matrix: every analysis stamps its MNA
//! Jacobian (or complex AC admittance matrix) through the
//! [`SystemMatrix`] trait and solves through the same interface, so
//! the choice between a dense LU and the sparse
//! Gilbert–Peierls factorization is a per-circuit policy decision, not
//! a per-analysis code path.
//!
//! Two implementations:
//!
//! - [`DenseSystem`]: a [`DenseMatrix`] refactored from scratch each
//!   [`factor`](SystemMatrix::factor) — the right default for the
//!   paper-scale circuits of a few dozen unknowns.
//! - [`SparseSystem`]: a growable sparsity pattern over
//!   [`SparseLu`], with split symbolic/numeric factorization. The
//!   pattern is discovered from the stamps themselves (a stamp at a
//!   new coordinate grows the pattern and invalidates the symbolic
//!   analysis), and once the pattern is stable every subsequent
//!   [`factor`](SystemMatrix::factor) is a numeric-only
//!   [`SparseLu::refactor`] — the hot path for Newton iterations,
//!   transient steps, AC frequency points, and `.STEP`/`.MC` batch
//!   points that share one topology.
//!
//! Backend selection is [`MatrixBackend`]: `Auto` switches to sparse
//! at [`AUTO_SPARSE_THRESHOLD`] unknowns, and
//! [`SimOptions::matrix`](crate::solver::SimOptions) (deck option
//! `sparse=0/1`) overrides it either way.
//!
//! The sparse backend additionally applies a fill-reducing
//! [`FillOrdering`] at symbolic time: when the (re)discovered pattern
//! stabilizes, a column order is computed once — AMD
//! ([`mems_numerics::ordering::amd_order`]) for moderate systems,
//! multilevel nested dissection ([`mems_numerics::ordering::nd_order`])
//! at scale — through the machine-wide ordering cache
//! ([`mems_numerics::ordering::order_cached`]), and every
//! factorization — first and replayed — eliminates in that order.
//! Deck option `order=nd|amd|natural|auto` (default `auto`) selects
//! the policy.
//!
//! Above the scalar sparse LU sits a second policy axis,
//! [`FactorKind`]: at [`SUPERNODAL_AUTO_THRESHOLD`] unknowns (deck
//! option `factor=auto|scalar|super`) the sparse backend switches its
//! numeric engine to the supernodal, level-scheduled parallel
//! factorization ([`mems_numerics::supernodal::SupernodalLu`]). The
//! supernodal engine uses static (matched-diagonal) pivots guarded by
//! the same drift threshold as the scalar refactor; any rejected
//! pivot makes the system fall back — stickily, until the pattern
//! changes — to the scalar re-pivoting path, so enabling it can only
//! cost speed, never correctness. [`SolverStats`] snapshots what the
//! backend actually did (engine, counts, fill, timings) for
//! `mems run --json` and the serve job metadata.

use mems_numerics::dense::DenseMatrix;
use mems_numerics::lu::LuFactors;
use mems_numerics::ordering::order_cached;
use mems_numerics::scalar::Scalar;
use mems_numerics::sparse_lu::{CscView, SparseLu};
use mems_numerics::supernodal::SupernodalLu;
use mems_numerics::{NumericsError, Result};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

pub use mems_numerics::ordering::FillOrdering;

/// Unknown count at which `Auto` switches from dense to sparse.
///
/// Dense LU is `O(n³)` with a small constant; the sparse path wins
/// once the Jacobian is big *and* mostly structural zeros, which for
/// MNA matrices (a handful of entries per device) is around here.
pub const AUTO_SPARSE_THRESHOLD: usize = 50;

/// Which linear-algebra backend assembles and solves the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixBackend {
    /// Pick by unknown count ([`AUTO_SPARSE_THRESHOLD`]).
    #[default]
    Auto,
    /// Force the dense LU path.
    Dense,
    /// Force the sparse LU path.
    Sparse,
}

impl MatrixBackend {
    /// Resolves `Auto` against an unknown count.
    pub fn resolve(self, n: usize) -> MatrixBackend {
        match self {
            MatrixBackend::Auto => {
                if n >= AUTO_SPARSE_THRESHOLD {
                    MatrixBackend::Sparse
                } else {
                    MatrixBackend::Dense
                }
            }
            other => other,
        }
    }
}

/// Unknown count at which [`FactorKind::Auto`] engages the supernodal
/// parallel factorization on the sparse path.
///
/// Below this the scalar Gilbert–Peierls refactor is already a few
/// tens of microseconds and the supernodal machinery (panel assembly,
/// level scheduling) would only add overhead; above it the DFS
/// symbolic analysis and scattered CSC updates start to dominate.
pub const SUPERNODAL_AUTO_THRESHOLD: usize = 2000;

/// Which numeric engine the sparse backend factors with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FactorKind {
    /// Pick by unknown count ([`SUPERNODAL_AUTO_THRESHOLD`]).
    #[default]
    Auto,
    /// Force the scalar column-by-column LU (always available).
    Scalar,
    /// Force the supernodal, level-scheduled parallel LU.
    Supernodal,
}

impl FactorKind {
    /// Resolves `Auto` against an unknown count.
    pub fn resolve(self, n: usize) -> FactorKind {
        match self {
            FactorKind::Auto => {
                if n >= SUPERNODAL_AUTO_THRESHOLD {
                    FactorKind::Supernodal
                } else {
                    FactorKind::Scalar
                }
            }
            other => other,
        }
    }
}

/// What the solver actually did: a copyable snapshot for reports
/// (`mems run --json`, serve job metadata) and regressions tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverStats {
    /// `"dense"` or `"sparse"`.
    pub backend: &'static str,
    /// `"dense"`, `"scalar"`, `"supernodal"`, or `"none"` before the
    /// first successful factor.
    pub factor_path: &'static str,
    /// Ordering *policy* name: `"amd"`, `"nd"`, `"natural"`, or
    /// `"auto"` (sparse only).
    pub ordering: &'static str,
    /// Where the active engine's fill order actually came from:
    /// `"amd"` / `"nd"` / `"natural"` when computed, `"cached"` on a
    /// machine-wide ordering-cache hit, `"none"` before the first
    /// factor.
    pub order_source: &'static str,
    /// Microseconds the last symbolic analysis spent computing the
    /// fill order — 0 on a cache hit, which is how a warm ordering
    /// cache is proven end to end.
    pub order_us: u64,
    /// Matrix order.
    pub n: usize,
    /// Structural nonzeros of the assembled pattern.
    pub pattern_nnz: usize,
    /// Stored factor entries (L + U) of the last factorization.
    pub factor_nnz: usize,
    /// Supernode count (supernodal path only).
    pub supernodes: usize,
    /// Level-schedule depth (supernodal path only).
    pub levels: usize,
    /// Worker threads the last factorization used.
    pub threads: usize,
    /// Fresh (symbolic + numeric) factorizations performed.
    pub factors: u64,
    /// Numeric-only refactorizations performed.
    pub refactors: u64,
    /// Times a fast path gave up (supernodal → scalar, or scalar
    /// refactor → fresh re-pivoting factor).
    pub fallbacks: u64,
    /// Wall time of the last fresh factorization, microseconds.
    pub last_factor_us: u64,
    /// Wall time of the last refactorization, microseconds.
    pub last_refactor_us: u64,
}

impl Default for SolverStats {
    fn default() -> Self {
        SolverStats {
            backend: "none",
            factor_path: "none",
            ordering: "natural",
            order_source: "none",
            order_us: 0,
            n: 0,
            pattern_nnz: 0,
            factor_nnz: 0,
            supernodes: 0,
            levels: 0,
            threads: 0,
            factors: 0,
            refactors: 0,
            fallbacks: 0,
            last_factor_us: 0,
            last_refactor_us: 0,
        }
    }
}

impl SolverStats {
    /// Factor fill ratio `factor_nnz / pattern_nnz` (0 when unknown).
    pub fn fill_ratio(&self) -> f64 {
        if self.pattern_nnz == 0 {
            0.0
        } else {
            self.factor_nnz as f64 / self.pattern_nnz as f64
        }
    }
}

/// A square system matrix that devices stamp into and analyses solve
/// through.
///
/// The lifecycle per solve is `clear → add… → factor → solve…`;
/// implementations may cache whatever structure survives between
/// cycles (the sparse backend keeps its sparsity pattern and symbolic
/// factorization).
pub trait SystemMatrix<S: Scalar>: Send {
    /// Matrix order.
    fn n(&self) -> usize;

    /// Zeroes all values, keeping cached structure.
    fn clear(&mut self);

    /// Accumulates `v` at `(row, col)`.
    fn add(&mut self, row: usize, col: usize, v: S);

    /// `true` when every stored value is finite.
    fn all_finite(&self) -> bool;

    /// Factorizes the current values.
    ///
    /// # Errors
    ///
    /// [`NumericsError::Singular`] for singular systems.
    fn factor(&mut self) -> Result<()>;

    /// Solves `A·x = b` against the last [`factor`](Self::factor).
    ///
    /// # Errors
    ///
    /// Dimension mismatches, or calling before a successful factor.
    fn solve(&self, b: &[S]) -> Result<Vec<S>>;

    /// Which concrete backend this is, for reports and tests.
    fn backend(&self) -> MatrixBackend;

    /// Value at `(row, col)` — diagnostic/test accessor, zero when
    /// unstamped.
    fn get(&self, row: usize, col: usize) -> S;

    /// Snapshot of solver counters and last timings; backends that
    /// don't track them return the empty default.
    fn solver_stats(&self) -> SolverStats {
        SolverStats::default()
    }
}

/// Builds a system matrix of order `n` for the (resolved) backend,
/// with the default [`FillOrdering`] on the sparse path.
pub fn new_system<S: Scalar + Send + Sync + 'static>(
    n: usize,
    backend: MatrixBackend,
) -> Box<dyn SystemMatrix<S>> {
    new_system_with(n, backend, FillOrdering::default())
}

/// [`new_system`] with an explicit sparse fill-reducing ordering
/// (ignored by the dense backend).
pub fn new_system_with<S: Scalar + Send + Sync + 'static>(
    n: usize,
    backend: MatrixBackend,
    ordering: FillOrdering,
) -> Box<dyn SystemMatrix<S>> {
    new_system_solver(n, backend, ordering, FactorKind::default(), 0)
}

/// [`new_system`] with the full sparse solver policy: fill ordering,
/// numeric engine ([`FactorKind`]), and a worker-thread request for
/// the supernodal path (0 = auto, see `mems_numerics::par`). The
/// dense backend ignores all three.
pub fn new_system_solver<S: Scalar + Send + Sync + 'static>(
    n: usize,
    backend: MatrixBackend,
    ordering: FillOrdering,
    factor: FactorKind,
    factor_threads: usize,
) -> Box<dyn SystemMatrix<S>> {
    match backend.resolve(n) {
        MatrixBackend::Sparse => Box::new(SparseSystem::with_solver(
            n,
            ordering,
            factor,
            factor_threads,
        )),
        _ => Box::new(DenseSystem::new(n)),
    }
}

/// Dense backend: [`DenseMatrix`] + full pivoted LU per factor.
pub struct DenseSystem<S: Scalar> {
    m: DenseMatrix<S>,
    lu: Option<LuFactors<S>>,
    factors: u64,
    last_factor_us: u64,
}

impl<S: Scalar> DenseSystem<S> {
    /// Zero-filled dense system of order `n`.
    pub fn new(n: usize) -> Self {
        DenseSystem {
            m: DenseMatrix::zeros(n, n),
            lu: None,
            factors: 0,
            last_factor_us: 0,
        }
    }
}

impl<S: Scalar + Send + 'static> SystemMatrix<S> for DenseSystem<S> {
    fn n(&self) -> usize {
        self.m.rows()
    }

    fn clear(&mut self) {
        self.m.fill_zero();
        self.lu = None;
    }

    fn add(&mut self, row: usize, col: usize, v: S) {
        self.m.add_at(row, col, v);
    }

    fn all_finite(&self) -> bool {
        self.m.all_finite()
    }

    fn factor(&mut self) -> Result<()> {
        let t0 = Instant::now();
        self.lu = Some(LuFactors::factor(&self.m)?);
        self.factors += 1;
        self.last_factor_us = t0.elapsed().as_micros() as u64;
        Ok(())
    }

    fn solve(&self, b: &[S]) -> Result<Vec<S>> {
        match &self.lu {
            Some(lu) => lu.solve(b),
            None => Err(NumericsError::InvalidInput(
                "solve called before factor".into(),
            )),
        }
    }

    fn backend(&self) -> MatrixBackend {
        MatrixBackend::Dense
    }

    fn get(&self, row: usize, col: usize) -> S {
        self.m[(row, col)]
    }

    fn solver_stats(&self) -> SolverStats {
        let n = self.m.rows();
        SolverStats {
            backend: "dense",
            factor_path: if self.lu.is_some() { "dense" } else { "none" },
            n,
            pattern_nnz: n * n,
            factor_nnz: if self.lu.is_some() { n * n } else { 0 },
            threads: 1,
            factors: self.factors,
            last_factor_us: self.last_factor_us,
            ..SolverStats::default()
        }
    }
}

/// Sparse backend: growable stamp pattern + split symbolic/numeric LU.
pub struct SparseSystem<S: Scalar> {
    n: usize,
    /// `(row << 32 | col)` → slot in [`vals`](Self::vals).
    slots: HashMap<u64, usize>,
    /// Slot → coordinate, in insertion order.
    coords: Vec<(u32, u32)>,
    /// Assembled values, by slot.
    vals: Vec<S>,
    /// CSC image of the pattern (rebuilt when the pattern grows).
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    csc_vals: Vec<S>,
    /// Slot → position in the CSC value array.
    slot_to_pos: Vec<usize>,
    pattern_dirty: bool,
    lu: Option<SparseLu<S>>,
    factored: bool,
    /// Fill-reducing ordering policy for this system.
    ordering: FillOrdering,
    /// Column elimination order for the *scalar* engine, computed
    /// lazily from the current pattern the first time the scalar path
    /// actually factors (`None` under a natural resolution, or while
    /// the supernodal engine — which orders its own symmetrized
    /// pattern — is carrying the load). Shared with the machine-wide
    /// ordering cache.
    col_order: Option<Arc<Vec<usize>>>,
    /// `col_order` reflects the current pattern (distinguishes "not
    /// computed yet" from "natural → none").
    col_order_ready: bool,
    /// Numeric-engine policy ([`FactorKind::Auto`] switches on size).
    factor_kind: FactorKind,
    /// Requested supernodal worker threads (0 = auto).
    factor_threads: usize,
    /// Supernodal engine for the current pattern, when engaged.
    snl: Option<SupernodalLu<S>>,
    /// Sticky per-pattern opt-out: set when the supernodal engine
    /// rejected a pivot, cleared when the pattern changes. Keeps a
    /// drifting Newton/transient run from paying a failed supernodal
    /// attempt on every factor.
    snl_dead: bool,
    /// `true` when the last successful factor was supernodal.
    active_supernodal: bool,
    stat_factors: u64,
    stat_refactors: u64,
    stat_fallbacks: u64,
    stat_last_factor_us: u64,
    stat_last_refactor_us: u64,
    /// Ordering cost/source of the scalar path's last analysis (the
    /// supernodal engine reports its own).
    stat_order_us: u64,
    stat_order_source: &'static str,
}

impl<S: Scalar> SparseSystem<S> {
    /// Empty sparse system of order `n` (pattern grows with stamps)
    /// with the default fill-reducing ordering.
    pub fn new(n: usize) -> Self {
        Self::with_ordering(n, FillOrdering::default())
    }

    /// [`new`](Self::new) with an explicit ordering policy.
    pub fn with_ordering(n: usize, ordering: FillOrdering) -> Self {
        Self::with_solver(n, ordering, FactorKind::default(), 0)
    }

    /// [`new`](Self::new) with the full solver policy: ordering,
    /// numeric engine, and supernodal thread request (0 = auto).
    pub fn with_solver(
        n: usize,
        ordering: FillOrdering,
        factor: FactorKind,
        factor_threads: usize,
    ) -> Self {
        SparseSystem {
            n,
            slots: HashMap::new(),
            coords: Vec::new(),
            vals: Vec::new(),
            col_ptr: Vec::new(),
            row_idx: Vec::new(),
            csc_vals: Vec::new(),
            slot_to_pos: Vec::new(),
            pattern_dirty: true,
            lu: None,
            factored: false,
            ordering,
            col_order: None,
            col_order_ready: false,
            factor_kind: factor,
            factor_threads,
            snl: None,
            snl_dead: false,
            active_supernodal: false,
            stat_factors: 0,
            stat_refactors: 0,
            stat_fallbacks: 0,
            stat_last_factor_us: 0,
            stat_last_refactor_us: 0,
            stat_order_us: 0,
            stat_order_source: "none",
        }
    }

    /// Structural nonzero count of the current pattern.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The ordering policy this system eliminates with.
    pub fn ordering(&self) -> FillOrdering {
        self.ordering
    }

    /// The numeric-engine policy this system factors with.
    pub fn factor_kind(&self) -> FactorKind {
        self.factor_kind
    }

    /// Nonzeros `(nnz(L), nnz(U))` of the last factorization, `None`
    /// before the first successful factor — the fill diagnostic the
    /// ordering benches report. For the supernodal engine this is the
    /// dense panel storage (including amalgamation padding).
    pub fn factor_nnz(&self) -> Option<(usize, usize)> {
        if self.active_supernodal {
            self.snl.as_ref().map(SupernodalLu::nnz)
        } else {
            self.lu.as_ref().map(SparseLu::nnz)
        }
    }

    /// `true` when the next factor can replay the recorded symbolic
    /// factorization (pattern stable and analyzed).
    pub fn has_symbolic(&self) -> bool {
        !self.pattern_dirty && (self.lu.is_some() || self.snl.is_some())
    }

    fn rebuild_csc(&mut self) {
        // Sort slots by (col, row) to build the CSC image, remembering
        // where each slot landed.
        let mut order: Vec<usize> = (0..self.coords.len()).collect();
        order.sort_unstable_by_key(|&s| (self.coords[s].1, self.coords[s].0));
        self.col_ptr = vec![0; self.n + 1];
        self.row_idx = Vec::with_capacity(order.len());
        self.csc_vals = vec![S::zero(); order.len()];
        self.slot_to_pos = vec![0; order.len()];
        for (pos, &slot) in order.iter().enumerate() {
            let (r, c) = self.coords[slot];
            self.col_ptr[c as usize + 1] += 1;
            self.row_idx.push(r as usize);
            self.slot_to_pos[slot] = pos;
        }
        for c in 0..self.n {
            self.col_ptr[c + 1] += self.col_ptr[c];
        }
        // The scalar engine's fill order is computed lazily (see
        // `ensure_col_order`): when the supernodal engine carries this
        // pattern it orders its own symmetrized image through the
        // ordering cache, and paying a second ordering of the raw
        // pattern up front would double the cold-start cost.
        self.col_order = None;
        self.col_order_ready = false;
        self.pattern_dirty = false;
        self.lu = None;
        self.snl = None;
        self.snl_dead = false;
        self.active_supernodal = false;
    }

    /// Symbolic-time ordering for the scalar path: computed once per
    /// (stable) pattern through the machine-wide ordering cache and
    /// reused by every subsequent factor/refactor.
    fn ensure_col_order(&mut self) {
        if self.col_order_ready {
            return;
        }
        let resolved = self.ordering.resolve(self.n);
        self.col_order = match resolved {
            FillOrdering::Amd | FillOrdering::Nd if self.n > 1 => {
                let lookup = order_cached(resolved, self.n, &self.col_ptr, &self.row_idx);
                self.stat_order_us = lookup.order_us;
                self.stat_order_source = if lookup.hit {
                    "cached"
                } else {
                    resolved.name()
                };
                Some(lookup.perm)
            }
            _ => {
                self.stat_order_us = 0;
                self.stat_order_source = "natural";
                None
            }
        };
        self.col_order_ready = true;
    }
}

impl<S: Scalar + Send + Sync + 'static> SystemMatrix<S> for SparseSystem<S> {
    fn n(&self) -> usize {
        self.n
    }

    fn clear(&mut self) {
        self.vals.iter_mut().for_each(|v| *v = S::zero());
        self.factored = false;
    }

    fn add(&mut self, row: usize, col: usize, v: S) {
        debug_assert!(row < self.n && col < self.n, "stamp out of bounds");
        let key = ((row as u64) << 32) | col as u64;
        match self.slots.get(&key) {
            Some(&slot) => self.vals[slot] += v,
            None => {
                let slot = self.vals.len();
                self.slots.insert(key, slot);
                self.coords.push((row as u32, col as u32));
                self.vals.push(v);
                // A new structural entry invalidates the symbolic
                // analysis; the pattern only ever grows, so devices
                // whose Jacobian entries come and go (HDL models with
                // locally-zero derivatives) converge on a stable
                // superset after the first few assemblies.
                self.pattern_dirty = true;
            }
        }
    }

    fn all_finite(&self) -> bool {
        self.vals.iter().all(|v| v.is_finite_scalar())
    }

    fn factor(&mut self) -> Result<()> {
        self.factored = false;
        if self.pattern_dirty {
            self.rebuild_csc();
        }
        for (slot, &pos) in self.slot_to_pos.iter().enumerate() {
            self.csc_vals[pos] = self.vals[slot];
        }
        // Scalar-path ordering is resolved lazily here rather than in
        // `rebuild_csc`: when the supernodal engine is active it orders
        // its own (symmetrized, matched) pattern and the scalar order
        // would be dead weight on the cold path.
        if self.snl_dead || self.factor_kind.resolve(self.n) != FactorKind::Supernodal {
            self.ensure_col_order();
        }
        let mut view = CscView {
            n: self.n,
            col_ptr: &self.col_ptr,
            row_idx: &self.row_idx,
            values: &self.csc_vals,
        };
        // Supernodal engine first when the policy selects it: a
        // numeric-only replay when the symbolic analysis exists, a
        // fresh analysis + factor otherwise. Any failure (a static
        // pivot past the drift guard, or a structurally unmatched
        // pattern) drops to the scalar re-pivoting path below and
        // stays there until the pattern changes.
        if !self.snl_dead && self.factor_kind.resolve(self.n) == FactorKind::Supernodal {
            let t0 = Instant::now();
            let replay = self.snl.is_some();
            let res = match &mut self.snl {
                Some(snl) => snl.refactor(&view),
                None => SupernodalLu::factor(&view, self.ordering, self.factor_threads)
                    .map(|snl| self.snl = Some(snl)),
            };
            match res {
                Ok(()) => {
                    let us = t0.elapsed().as_micros() as u64;
                    if replay {
                        self.stat_refactors += 1;
                        self.stat_last_refactor_us = us;
                    } else {
                        self.stat_factors += 1;
                        self.stat_last_factor_us = us;
                    }
                    self.active_supernodal = true;
                    self.factored = true;
                    return Ok(());
                }
                Err(e) => {
                    if std::env::var_os("MEMS_SNL_DEBUG").is_some() {
                        eprintln!("supernodal fallback: {e:?}");
                    }
                    self.snl = None;
                    self.snl_dead = true;
                    self.stat_fallbacks += 1;
                }
            }
        }
        self.active_supernodal = false;
        if !self.col_order_ready {
            // First scalar factor after a supernodal fallback: the
            // ordering was skipped above while the supernodal engine
            // looked viable, so pattern and values are re-borrowed
            // here (cheaply — `view` is rebuilt from the same slices).
            self.ensure_col_order();
            view = CscView {
                n: self.n,
                col_ptr: &self.col_ptr,
                row_idx: &self.row_idx,
                values: &self.csc_vals,
            };
        }
        let t0 = Instant::now();
        let order = self.col_order.as_deref().map(Vec::as_slice);
        let fresh = |view: &CscView<'_, S>| match order {
            Some(q) => SparseLu::factor_ordered(view, q),
            None => SparseLu::factor(view),
        };
        let mut replayed = true;
        match &mut self.lu {
            Some(lu) => {
                // Numeric-only replay; a dead pivot means the values
                // moved too far from the analyzed ones — fall back to
                // a full re-pivoting factorization (under the same
                // column order: the fallback re-picks rows only).
                if lu.refactor(&view).is_err() {
                    self.lu = Some(fresh(&view)?);
                    self.stat_fallbacks += 1;
                    replayed = false;
                }
            }
            None => {
                self.lu = Some(fresh(&view)?);
                replayed = false;
            }
        }
        let us = t0.elapsed().as_micros() as u64;
        if replayed {
            self.stat_refactors += 1;
            self.stat_last_refactor_us = us;
        } else {
            self.stat_factors += 1;
            self.stat_last_factor_us = us;
        }
        self.factored = true;
        Ok(())
    }

    fn solve(&self, b: &[S]) -> Result<Vec<S>> {
        if !self.factored {
            return Err(NumericsError::InvalidInput(
                "solve called before factor".into(),
            ));
        }
        if self.active_supernodal {
            if let Some(snl) = &self.snl {
                return snl.solve(b);
            }
        }
        match &self.lu {
            Some(lu) => lu.solve(b),
            None => Err(NumericsError::InvalidInput(
                "solve called before factor".into(),
            )),
        }
    }

    fn backend(&self) -> MatrixBackend {
        MatrixBackend::Sparse
    }

    fn get(&self, row: usize, col: usize) -> S {
        let key = ((row as u64) << 32) | col as u64;
        self.slots
            .get(&key)
            .map_or_else(S::zero, |&slot| self.vals[slot])
    }

    fn solver_stats(&self) -> SolverStats {
        let (factor_path, factor_nnz, supernodes, levels, threads, order_source, order_us) =
            if let (true, Some(snl)) = (self.active_supernodal, self.snl.as_ref()) {
                let (l, u) = snl.nnz();
                (
                    "supernodal",
                    l + u,
                    snl.supernodes(),
                    snl.levels(),
                    snl.threads_used(),
                    snl.order_source(),
                    snl.order_us(),
                )
            } else if let Some(lu) = &self.lu {
                let (l, u) = lu.nnz();
                (
                    "scalar",
                    l + u,
                    0,
                    0,
                    1,
                    self.stat_order_source,
                    self.stat_order_us,
                )
            } else {
                ("none", 0, 0, 0, 0, "none", 0)
            };
        SolverStats {
            backend: "sparse",
            factor_path,
            ordering: self.ordering.name(),
            order_source,
            order_us,
            n: self.n,
            pattern_nnz: self.vals.len(),
            factor_nnz,
            supernodes,
            levels,
            threads,
            factors: self.stat_factors,
            refactors: self.stat_refactors,
            fallbacks: self.stat_fallbacks,
            last_factor_us: self.stat_last_factor_us,
            last_refactor_us: self.stat_last_refactor_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp_all<S: Scalar + 'static>(
        sys: &mut dyn SystemMatrix<S>,
        entries: &[(usize, usize, S)],
    ) {
        for &(r, c, v) in entries {
            sys.add(r, c, v);
        }
    }

    #[test]
    fn dense_and_sparse_agree_on_a_small_solve() {
        let entries = [
            (0usize, 0usize, 2.0),
            (0, 1, 1.0),
            (1, 0, -1.0),
            (1, 1, 3.0),
            (1, 2, 0.5),
            (2, 2, 1.5),
        ];
        let b = [1.0, -2.0, 3.0];
        let mut dense = DenseSystem::<f64>::new(3);
        let mut sparse = SparseSystem::<f64>::new(3);
        stamp_all(&mut dense, &entries);
        stamp_all(&mut sparse, &entries);
        dense.factor().unwrap();
        sparse.factor().unwrap();
        let xd = dense.solve(&b).unwrap();
        let xs = sparse.solve(&b).unwrap();
        for (d, s) in xd.iter().zip(&xs) {
            assert!((d - s).abs() < 1e-13, "{xd:?} vs {xs:?}");
        }
        assert_eq!(dense.get(0, 1), 1.0);
        assert_eq!(sparse.get(0, 1), 1.0);
        assert_eq!(sparse.get(2, 0), 0.0);
    }

    #[test]
    fn sparse_reuses_symbolic_across_value_changes() {
        let mut sys = SparseSystem::<f64>::new(2);
        sys.add(0, 0, 2.0);
        sys.add(1, 1, 4.0);
        sys.add(0, 1, 1.0);
        sys.factor().unwrap();
        assert!(sys.has_symbolic());
        sys.clear();
        sys.add(0, 0, 3.0);
        sys.add(1, 1, 5.0);
        sys.add(0, 1, 1.0);
        assert!(sys.has_symbolic(), "clear must keep the pattern");
        sys.factor().unwrap();
        let x = sys.solve(&[7.0, 10.0]).unwrap();
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[0] - (7.0 - 2.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pattern_growth_invalidates_symbolic() {
        let mut sys = SparseSystem::<f64>::new(2);
        sys.add(0, 0, 1.0);
        sys.add(1, 1, 1.0);
        sys.factor().unwrap();
        sys.clear();
        sys.add(0, 0, 1.0);
        sys.add(1, 1, 1.0);
        sys.add(1, 0, 0.5); // new structural entry
        assert!(!sys.has_symbolic());
        sys.factor().unwrap();
        let x = sys.solve(&[1.0, 1.5]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert_eq!(sys.nnz(), 3);
    }

    #[test]
    fn singular_sparse_system_errors() {
        let mut sys = SparseSystem::<f64>::new(2);
        sys.add(0, 0, 1.0);
        sys.add(0, 1, 2.0);
        sys.add(1, 0, 2.0);
        sys.add(1, 1, 4.0);
        assert!(matches!(sys.factor(), Err(NumericsError::Singular { .. })));
        assert!(sys.solve(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn refactor_falls_back_to_full_factor_on_dead_pivot() {
        let mut sys = SparseSystem::<f64>::new(2);
        sys.add(0, 0, 1.0);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, 1.0);
        sys.add(1, 1, 3.0);
        sys.factor().unwrap();
        // New values make the replayed (0,0) pivot exactly zero; the
        // fallback full factorization must re-pivot and still solve.
        sys.clear();
        sys.add(0, 0, 0.0);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, 1.0);
        sys.add(1, 1, 3.0);
        sys.factor().unwrap();
        let x = sys.solve(&[2.0, 5.0]).unwrap();
        assert!((x[0] + 1.0).abs() < 1e-12, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-12, "{x:?}");
    }

    #[test]
    fn ordering_reduces_fill_and_agrees_with_natural() {
        // Arrow pattern: natural elimination fills the whole matrix,
        // AMD keeps it sparse. Same solution either way.
        let n = 24;
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 4.0 + i as f64 * 0.1));
            if i > 0 {
                entries.push((0, i, 0.5));
                entries.push((i, 0, 0.25));
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut amd = SparseSystem::<f64>::with_ordering(n, FillOrdering::Amd);
        let mut nat = SparseSystem::<f64>::with_ordering(n, FillOrdering::Natural);
        stamp_all(&mut amd, &entries);
        stamp_all(&mut nat, &entries);
        amd.factor().unwrap();
        nat.factor().unwrap();
        let (l_amd, _) = amd.factor_nnz().unwrap();
        let (l_nat, _) = nat.factor_nnz().unwrap();
        assert!(l_amd < l_nat, "AMD fill {l_amd} vs natural {l_nat}");
        let xa = amd.solve(&b).unwrap();
        let xn = nat.solve(&b).unwrap();
        for (a, n) in xa.iter().zip(&xn) {
            assert!((a - n).abs() < 1e-11, "{xa:?} vs {xn:?}");
        }
        // Symbolic (and the ordering) survive a value-only refactor.
        amd.clear();
        stamp_all(&mut amd, &entries);
        assert!(amd.has_symbolic());
        amd.factor().unwrap();
        let xa2 = amd.solve(&b).unwrap();
        assert_eq!(xa, xa2);
    }

    #[test]
    fn ordered_dead_pivot_falls_back_to_full_refactor() {
        let mut sys = SparseSystem::<f64>::with_ordering(3, FillOrdering::Amd);
        let entries = [
            (0usize, 0usize, 2.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (2, 2, 1.0),
        ];
        stamp_all(&mut sys, &entries);
        sys.factor().unwrap();
        // Kill the replayed pivot; the fallback re-pivots rows under
        // the same column order and must still solve.
        sys.clear();
        sys.add(0, 0, 0.0);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, 1.0);
        sys.add(1, 1, 3.0);
        sys.add(2, 2, 1.0);
        sys.factor().unwrap();
        let x = sys.solve(&[2.0, 5.0, 1.0]).unwrap();
        assert!((x[0] + 1.0).abs() < 1e-12, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-12, "{x:?}");
        assert!((x[2] - 1.0).abs() < 1e-12, "{x:?}");
    }

    #[test]
    fn forced_supernodal_agrees_with_scalar_and_reports_stats() {
        // 10×10 grid MNA-ish pattern: small enough that Auto would
        // stay scalar, so force the supernodal engine on one copy.
        let (r, c) = (10usize, 10usize);
        let n = r * c;
        let idx = |i: usize, j: usize| i * c + j;
        let mut entries = Vec::new();
        for i in 0..r {
            for j in 0..c {
                entries.push((idx(i, j), idx(i, j), 4.0 + (i * c + j) as f64 * 0.01));
                if i + 1 < r {
                    entries.push((idx(i, j), idx(i + 1, j), -1.0));
                    entries.push((idx(i + 1, j), idx(i, j), -0.8));
                }
                if j + 1 < c {
                    entries.push((idx(i, j), idx(i, j + 1), -1.1));
                    entries.push((idx(i, j + 1), idx(i, j), -0.9));
                }
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut snl =
            SparseSystem::<f64>::with_solver(n, FillOrdering::Amd, FactorKind::Supernodal, 2);
        let mut sca = SparseSystem::<f64>::with_solver(n, FillOrdering::Amd, FactorKind::Scalar, 0);
        stamp_all(&mut snl, &entries);
        stamp_all(&mut sca, &entries);
        snl.factor().unwrap();
        sca.factor().unwrap();
        let xs = snl.solve(&b).unwrap();
        let xc = sca.solve(&b).unwrap();
        for (a, bb) in xs.iter().zip(&xc) {
            assert!((a - bb).abs() < 1e-10, "{xs:?} vs {xc:?}");
        }
        let st = snl.solver_stats();
        assert_eq!(st.backend, "sparse");
        assert_eq!(st.factor_path, "supernodal");
        assert_eq!(st.ordering, "amd");
        assert_eq!(st.factors, 1);
        assert!(st.supernodes >= 1 && st.levels >= 1);
        assert!(st.factor_nnz >= st.pattern_nnz / 2);
        assert_eq!(sca.solver_stats().factor_path, "scalar");
        // Value-only change: the supernodal symbolic is replayed.
        snl.clear();
        stamp_all(&mut snl, &entries);
        snl.factor().unwrap();
        let st = snl.solver_stats();
        assert_eq!(st.refactors, 1);
        let xs2 = snl.solve(&b).unwrap();
        assert_eq!(xs, xs2);
    }

    #[test]
    fn supernodal_pivot_failure_falls_back_to_scalar() {
        // The value-aware matching dodges pivots that are bad *in A*,
        // but nothing static can dodge a pivot that cancels to zero
        // *during* elimination. First factor: strongly diagonal values
        // (off-diagonals below the match filter pin the transversal to
        // the identity). Then refactor the same pattern with values
        // whose second diagonal pivot cancels exactly — the drift
        // guard must reject and the system must fall back to the
        // scalar re-pivoting engine and still produce the right
        // answer.
        let pattern: &[(usize, usize)] = &[(0, 0), (1, 0), (0, 1), (1, 1), (2, 1), (1, 2), (2, 2)];
        let mut sys =
            SparseSystem::<f64>::with_solver(3, FillOrdering::Natural, FactorKind::Supernodal, 1);
        for &(r, c) in pattern {
            sys.add(r, c, if r == c { 4.0 } else { 1e-6 });
        }
        sys.factor().unwrap();
        assert_eq!(sys.solver_stats().factor_path, "supernodal");
        // Cancellation values: eliminating column 0 sends the (1,1)
        // pivot to 1 − 1·1 = 0 while |(2,1)| stays 1. Partial pivoting
        // swaps rows and survives; the static replay cannot.
        let refill = |sys: &mut SparseSystem<f64>| {
            sys.clear();
            for &(r, c) in pattern {
                sys.add(r, c, 1.0);
            }
        };
        refill(&mut sys);
        sys.factor().unwrap();
        let st = sys.solver_stats();
        assert_eq!(st.factor_path, "scalar", "fell back");
        assert!(st.fallbacks >= 1);
        let x = sys.solve(&[2.0, 3.0, 2.0]).unwrap();
        for (i, xi) in x.iter().enumerate() {
            assert!((xi - 1.0).abs() < 1e-12, "x[{i}] = {xi}");
        }
        // The opt-out is sticky for this pattern: the next factor goes
        // straight to the scalar path without a second failed attempt.
        let fallbacks = st.fallbacks;
        refill(&mut sys);
        sys.factor().unwrap();
        assert_eq!(sys.solver_stats().fallbacks, fallbacks);
    }

    #[test]
    fn factor_kind_resolves_by_size() {
        assert_eq!(FactorKind::Auto.resolve(100), FactorKind::Scalar);
        assert_eq!(
            FactorKind::Auto.resolve(SUPERNODAL_AUTO_THRESHOLD),
            FactorKind::Supernodal
        );
        assert_eq!(FactorKind::Scalar.resolve(1 << 20), FactorKind::Scalar);
        assert_eq!(FactorKind::Supernodal.resolve(2), FactorKind::Supernodal);
    }

    #[test]
    fn auto_backend_resolves_by_size() {
        assert_eq!(MatrixBackend::Auto.resolve(10), MatrixBackend::Dense);
        assert_eq!(
            MatrixBackend::Auto.resolve(AUTO_SPARSE_THRESHOLD),
            MatrixBackend::Sparse
        );
        assert_eq!(MatrixBackend::Dense.resolve(1000), MatrixBackend::Dense);
        assert_eq!(MatrixBackend::Sparse.resolve(2), MatrixBackend::Sparse);
        let sys = new_system::<f64>(100, MatrixBackend::Auto);
        assert_eq!(sys.backend(), MatrixBackend::Sparse);
        let sys = new_system::<f64>(10, MatrixBackend::Auto);
        assert_eq!(sys.backend(), MatrixBackend::Dense);
    }
}
