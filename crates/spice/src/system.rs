//! The backend-agnostic system matrix: every analysis stamps its MNA
//! Jacobian (or complex AC admittance matrix) through the
//! [`SystemMatrix`] trait and solves through the same interface, so
//! the choice between a dense LU and the sparse
//! Gilbert–Peierls factorization is a per-circuit policy decision, not
//! a per-analysis code path.
//!
//! Two implementations:
//!
//! - [`DenseSystem`]: a [`DenseMatrix`] refactored from scratch each
//!   [`factor`](SystemMatrix::factor) — the right default for the
//!   paper-scale circuits of a few dozen unknowns.
//! - [`SparseSystem`]: a growable sparsity pattern over
//!   [`SparseLu`], with split symbolic/numeric factorization. The
//!   pattern is discovered from the stamps themselves (a stamp at a
//!   new coordinate grows the pattern and invalidates the symbolic
//!   analysis), and once the pattern is stable every subsequent
//!   [`factor`](SystemMatrix::factor) is a numeric-only
//!   [`SparseLu::refactor`] — the hot path for Newton iterations,
//!   transient steps, AC frequency points, and `.STEP`/`.MC` batch
//!   points that share one topology.
//!
//! Backend selection is [`MatrixBackend`]: `Auto` switches to sparse
//! at [`AUTO_SPARSE_THRESHOLD`] unknowns, and
//! [`SimOptions::matrix`](crate::solver::SimOptions) (deck option
//! `sparse=0/1`) overrides it either way.
//!
//! The sparse backend additionally applies a fill-reducing
//! [`FillOrdering`] at symbolic time: when the (re)discovered pattern
//! stabilizes, [`mems_numerics::ordering::amd_order`] computes a
//! minimum-degree column order once, and every factorization — first
//! and replayed — eliminates in that order. Deck option
//! `order=amd|natural` (default `amd`) selects it.

use mems_numerics::dense::DenseMatrix;
use mems_numerics::lu::LuFactors;
use mems_numerics::ordering::amd_order;
use mems_numerics::scalar::Scalar;
use mems_numerics::sparse_lu::{CscView, SparseLu};
use mems_numerics::{NumericsError, Result};
use std::collections::HashMap;

pub use mems_numerics::ordering::FillOrdering;

/// Unknown count at which `Auto` switches from dense to sparse.
///
/// Dense LU is `O(n³)` with a small constant; the sparse path wins
/// once the Jacobian is big *and* mostly structural zeros, which for
/// MNA matrices (a handful of entries per device) is around here.
pub const AUTO_SPARSE_THRESHOLD: usize = 50;

/// Which linear-algebra backend assembles and solves the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixBackend {
    /// Pick by unknown count ([`AUTO_SPARSE_THRESHOLD`]).
    #[default]
    Auto,
    /// Force the dense LU path.
    Dense,
    /// Force the sparse LU path.
    Sparse,
}

impl MatrixBackend {
    /// Resolves `Auto` against an unknown count.
    pub fn resolve(self, n: usize) -> MatrixBackend {
        match self {
            MatrixBackend::Auto => {
                if n >= AUTO_SPARSE_THRESHOLD {
                    MatrixBackend::Sparse
                } else {
                    MatrixBackend::Dense
                }
            }
            other => other,
        }
    }
}

/// A square system matrix that devices stamp into and analyses solve
/// through.
///
/// The lifecycle per solve is `clear → add… → factor → solve…`;
/// implementations may cache whatever structure survives between
/// cycles (the sparse backend keeps its sparsity pattern and symbolic
/// factorization).
pub trait SystemMatrix<S: Scalar>: Send {
    /// Matrix order.
    fn n(&self) -> usize;

    /// Zeroes all values, keeping cached structure.
    fn clear(&mut self);

    /// Accumulates `v` at `(row, col)`.
    fn add(&mut self, row: usize, col: usize, v: S);

    /// `true` when every stored value is finite.
    fn all_finite(&self) -> bool;

    /// Factorizes the current values.
    ///
    /// # Errors
    ///
    /// [`NumericsError::Singular`] for singular systems.
    fn factor(&mut self) -> Result<()>;

    /// Solves `A·x = b` against the last [`factor`](Self::factor).
    ///
    /// # Errors
    ///
    /// Dimension mismatches, or calling before a successful factor.
    fn solve(&self, b: &[S]) -> Result<Vec<S>>;

    /// Which concrete backend this is, for reports and tests.
    fn backend(&self) -> MatrixBackend;

    /// Value at `(row, col)` — diagnostic/test accessor, zero when
    /// unstamped.
    fn get(&self, row: usize, col: usize) -> S;
}

/// Builds a system matrix of order `n` for the (resolved) backend,
/// with the default [`FillOrdering`] on the sparse path.
pub fn new_system<S: Scalar + Send + 'static>(
    n: usize,
    backend: MatrixBackend,
) -> Box<dyn SystemMatrix<S>> {
    new_system_with(n, backend, FillOrdering::default())
}

/// [`new_system`] with an explicit sparse fill-reducing ordering
/// (ignored by the dense backend).
pub fn new_system_with<S: Scalar + Send + 'static>(
    n: usize,
    backend: MatrixBackend,
    ordering: FillOrdering,
) -> Box<dyn SystemMatrix<S>> {
    match backend.resolve(n) {
        MatrixBackend::Sparse => Box::new(SparseSystem::with_ordering(n, ordering)),
        _ => Box::new(DenseSystem::new(n)),
    }
}

/// Dense backend: [`DenseMatrix`] + full pivoted LU per factor.
pub struct DenseSystem<S: Scalar> {
    m: DenseMatrix<S>,
    lu: Option<LuFactors<S>>,
}

impl<S: Scalar> DenseSystem<S> {
    /// Zero-filled dense system of order `n`.
    pub fn new(n: usize) -> Self {
        DenseSystem {
            m: DenseMatrix::zeros(n, n),
            lu: None,
        }
    }
}

impl<S: Scalar + Send + 'static> SystemMatrix<S> for DenseSystem<S> {
    fn n(&self) -> usize {
        self.m.rows()
    }

    fn clear(&mut self) {
        self.m.fill_zero();
        self.lu = None;
    }

    fn add(&mut self, row: usize, col: usize, v: S) {
        self.m.add_at(row, col, v);
    }

    fn all_finite(&self) -> bool {
        self.m.all_finite()
    }

    fn factor(&mut self) -> Result<()> {
        self.lu = Some(LuFactors::factor(&self.m)?);
        Ok(())
    }

    fn solve(&self, b: &[S]) -> Result<Vec<S>> {
        match &self.lu {
            Some(lu) => lu.solve(b),
            None => Err(NumericsError::InvalidInput(
                "solve called before factor".into(),
            )),
        }
    }

    fn backend(&self) -> MatrixBackend {
        MatrixBackend::Dense
    }

    fn get(&self, row: usize, col: usize) -> S {
        self.m[(row, col)]
    }
}

/// Sparse backend: growable stamp pattern + split symbolic/numeric LU.
pub struct SparseSystem<S: Scalar> {
    n: usize,
    /// `(row << 32 | col)` → slot in [`vals`](Self::vals).
    slots: HashMap<u64, usize>,
    /// Slot → coordinate, in insertion order.
    coords: Vec<(u32, u32)>,
    /// Assembled values, by slot.
    vals: Vec<S>,
    /// CSC image of the pattern (rebuilt when the pattern grows).
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    csc_vals: Vec<S>,
    /// Slot → position in the CSC value array.
    slot_to_pos: Vec<usize>,
    pattern_dirty: bool,
    lu: Option<SparseLu<S>>,
    factored: bool,
    /// Fill-reducing ordering policy for this system.
    ordering: FillOrdering,
    /// Column elimination order computed from the current pattern
    /// (`None` under [`FillOrdering::Natural`]).
    col_order: Option<Vec<usize>>,
}

impl<S: Scalar> SparseSystem<S> {
    /// Empty sparse system of order `n` (pattern grows with stamps)
    /// with the default fill-reducing ordering.
    pub fn new(n: usize) -> Self {
        Self::with_ordering(n, FillOrdering::default())
    }

    /// [`new`](Self::new) with an explicit ordering policy.
    pub fn with_ordering(n: usize, ordering: FillOrdering) -> Self {
        SparseSystem {
            n,
            slots: HashMap::new(),
            coords: Vec::new(),
            vals: Vec::new(),
            col_ptr: Vec::new(),
            row_idx: Vec::new(),
            csc_vals: Vec::new(),
            slot_to_pos: Vec::new(),
            pattern_dirty: true,
            lu: None,
            factored: false,
            ordering,
            col_order: None,
        }
    }

    /// Structural nonzero count of the current pattern.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The ordering policy this system eliminates with.
    pub fn ordering(&self) -> FillOrdering {
        self.ordering
    }

    /// Nonzeros `(nnz(L), nnz(U))` of the last factorization, `None`
    /// before the first successful factor — the fill diagnostic the
    /// ordering benches report.
    pub fn factor_nnz(&self) -> Option<(usize, usize)> {
        self.lu.as_ref().map(SparseLu::nnz)
    }

    /// `true` when the next factor can replay the recorded symbolic
    /// factorization (pattern stable and analyzed).
    pub fn has_symbolic(&self) -> bool {
        !self.pattern_dirty && self.lu.is_some()
    }

    fn rebuild_csc(&mut self) {
        // Sort slots by (col, row) to build the CSC image, remembering
        // where each slot landed.
        let mut order: Vec<usize> = (0..self.coords.len()).collect();
        order.sort_unstable_by_key(|&s| (self.coords[s].1, self.coords[s].0));
        self.col_ptr = vec![0; self.n + 1];
        self.row_idx = Vec::with_capacity(order.len());
        self.csc_vals = vec![S::zero(); order.len()];
        self.slot_to_pos = vec![0; order.len()];
        for (pos, &slot) in order.iter().enumerate() {
            let (r, c) = self.coords[slot];
            self.col_ptr[c as usize + 1] += 1;
            self.row_idx.push(r as usize);
            self.slot_to_pos[slot] = pos;
        }
        for c in 0..self.n {
            self.col_ptr[c + 1] += self.col_ptr[c];
        }
        // Symbolic-time ordering: computed once per (stable) pattern
        // and reused by every subsequent factor/refactor.
        self.col_order = match self.ordering {
            FillOrdering::Amd if self.n > 1 => {
                Some(amd_order(self.n, &self.col_ptr, &self.row_idx))
            }
            _ => None,
        };
        self.pattern_dirty = false;
        self.lu = None;
    }
}

impl<S: Scalar + Send + 'static> SystemMatrix<S> for SparseSystem<S> {
    fn n(&self) -> usize {
        self.n
    }

    fn clear(&mut self) {
        self.vals.iter_mut().for_each(|v| *v = S::zero());
        self.factored = false;
    }

    fn add(&mut self, row: usize, col: usize, v: S) {
        debug_assert!(row < self.n && col < self.n, "stamp out of bounds");
        let key = ((row as u64) << 32) | col as u64;
        match self.slots.get(&key) {
            Some(&slot) => self.vals[slot] += v,
            None => {
                let slot = self.vals.len();
                self.slots.insert(key, slot);
                self.coords.push((row as u32, col as u32));
                self.vals.push(v);
                // A new structural entry invalidates the symbolic
                // analysis; the pattern only ever grows, so devices
                // whose Jacobian entries come and go (HDL models with
                // locally-zero derivatives) converge on a stable
                // superset after the first few assemblies.
                self.pattern_dirty = true;
            }
        }
    }

    fn all_finite(&self) -> bool {
        self.vals.iter().all(|v| v.is_finite_scalar())
    }

    fn factor(&mut self) -> Result<()> {
        self.factored = false;
        if self.pattern_dirty {
            self.rebuild_csc();
        }
        for (slot, &pos) in self.slot_to_pos.iter().enumerate() {
            self.csc_vals[pos] = self.vals[slot];
        }
        let view = CscView {
            n: self.n,
            col_ptr: &self.col_ptr,
            row_idx: &self.row_idx,
            values: &self.csc_vals,
        };
        let order = self.col_order.as_deref();
        let fresh = |view: &CscView<'_, S>| match order {
            Some(q) => SparseLu::factor_ordered(view, q),
            None => SparseLu::factor(view),
        };
        match &mut self.lu {
            Some(lu) => {
                // Numeric-only replay; a dead pivot means the values
                // moved too far from the analyzed ones — fall back to
                // a full re-pivoting factorization (under the same
                // column order: the fallback re-picks rows only).
                if lu.refactor(&view).is_err() {
                    self.lu = Some(fresh(&view)?);
                }
            }
            None => {
                self.lu = Some(fresh(&view)?);
            }
        }
        self.factored = true;
        Ok(())
    }

    fn solve(&self, b: &[S]) -> Result<Vec<S>> {
        match (&self.lu, self.factored) {
            (Some(lu), true) => lu.solve(b),
            _ => Err(NumericsError::InvalidInput(
                "solve called before factor".into(),
            )),
        }
    }

    fn backend(&self) -> MatrixBackend {
        MatrixBackend::Sparse
    }

    fn get(&self, row: usize, col: usize) -> S {
        let key = ((row as u64) << 32) | col as u64;
        self.slots
            .get(&key)
            .map_or_else(S::zero, |&slot| self.vals[slot])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp_all<S: Scalar + 'static>(
        sys: &mut dyn SystemMatrix<S>,
        entries: &[(usize, usize, S)],
    ) {
        for &(r, c, v) in entries {
            sys.add(r, c, v);
        }
    }

    #[test]
    fn dense_and_sparse_agree_on_a_small_solve() {
        let entries = [
            (0usize, 0usize, 2.0),
            (0, 1, 1.0),
            (1, 0, -1.0),
            (1, 1, 3.0),
            (1, 2, 0.5),
            (2, 2, 1.5),
        ];
        let b = [1.0, -2.0, 3.0];
        let mut dense = DenseSystem::<f64>::new(3);
        let mut sparse = SparseSystem::<f64>::new(3);
        stamp_all(&mut dense, &entries);
        stamp_all(&mut sparse, &entries);
        dense.factor().unwrap();
        sparse.factor().unwrap();
        let xd = dense.solve(&b).unwrap();
        let xs = sparse.solve(&b).unwrap();
        for (d, s) in xd.iter().zip(&xs) {
            assert!((d - s).abs() < 1e-13, "{xd:?} vs {xs:?}");
        }
        assert_eq!(dense.get(0, 1), 1.0);
        assert_eq!(sparse.get(0, 1), 1.0);
        assert_eq!(sparse.get(2, 0), 0.0);
    }

    #[test]
    fn sparse_reuses_symbolic_across_value_changes() {
        let mut sys = SparseSystem::<f64>::new(2);
        sys.add(0, 0, 2.0);
        sys.add(1, 1, 4.0);
        sys.add(0, 1, 1.0);
        sys.factor().unwrap();
        assert!(sys.has_symbolic());
        sys.clear();
        sys.add(0, 0, 3.0);
        sys.add(1, 1, 5.0);
        sys.add(0, 1, 1.0);
        assert!(sys.has_symbolic(), "clear must keep the pattern");
        sys.factor().unwrap();
        let x = sys.solve(&[7.0, 10.0]).unwrap();
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[0] - (7.0 - 2.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pattern_growth_invalidates_symbolic() {
        let mut sys = SparseSystem::<f64>::new(2);
        sys.add(0, 0, 1.0);
        sys.add(1, 1, 1.0);
        sys.factor().unwrap();
        sys.clear();
        sys.add(0, 0, 1.0);
        sys.add(1, 1, 1.0);
        sys.add(1, 0, 0.5); // new structural entry
        assert!(!sys.has_symbolic());
        sys.factor().unwrap();
        let x = sys.solve(&[1.0, 1.5]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert_eq!(sys.nnz(), 3);
    }

    #[test]
    fn singular_sparse_system_errors() {
        let mut sys = SparseSystem::<f64>::new(2);
        sys.add(0, 0, 1.0);
        sys.add(0, 1, 2.0);
        sys.add(1, 0, 2.0);
        sys.add(1, 1, 4.0);
        assert!(matches!(sys.factor(), Err(NumericsError::Singular { .. })));
        assert!(sys.solve(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn refactor_falls_back_to_full_factor_on_dead_pivot() {
        let mut sys = SparseSystem::<f64>::new(2);
        sys.add(0, 0, 1.0);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, 1.0);
        sys.add(1, 1, 3.0);
        sys.factor().unwrap();
        // New values make the replayed (0,0) pivot exactly zero; the
        // fallback full factorization must re-pivot and still solve.
        sys.clear();
        sys.add(0, 0, 0.0);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, 1.0);
        sys.add(1, 1, 3.0);
        sys.factor().unwrap();
        let x = sys.solve(&[2.0, 5.0]).unwrap();
        assert!((x[0] + 1.0).abs() < 1e-12, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-12, "{x:?}");
    }

    #[test]
    fn ordering_reduces_fill_and_agrees_with_natural() {
        // Arrow pattern: natural elimination fills the whole matrix,
        // AMD keeps it sparse. Same solution either way.
        let n = 24;
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 4.0 + i as f64 * 0.1));
            if i > 0 {
                entries.push((0, i, 0.5));
                entries.push((i, 0, 0.25));
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut amd = SparseSystem::<f64>::with_ordering(n, FillOrdering::Amd);
        let mut nat = SparseSystem::<f64>::with_ordering(n, FillOrdering::Natural);
        stamp_all(&mut amd, &entries);
        stamp_all(&mut nat, &entries);
        amd.factor().unwrap();
        nat.factor().unwrap();
        let (l_amd, _) = amd.factor_nnz().unwrap();
        let (l_nat, _) = nat.factor_nnz().unwrap();
        assert!(l_amd < l_nat, "AMD fill {l_amd} vs natural {l_nat}");
        let xa = amd.solve(&b).unwrap();
        let xn = nat.solve(&b).unwrap();
        for (a, n) in xa.iter().zip(&xn) {
            assert!((a - n).abs() < 1e-11, "{xa:?} vs {xn:?}");
        }
        // Symbolic (and the ordering) survive a value-only refactor.
        amd.clear();
        stamp_all(&mut amd, &entries);
        assert!(amd.has_symbolic());
        amd.factor().unwrap();
        let xa2 = amd.solve(&b).unwrap();
        assert_eq!(xa, xa2);
    }

    #[test]
    fn ordered_dead_pivot_falls_back_to_full_refactor() {
        let mut sys = SparseSystem::<f64>::with_ordering(3, FillOrdering::Amd);
        let entries = [
            (0usize, 0usize, 2.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (2, 2, 1.0),
        ];
        stamp_all(&mut sys, &entries);
        sys.factor().unwrap();
        // Kill the replayed pivot; the fallback re-pivots rows under
        // the same column order and must still solve.
        sys.clear();
        sys.add(0, 0, 0.0);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, 1.0);
        sys.add(1, 1, 3.0);
        sys.add(2, 2, 1.0);
        sys.factor().unwrap();
        let x = sys.solve(&[2.0, 5.0, 1.0]).unwrap();
        assert!((x[0] + 1.0).abs() < 1e-12, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-12, "{x:?}");
        assert!((x[2] - 1.0).abs() < 1e-12, "{x:?}");
    }

    #[test]
    fn auto_backend_resolves_by_size() {
        assert_eq!(MatrixBackend::Auto.resolve(10), MatrixBackend::Dense);
        assert_eq!(
            MatrixBackend::Auto.resolve(AUTO_SPARSE_THRESHOLD),
            MatrixBackend::Sparse
        );
        assert_eq!(MatrixBackend::Dense.resolve(1000), MatrixBackend::Dense);
        assert_eq!(MatrixBackend::Sparse.resolve(2), MatrixBackend::Sparse);
        let sys = new_system::<f64>(100, MatrixBackend::Auto);
        assert_eq!(sys.backend(), MatrixBackend::Sparse);
        let sys = new_system::<f64>(10, MatrixBackend::Auto);
        assert_eq!(sys.backend(), MatrixBackend::Dense);
    }
}
