//! The device abstraction and the stamping contexts.
//!
//! Every analysis is formulated as `F(x) = 0` solved by Newton:
//! devices add their residual terms and Jacobian entries through
//! [`LoadCtx`]. Conventions:
//!
//! - KCL rows: a through quantity flowing *out of* node `a` *into* the
//!   device adds `+i` to row `a` and `−i` to row `b`.
//! - Branch rows (device-internal unknowns) hold the device's own
//!   constitutive equation, e.g. `v_a − v_b − V(t) = 0`.
//!
//! AC analysis assembles the complex linear system `J·X = B` via
//! [`AcLoadCtx`]; the Jacobian entries are the same conductances plus
//! `jωC` terms, and `B` collects small-signal source phasors.

use crate::circuit::{NodeId, UnknownLayout};
use crate::error::Result;
use crate::system::SystemMatrix;
use mems_numerics::ode::IntegrationMethod;
use mems_numerics::Complex64;

/// What the (real-valued) load pass is computing.
#[derive(Debug, Clone, Copy)]
pub enum LoadKind {
    /// DC operating point. `gmin` leaks every node to ground;
    /// `source_scale` ramps independent sources during source stepping.
    Dc {
        /// Leak conductance added from every node to ground.
        gmin: f64,
        /// Source scale factor in `[0, 1]`.
        source_scale: f64,
    },
    /// Transient step to time `t` with step `h`.
    Transient {
        /// New (end-of-step) time.
        t: f64,
        /// Step size.
        h: f64,
        /// Integration method.
        method: IntegrationMethod,
    },
}

impl LoadKind {
    /// Source scale factor (1 except during source stepping).
    pub fn source_scale(&self) -> f64 {
        match self {
            LoadKind::Dc { source_scale, .. } => *source_scale,
            LoadKind::Transient { .. } => 1.0,
        }
    }

    /// The time sources should be evaluated at.
    pub fn time(&self) -> f64 {
        match self {
            LoadKind::Dc { .. } => 0.0,
            LoadKind::Transient { t, .. } => *t,
        }
    }
}

/// Real-valued stamping context (DC and transient Newton iterations).
pub struct LoadCtx<'a> {
    /// What is being computed.
    pub kind: LoadKind,
    layout: &'a UnknownLayout,
    x: &'a [f64],
    jac: &'a mut dyn SystemMatrix<f64>,
    resid: &'a mut [f64],
    row_scale: &'a mut [f64],
}

impl<'a> LoadCtx<'a> {
    /// Creates a context over freshly zeroed assembly storage.
    pub fn new(
        kind: LoadKind,
        layout: &'a UnknownLayout,
        x: &'a [f64],
        jac: &'a mut dyn SystemMatrix<f64>,
        resid: &'a mut [f64],
        row_scale: &'a mut [f64],
    ) -> Self {
        LoadCtx {
            kind,
            layout,
            x,
            jac,
            resid,
            row_scale,
        }
    }

    /// The unknown layout.
    pub fn layout(&self) -> &UnknownLayout {
        self.layout
    }

    /// Across value of a node under the current iterate.
    pub fn v(&self, n: NodeId) -> f64 {
        self.layout.node_value(self.x, n)
    }

    /// Value of an arbitrary unknown.
    pub fn unknown(&self, index: usize) -> f64 {
        self.x[index]
    }

    /// Unknown index of a node (`None` = ground).
    pub fn node_unknown(&self, n: NodeId) -> Option<usize> {
        self.layout.node_unknown(n)
    }

    /// Adds `g` to the Jacobian at `(row, col)`; ground rows/cols are
    /// silently dropped.
    pub fn stamp(&mut self, row: Option<usize>, col: Option<usize>, g: f64) {
        if let (Some(r), Some(c)) = (row, col) {
            self.jac.add(r, c, g);
        }
    }

    /// Adds `f` to the residual row (and tracks the row scale for
    /// convergence checks).
    pub fn residual(&mut self, row: Option<usize>, f: f64) {
        if let Some(r) = row {
            self.resid[r] += f;
            self.row_scale[r] += f.abs();
        }
    }

    /// Stamps a through quantity `i` flowing from node `a` into the
    /// device and out at node `b`, with Jacobian entries
    /// `di_d[(unknown, ∂i/∂unknown)]`.
    pub fn through(&mut self, a: NodeId, b: NodeId, i: f64, di_d: &[(Option<usize>, f64)]) {
        let ra = self.node_unknown(a);
        let rb = self.node_unknown(b);
        self.residual(ra, i);
        self.residual(rb, -i);
        for &(col, g) in di_d {
            self.stamp(ra, col, g);
            if let Some(r) = rb {
                self.stamp(Some(r), col, -g);
            }
        }
    }

    /// Convenience: linear conductance `g` between `a` and `b`
    /// (current `g·(v_a − v_b)` from `a` to `b`).
    pub fn conductance(&mut self, a: NodeId, b: NodeId, g: f64) {
        let va = self.v(a);
        let vb = self.v(b);
        let ca = self.node_unknown(a);
        let cb = self.node_unknown(b);
        self.through(a, b, g * (va - vb), &[(ca, g), (cb, -g)]);
    }
}

/// Complex stamping context for the AC small-signal system `J·X = B`.
pub struct AcLoadCtx<'a> {
    /// Angular frequency [rad/s].
    pub omega: f64,
    layout: &'a UnknownLayout,
    /// DC operating-point solution.
    op: &'a [f64],
    jac: &'a mut dyn SystemMatrix<Complex64>,
    rhs: &'a mut [Complex64],
}

impl<'a> AcLoadCtx<'a> {
    /// Creates a context over zeroed complex storage.
    pub fn new(
        omega: f64,
        layout: &'a UnknownLayout,
        op: &'a [f64],
        jac: &'a mut dyn SystemMatrix<Complex64>,
        rhs: &'a mut [Complex64],
    ) -> Self {
        AcLoadCtx {
            omega,
            layout,
            op,
            jac,
            rhs,
        }
    }

    /// The unknown layout.
    pub fn layout(&self) -> &UnknownLayout {
        self.layout
    }

    /// Operating-point across value of a node.
    pub fn op_v(&self, n: NodeId) -> f64 {
        self.layout.node_value(self.op, n)
    }

    /// Operating-point value of an arbitrary unknown.
    pub fn op_unknown(&self, index: usize) -> f64 {
        self.op[index]
    }

    /// Unknown index of a node (`None` = ground).
    pub fn node_unknown(&self, n: NodeId) -> Option<usize> {
        self.layout.node_unknown(n)
    }

    /// Adds a complex admittance entry.
    pub fn stamp(&mut self, row: Option<usize>, col: Option<usize>, y: Complex64) {
        if let (Some(r), Some(c)) = (row, col) {
            self.jac.add(r, c, y);
        }
    }

    /// Adds to the right-hand side (independent source phasors).
    pub fn rhs(&mut self, row: Option<usize>, b: Complex64) {
        if let Some(r) = row {
            self.rhs[r] += b;
        }
    }

    /// Stamps the standard two-terminal admittance pattern.
    pub fn admittance(&mut self, a: NodeId, b: NodeId, y: Complex64) {
        let ra = self.node_unknown(a);
        let rb = self.node_unknown(b);
        self.stamp(ra, ra, y);
        self.stamp(rb, rb, y);
        self.stamp(ra, rb, -y);
        self.stamp(rb, ra, -y);
    }
}

/// Information passed to devices when a solution is accepted.
#[derive(Debug, Clone, Copy)]
pub struct CommitKind {
    /// `true` when committing the DC operating point (histories seed
    /// with zero time derivatives), `false` for a transient step.
    pub is_dc: bool,
    /// Step size (0 for DC).
    pub h: f64,
}

/// A circuit element.
///
/// Implementations stamp residuals/Jacobians in [`Device::load`]
/// (DC + transient) and complex admittances in [`Device::load_ac`].
///
/// `Send` is a supertrait: circuits are built on one thread and run
/// on another (batch workers, the `mems serve` artifact cache), so
/// every device must be transferable across threads.
pub trait Device: Send {
    /// Instance name (unique within a circuit).
    fn name(&self) -> &str;

    /// Connected nodes.
    fn pins(&self) -> &[NodeId];

    /// Number of internal unknowns (branch currents, HDL unknowns).
    fn n_internal(&self) -> usize {
        0
    }

    /// Receives the global index of the first internal unknown.
    fn set_internal_base(&mut self, _base: usize) {}

    /// Whether the device's residual depends nonlinearly on unknowns
    /// (informs the Newton loop's single-iteration shortcut).
    fn is_nonlinear(&self) -> bool {
        false
    }

    /// Stamps the DC/transient residual and Jacobian.
    ///
    /// # Errors
    ///
    /// Returns a device error when evaluation fails (the Newton loop
    /// treats this as a rejected iterate).
    fn load(&mut self, ctx: &mut LoadCtx<'_>) -> Result<()>;

    /// Stamps the AC system.
    ///
    /// # Errors
    ///
    /// Returns a device error when evaluation fails.
    fn load_ac(&mut self, ctx: &mut AcLoadCtx<'_>) -> Result<()>;

    /// Accepts the converged solution `x` (update histories).
    fn commit(&mut self, _x: &[f64], _layout: &UnknownLayout, _kind: CommitKind) {}

    /// Waveform breakpoints in `[0, t_end]` the transient engine must
    /// not step across.
    fn breakpoints(&self, _t_end: f64) -> Vec<f64> {
        Vec::new()
    }

    /// Typed-access hook for the in-place `set_param` path: callers
    /// (the netlist elaborator's circuit patcher) downcast to the
    /// concrete device type and call its parameter setters instead of
    /// re-elaborating the whole deck per `.STEP`/`.MC` point.
    ///
    /// Every setter reached through this hook must leave the device
    /// indistinguishable from a freshly constructed one — value *and*
    /// integration history — so a patched circuit is bit-identical to
    /// a rebuilt one. The default `None` marks the device as
    /// unpatchable, making callers fall back to re-elaboration.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}
