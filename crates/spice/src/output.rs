//! Analysis results: operating points, transient waveforms, AC sweeps;
//! CSV export and terminal ASCII plotting.

use crate::circuit::{NodeId, UnknownLayout};
use mems_numerics::quad::cumtrapz;
use mems_numerics::Complex64;
use std::fmt::Write as _;

/// A converged DC operating point.
#[derive(Debug, Clone)]
pub struct OpSolution {
    /// Unknown values.
    pub x: Vec<f64>,
    /// Unknown layout (labels, node mapping).
    pub layout: UnknownLayout,
    /// Newton iterations used.
    pub iterations: usize,
}

impl OpSolution {
    /// Across value of a node.
    pub fn v(&self, n: NodeId) -> f64 {
        self.layout.node_value(&self.x, n)
    }

    /// Value of an unknown by label (e.g. `v(out)` or `i(v1,0)`).
    pub fn by_label(&self, label: &str) -> Option<f64> {
        self.layout
            .labels
            .iter()
            .position(|l| l == label)
            .map(|i| self.x[i])
    }
}

/// A transient simulation result: one row per accepted time point.
#[derive(Debug, Clone)]
pub struct TranResult {
    /// Accepted time points.
    pub time: Vec<f64>,
    /// Unknown labels (column names).
    pub labels: Vec<String>,
    /// Sample rows (`samples[i][k]` = unknown `k` at `time[i]`).
    pub samples: Vec<Vec<f64>>,
    /// Total Newton iterations across all steps.
    pub total_newton_iterations: usize,
    /// Number of rejected steps.
    pub rejected_steps: usize,
}

impl TranResult {
    /// Column index of a label.
    pub fn column(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }

    /// Extracts one column as a trace.
    pub fn trace(&self, label: &str) -> Option<Vec<f64>> {
        let c = self.column(label)?;
        Some(self.samples.iter().map(|row| row[c]).collect())
    }

    /// Node trace by node name (label `v(name)`).
    pub fn node_trace(&self, node_name: &str) -> Option<Vec<f64>> {
        self.trace(&format!("v({node_name})"))
    }

    /// Integrates a trace over time (trapezoid), e.g. velocity →
    /// displacement, as the paper plots ("displacements (integrals of
    /// velocities)").
    pub fn integrated_trace(&self, label: &str, y0: f64) -> Option<Vec<f64>> {
        let y = self.trace(label)?;
        Some(cumtrapz(&self.time, &y, y0))
    }

    /// Resamples a trace onto a uniform grid (linear interpolation) —
    /// useful when comparing adaptive-step runs.
    pub fn resample(&self, label: &str, n: usize) -> Option<(Vec<f64>, Vec<f64>)> {
        let y = self.trace(label)?;
        if self.time.len() < 2 || n < 2 {
            return None;
        }
        let t0 = *self.time.first().expect("nonempty");
        let t1 = *self.time.last().expect("nonempty");
        let mut ts = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        let mut idx = 0usize;
        for i in 0..n {
            let t = t0 + (t1 - t0) * (i as f64) / ((n - 1) as f64);
            while idx + 2 < self.time.len() && self.time[idx + 1] < t {
                idx += 1;
            }
            let (ta, tb) = (self.time[idx], self.time[idx + 1]);
            let (ya, yb) = (y[idx], y[idx + 1]);
            let frac = if tb > ta { (t - ta) / (tb - ta) } else { 0.0 };
            ts.push(t);
            ys.push(ya + (yb - ya) * frac.clamp(0.0, 1.0));
        }
        Some((ts, ys))
    }

    /// Renders selected columns as CSV (time first).
    pub fn to_csv(&self, labels: &[&str]) -> String {
        let mut out = String::from("time");
        let cols: Vec<Option<usize>> = labels.iter().map(|l| self.column(l)).collect();
        for l in labels {
            out.push(',');
            out.push_str(l);
        }
        out.push('\n');
        for (i, t) in self.time.iter().enumerate() {
            let _ = write!(out, "{t:.9e}");
            for c in &cols {
                match c {
                    Some(c) => {
                        let _ = write!(out, ",{:.9e}", self.samples[i][*c]);
                    }
                    None => out.push_str(",nan"),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// An AC sweep result.
#[derive(Debug, Clone)]
pub struct AcResult {
    /// Sweep frequencies [Hz].
    pub freqs: Vec<f64>,
    /// Unknown labels.
    pub labels: Vec<String>,
    /// `data[i][k]` = phasor of unknown `k` at `freqs[i]`.
    pub data: Vec<Vec<Complex64>>,
}

impl AcResult {
    /// Column index of a label.
    pub fn column(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }

    /// Magnitude trace of one unknown.
    pub fn magnitude(&self, label: &str) -> Option<Vec<f64>> {
        let c = self.column(label)?;
        Some(self.data.iter().map(|row| row[c].abs()).collect())
    }

    /// Phase trace [degrees].
    pub fn phase_deg(&self, label: &str) -> Option<Vec<f64>> {
        let c = self.column(label)?;
        Some(
            self.data
                .iter()
                .map(|row| row[c].arg().to_degrees())
                .collect(),
        )
    }

    /// Complex trace of one unknown.
    pub fn phasors(&self, label: &str) -> Option<Vec<Complex64>> {
        let c = self.column(label)?;
        Some(self.data.iter().map(|row| row[c]).collect())
    }
}

/// Renders traces as a terminal ASCII plot (rows × cols characters).
///
/// Each series gets a glyph; series are drawn in order, later ones
/// overwrite. Returns a multi-line string.
pub fn ascii_plot(
    title: &str,
    xs: &[f64],
    series: &[(&str, &[f64])],
    rows: usize,
    cols: usize,
) -> String {
    let glyphs = ['*', '+', 'o', 'x', '#', '@'];
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, ys) in series {
        for &y in *ys {
            lo = lo.min(y);
            hi = hi.max(y);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return format!("{title}: <no data>\n");
    }
    if hi - lo < 1e-300 {
        hi = lo + 1.0;
    }
    let (x0, x1) = (
        xs.first().copied().unwrap_or(0.0),
        xs.last().copied().unwrap_or(1.0),
    );
    let mut grid = vec![vec![' '; cols]; rows];
    for (si, (_, ys)) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for (x, y) in xs.iter().zip(*ys) {
            let cx = if x1 > x0 {
                ((x - x0) / (x1 - x0) * (cols as f64 - 1.0)).round() as usize
            } else {
                0
            };
            let cy = ((hi - y) / (hi - lo) * (rows as f64 - 1.0)).round() as usize;
            grid[cy.min(rows - 1)][cx.min(cols - 1)] = glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {name}", glyphs[i % glyphs.len()]))
        .collect();
    let _ = writeln!(out, "[{}]  y: {lo:.3e} .. {hi:.3e}", legend.join("  "));
    for row in grid {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "|{line}|");
    }
    let _ = writeln!(out, "x: {x0:.3e} .. {x1:.3e}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::devices::passive::Resistor;

    fn layout_for_test() -> UnknownLayout {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let g = c.ground();
        c.add(Resistor::new("r1", a, g, 1.0)).unwrap();
        c.layout()
    }

    #[test]
    fn op_lookup() {
        let layout = layout_for_test();
        let op = OpSolution {
            x: vec![5.0],
            layout,
            iterations: 2,
        };
        assert_eq!(op.by_label("v(a)"), Some(5.0));
        assert_eq!(op.by_label("zz"), None);
    }

    #[test]
    fn tran_traces_and_integration() {
        let r = TranResult {
            time: vec![0.0, 1.0, 2.0],
            labels: vec!["v(a)".into()],
            samples: vec![vec![0.0], vec![1.0], vec![2.0]],
            total_newton_iterations: 3,
            rejected_steps: 0,
        };
        assert_eq!(r.trace("v(a)").unwrap(), vec![0.0, 1.0, 2.0]);
        assert_eq!(r.node_trace("a").unwrap(), vec![0.0, 1.0, 2.0]);
        // ∫ t dt = t²/2 → [0, 0.5, 2.0]
        assert_eq!(
            r.integrated_trace("v(a)", 0.0).unwrap(),
            vec![0.0, 0.5, 2.0]
        );
        assert!(r.trace("nope").is_none());
    }

    #[test]
    fn resample_linear() {
        let r = TranResult {
            time: vec![0.0, 1.0, 3.0],
            labels: vec!["v(a)".into()],
            samples: vec![vec![0.0], vec![2.0], vec![6.0]],
            total_newton_iterations: 0,
            rejected_steps: 0,
        };
        let (ts, ys) = r.resample("v(a)", 4).unwrap();
        assert_eq!(ts, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(ys, vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = TranResult {
            time: vec![0.0, 1e-3],
            labels: vec!["v(a)".into(), "v(b)".into()],
            samples: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            total_newton_iterations: 0,
            rejected_steps: 0,
        };
        let csv = r.to_csv(&["v(b)"]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,v(b)");
        assert!(lines[1].starts_with("0.0"));
        assert!(lines[1].ends_with("e0") || lines[1].contains("2.0"));
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn ac_mag_phase() {
        let layoutless = AcResult {
            freqs: vec![1.0],
            labels: vec!["v(a)".into()],
            data: vec![vec![Complex64::new(0.0, 2.0)]],
        };
        assert_eq!(layoutless.magnitude("v(a)").unwrap(), vec![2.0]);
        assert!((layoutless.phase_deg("v(a)").unwrap()[0] - 90.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_plot_renders() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x / 8.0).sin()).collect();
        let plot = ascii_plot("test", &xs, &[("sin", &ys)], 10, 60);
        assert!(plot.contains("test"));
        assert!(plot.contains('*'));
        assert!(plot.lines().count() >= 12);
    }
}
