//! Error types of the simulator.

use std::fmt;

/// Errors produced while building circuits or running analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// Circuit construction problem (bad nodes, duplicate names, …).
    Build(String),
    /// The Newton iteration failed to converge.
    NoConvergence {
        /// Which analysis failed.
        analysis: String,
        /// Detail (iteration counts, worst unknown, time point).
        detail: String,
    },
    /// The linear solver failed (singular matrix — usually a floating
    /// node or a short loop).
    Singular(String),
    /// A device reported an evaluation failure.
    Device {
        /// Device instance name.
        device: String,
        /// Failure detail.
        detail: String,
    },
    /// The transient engine gave up (step underflow).
    StepUnderflow {
        /// Time at which the step size collapsed.
        time: f64,
        /// Step size reached.
        h: f64,
    },
    /// Invalid analysis options.
    BadOptions(String),
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::Build(m) => write!(f, "circuit error: {m}"),
            SpiceError::NoConvergence { analysis, detail } => {
                write!(f, "{analysis} failed to converge: {detail}")
            }
            SpiceError::Singular(m) => write!(f, "singular system: {m}"),
            SpiceError::Device { device, detail } => {
                write!(f, "device `{device}`: {detail}")
            }
            SpiceError::StepUnderflow { time, h } => {
                write!(f, "time step underflow at t = {time:.6e} (h = {h:.3e})")
            }
            SpiceError::BadOptions(m) => write!(f, "bad options: {m}"),
        }
    }
}

impl std::error::Error for SpiceError {}

impl From<mems_numerics::NumericsError> for SpiceError {
    fn from(e: mems_numerics::NumericsError) -> Self {
        SpiceError::Singular(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SpiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SpiceError::NoConvergence {
            analysis: "dc operating point".into(),
            detail: "50 iterations".into(),
        };
        assert!(e.to_string().contains("dc operating point"));
        let e = SpiceError::StepUnderflow {
            time: 1e-3,
            h: 1e-18,
        };
        assert!(e.to_string().contains("underflow"));
        let e: SpiceError = mems_numerics::NumericsError::Singular { index: 3 }.into();
        assert!(matches!(e, SpiceError::Singular(_)));
    }
}
