//! Circuit representation: typed nodes (natures), devices, and the
//! unknown-vector layout shared by every analysis.
//!
//! Unknown ordering: all non-ground nodes first (in creation order),
//! then each device's internal unknowns (branch currents, HDL
//! `UNKNOWN` objects) in device order.

use crate::device::Device;
use crate::error::{Result, SpiceError};
use mems_hdl::Nature;
use std::collections::HashMap;

/// Handle to a circuit node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The global reference node (shared by every nature).
    pub const GROUND: NodeId = NodeId(0);

    /// Returns `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// What kind of scalar an unknown represents — used for per-kind
/// convergence tolerances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownKind {
    /// Across value of a node of the given nature.
    NodeAcross(Nature),
    /// A device-internal unknown (branch current/force, HDL unknown).
    Internal,
}

/// A circuit: nodes plus devices.
pub struct Circuit {
    node_names: Vec<String>,
    node_natures: Vec<Nature>,
    name_to_node: HashMap<String, NodeId>,
    devices: Vec<Box<dyn Device>>,
    device_names: HashMap<String, usize>,
}

impl std::fmt::Debug for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Circuit")
            .field("nodes", &self.node_names)
            .field("devices", &self.devices.len())
            .finish()
    }
}

impl Default for Circuit {
    fn default() -> Self {
        Self::new()
    }
}

impl Circuit {
    /// Creates an empty circuit with a ground node named `0`.
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: vec!["0".to_string()],
            node_natures: vec![Nature::Electrical],
            name_to_node: HashMap::new(),
            devices: Vec::new(),
            device_names: HashMap::new(),
        };
        c.name_to_node.insert("0".into(), NodeId::GROUND);
        c.name_to_node.insert("gnd".into(), NodeId::GROUND);
        c
    }

    /// The ground node.
    pub fn ground(&self) -> NodeId {
        NodeId::GROUND
    }

    /// Creates (or returns) a named node of the given nature.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Build`] when the name exists with a
    /// different nature.
    pub fn node(&mut self, name: &str, nature: Nature) -> Result<NodeId> {
        if let Some(&id) = self.name_to_node.get(name) {
            if !id.is_ground() && self.node_natures[id.0] != nature {
                return Err(SpiceError::Build(format!(
                    "node `{name}` already exists with nature {}",
                    self.node_natures[id.0]
                )));
            }
            return Ok(id);
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.node_natures.push(nature);
        self.name_to_node.insert(name.to_string(), id);
        Ok(id)
    }

    /// Shorthand for an electrical node.
    pub fn enode(&mut self, name: &str) -> Result<NodeId> {
        self.node(name, Nature::Electrical)
    }

    /// Shorthand for a translational mechanical node.
    pub fn mnode(&mut self, name: &str) -> Result<NodeId> {
        self.node(name, Nature::MechanicalTranslation)
    }

    /// Looks up a node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.name_to_node.get(name).copied()
    }

    /// Node name.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Node nature (ground reports electrical).
    pub fn node_nature(&self, id: NodeId) -> Nature {
        self.node_natures[id.0]
    }

    /// Number of nodes including ground.
    pub fn n_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Adds a device.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Build`] for duplicate instance names or
    /// pins referencing other circuits' nodes.
    pub fn add(&mut self, device: impl Device + 'static) -> Result<()> {
        self.add_boxed(Box::new(device))
    }

    /// Adds an already-boxed device.
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::add`].
    pub fn add_boxed(&mut self, device: Box<dyn Device>) -> Result<()> {
        let name = device.name().to_string();
        if self.device_names.contains_key(&name) {
            return Err(SpiceError::Build(format!("duplicate device name `{name}`")));
        }
        for pin in device.pins() {
            if pin.0 >= self.node_names.len() {
                return Err(SpiceError::Build(format!(
                    "device `{name}` references unknown node id {}",
                    pin.0
                )));
            }
        }
        self.device_names.insert(name, self.devices.len());
        self.devices.push(device);
        Ok(())
    }

    /// Immutable device list.
    pub fn devices(&self) -> &[Box<dyn Device>] {
        &self.devices
    }

    /// Mutable device list (used by the analyses).
    pub fn devices_mut(&mut self) -> &mut [Box<dyn Device>] {
        &mut self.devices
    }

    /// Finds a device index by instance name.
    pub fn device_index(&self, name: &str) -> Option<usize> {
        self.device_names.get(name).copied()
    }

    /// Computes the unknown layout, assigning internal-unknown bases
    /// to devices. Called by every analysis before solving.
    pub fn layout(&mut self) -> UnknownLayout {
        let n_nodes = self.node_names.len();
        let mut kinds: Vec<UnknownKind> = Vec::with_capacity(n_nodes);
        for i in 1..n_nodes {
            kinds.push(UnknownKind::NodeAcross(self.node_natures[i]));
        }
        let mut labels: Vec<String> = (1..n_nodes)
            .map(|i| format!("v({})", self.node_names[i]))
            .collect();
        let mut next = n_nodes - 1;
        for dev in &mut self.devices {
            let n = dev.n_internal();
            if n > 0 {
                dev.set_internal_base(next);
                for k in 0..n {
                    labels.push(format!("i({},{k})", dev.name()));
                    kinds.push(UnknownKind::Internal);
                }
                next += n;
            }
        }
        UnknownLayout {
            n_nodes,
            n_unknowns: next,
            kinds,
            labels,
        }
    }
}

/// The unknown-vector layout of a circuit.
#[derive(Debug, Clone)]
pub struct UnknownLayout {
    /// Total node count including ground.
    pub n_nodes: usize,
    /// Total unknown count (nodes − 1 + internals).
    pub n_unknowns: usize,
    /// Kind of each unknown (tolerance selection).
    pub kinds: Vec<UnknownKind>,
    /// Human-readable label per unknown (`v(name)` / `i(dev,k)`).
    pub labels: Vec<String>,
}

impl UnknownLayout {
    /// Unknown index of a node (`None` for ground).
    pub fn node_unknown(&self, n: NodeId) -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.0 - 1)
        }
    }

    /// Node across value from a solution vector (0 for ground).
    pub fn node_value(&self, x: &[f64], n: NodeId) -> f64 {
        match self.node_unknown(n) {
            Some(i) => x[i],
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::passive::Resistor;

    #[test]
    fn circuits_and_workspaces_cross_threads() {
        // The batch engine and the `mems serve` artifact cache both
        // hand built circuits (and their cached symbolic
        // factorizations) to worker threads. Keep that a compile-time
        // guarantee, not an accident of today's field types.
        fn assert_send<T: Send>() {}
        assert_send::<Circuit>();
        assert_send::<crate::solver::Workspace>();
        assert_send::<Box<dyn crate::device::Device>>();
    }

    #[test]
    fn nodes_are_interned_by_name() {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let a2 = c.enode("a").unwrap();
        assert_eq!(a, a2);
        assert_eq!(c.n_nodes(), 2);
        assert_eq!(c.node_name(a), "a");
        assert!(c.find_node("gnd").unwrap().is_ground());
    }

    #[test]
    fn nature_conflicts_are_rejected() {
        let mut c = Circuit::new();
        c.enode("x").unwrap();
        assert!(c.mnode("x").is_err());
    }

    #[test]
    fn layout_assigns_unknowns() {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let b = c.mnode("b").unwrap();
        let g = c.ground();
        c.add(Resistor::new("r1", a, g, 1e3)).unwrap();
        let layout = c.layout();
        assert_eq!(layout.n_unknowns, 2);
        assert_eq!(layout.node_unknown(a), Some(0));
        assert_eq!(layout.node_unknown(b), Some(1));
        assert_eq!(layout.node_unknown(g), None);
        assert_eq!(layout.kinds[0], UnknownKind::NodeAcross(Nature::Electrical));
        assert_eq!(
            layout.kinds[1],
            UnknownKind::NodeAcross(Nature::MechanicalTranslation)
        );
        assert_eq!(layout.labels[0], "v(a)");
        assert_eq!(layout.node_value(&[3.0, 4.0], a), 3.0);
        assert_eq!(layout.node_value(&[3.0, 4.0], g), 0.0);
    }

    #[test]
    fn duplicate_device_names_rejected() {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let g = c.ground();
        c.add(Resistor::new("r1", a, g, 1.0)).unwrap();
        assert!(c.add(Resistor::new("r1", a, g, 2.0)).is_err());
        assert_eq!(c.device_index("r1"), Some(0));
        assert!(c.device_index("zz").is_none());
    }
}
