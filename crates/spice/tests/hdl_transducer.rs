//! End-to-end: the paper's Listing 1 transducer hosted as a
//! behavioral device, coupled to the Fig. 3 mechanical resonator.

use mems_hdl::model::HdlModel;
use mems_numerics::rootfind::brent;
use mems_spice::analysis::transient::{run, TranOptions};
use mems_spice::circuit::Circuit;
use mems_spice::devices::{Damper, HdlDevice, Mass, Spring, VoltageSource};
use mems_spice::solver::SimOptions;
use mems_spice::wave::Waveform;

const LISTING1: &str = r#"
ENTITY eletran IS
 GENERIC (A, d, er : analog);
 PIN (a, b : electrical; c, d : mechanical1);
END ENTITY eletran;
ARCHITECTURE a OF eletran IS
VARIABLE e0, x : analog;
STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, d].tv;
      x := integ(S);
      [a, b].i %= e0*er*A/(d + x)*ddt(V);
      [c, d].f %= -e0*er*A*V*V/(2.0*(d+x)*(d+x));
  END RELATION;
END ARCHITECTURE a;
"#;

const E0: f64 = 8.8542e-12;
const AREA: f64 = 1.0e-4;
const GAP: f64 = 0.15e-3;
const MASS: f64 = 1.0e-4;
const K: f64 = 200.0;
const ALPHA: f64 = 40e-3;

/// Builds the Fig. 3/4 system: pulse-driven transducer + resonator.
fn build_system(level: f64) -> Circuit {
    let model = HdlModel::compile(LISTING1, "eletran", None).unwrap();
    let mut ckt = Circuit::new();
    let e = ckt.enode("drive").unwrap();
    let vel = ckt.mnode("vel").unwrap();
    let gnd = ckt.ground();
    ckt.add(VoltageSource::new(
        "vsrc",
        e,
        gnd,
        Waveform::Pulse {
            v1: 0.0,
            v2: level,
            delay: 2e-3,
            rise: 5e-3,
            fall: 5e-3,
            width: 120e-3,
            period: 0.0,
        },
    ))
    .unwrap();
    ckt.add(
        HdlDevice::new(
            "xducer",
            &model,
            &[("a", AREA), ("d", GAP), ("er", 1.0)],
            &[e, gnd, vel, gnd],
        )
        .unwrap(),
    )
    .unwrap();
    ckt.add(Mass::new("m1", vel, gnd, MASS)).unwrap();
    ckt.add(Spring::new("k1", vel, gnd, K)).unwrap();
    ckt.add(Damper::new("d1", vel, gnd, ALPHA)).unwrap();
    ckt
}

/// Static solution of k·x = ε0·A·V²/(2(d+x)²).
fn static_displacement(v: f64) -> f64 {
    brent(
        |x| K * x - E0 * AREA * v * v / (2.0 * (GAP + x) * (GAP + x)),
        0.0,
        GAP,
        1e-20,
    )
    .unwrap()
}

#[test]
fn table4_static_displacement_is_1e_minus_8() {
    // The paper's Table 4: x0 = 1.0e-8 m at v0 = 10 V.
    let x0 = static_displacement(10.0);
    assert!(
        (x0 - 1.0e-8).abs() < 2e-10,
        "x0 = {x0:e}, paper says 1.0e-8"
    );
}

#[test]
fn transducer_resonator_settles_at_static_deflection() {
    let mut ckt = build_system(10.0);
    let res = run(&mut ckt, &TranOptions::new(90e-3), &SimOptions::default()).unwrap();
    // Displacement read two ways: spring force / k, and ∫velocity.
    let x_spring: Vec<f64> = res
        .trace("i(k1,0)")
        .unwrap()
        .iter()
        .map(|f| f / K)
        .collect();
    let x_integrated = res.integrated_trace("v(vel)", 0.0).unwrap();
    let expect = static_displacement(10.0);
    let settled = mems_numerics::stats::settled_value(&x_spring, 0.05);
    assert!(
        (settled - expect).abs() < expect * 0.02,
        "settled {settled:e} vs static {expect:e}"
    );
    // Both displacement readouts agree.
    let diff = mems_numerics::stats::max_abs_diff(&x_spring, &x_integrated);
    assert!(diff < expect * 0.05, "spring vs integral diverge: {diff:e}");
}

#[test]
fn response_rings_at_resonator_frequency() {
    let mut ckt = build_system(10.0);
    let res = run(&mut ckt, &TranOptions::new(60e-3), &SimOptions::default()).unwrap();
    let x: Vec<f64> = res
        .trace("i(k1,0)")
        .unwrap()
        .iter()
        .map(|f| f / K)
        .collect();
    // Free damped ringing lives after the ramp (t > 7 ms); the forced
    // ramp response would bias the crossing estimate.
    let start = res
        .time
        .iter()
        .position(|t| *t > 7e-3)
        .expect("sim reaches 7 ms");
    let f_est = mems_numerics::stats::crossing_frequency(&res.time[start..], &x[start..])
        .expect("under-damped response oscillates");
    let wn = (K / MASS).sqrt();
    let zeta = ALPHA / (2.0 * (K * MASS).sqrt());
    let fd = wn * (1.0 - zeta * zeta).sqrt() / (2.0 * std::f64::consts::PI);
    assert!(
        (f_est - fd).abs() < fd * 0.08,
        "rings at {f_est} Hz, expected ≈{fd} Hz"
    );
}

#[test]
fn force_scales_quadratically_with_voltage() {
    // Settled displacement ratios ≈ V² ratios (small x ≪ d).
    let mut settled = Vec::new();
    for level in [5.0, 10.0, 15.0] {
        let mut ckt = build_system(level);
        let res = run(&mut ckt, &TranOptions::new(90e-3), &SimOptions::default()).unwrap();
        let x: Vec<f64> = res
            .trace("i(k1,0)")
            .unwrap()
            .iter()
            .map(|f| f / K)
            .collect();
        settled.push(mems_numerics::stats::settled_value(&x, 0.05));
    }
    let r105 = settled[1] / settled[0];
    let r1510 = settled[2] / settled[1];
    assert!((r105 - 4.0).abs() < 0.1, "x(10)/x(5) = {r105}");
    assert!((r1510 - 2.25).abs() < 0.1, "x(15)/x(10) = {r1510}");
}

#[test]
fn electrical_side_draws_displacement_current() {
    // During the rise the source must supply i ≈ C·dV/dt ≈ 5.9 pF × 2 kV/s.
    let mut ckt = build_system(10.0);
    let res = run(&mut ckt, &TranOptions::new(12e-3), &SimOptions::default()).unwrap();
    let i_src = res.trace("i(vsrc,0)").unwrap();
    // Mid-rise sample (t ≈ 4.5 ms): dV/dt = 10/5e-3 = 2000 V/s.
    let mid = res
        .time
        .iter()
        .position(|t| *t > 4.5e-3)
        .expect("sim reaches 4.5 ms");
    let c0 = E0 * AREA / GAP;
    let expect = -c0 * 2000.0; // source current convention: into node
    assert!(
        (i_src[mid] - expect).abs() < expect.abs() * 0.15,
        "i = {} vs {expect}",
        i_src[mid]
    );
}
