//! Transient-engine quality tests: integration-method convergence
//! order, energy behaviour of the methods, and adaptive-step
//! efficiency — the numerical backbone behind the Fig. 5 curves.

use mems_numerics::ode::IntegrationMethod;
use mems_spice::analysis::transient::{run, TranOptions};
use mems_spice::circuit::Circuit;
use mems_spice::devices::{Capacitor, Inductor, Resistor, VoltageSource};
use mems_spice::solver::SimOptions;
use mems_spice::wave::Waveform;

/// Series RC driven by a sine; v_C has the closed form of a driven
/// first-order system.
fn rc_error(method: IntegrationMethod, h: f64) -> f64 {
    let (r, cap, f0) = (1e3, 1e-6, 50.0);
    let mut ckt = Circuit::new();
    let a = ckt.enode("a").unwrap();
    let b = ckt.enode("b").unwrap();
    let g = ckt.ground();
    ckt.add(VoltageSource::new(
        "v1",
        a,
        g,
        Waveform::Sin {
            offset: 0.0,
            ampl: 1.0,
            freq: f0,
            delay: 0.0,
            theta: 0.0,
        },
    ))
    .unwrap();
    ckt.add(Resistor::new("r1", a, b, r)).unwrap();
    ckt.add(Capacitor::new("c1", b, g, cap)).unwrap();
    let t_stop = 40e-3;
    let opts = TranOptions {
        method,
        ..TranOptions::fixed_step(t_stop, h)
    };
    let res = run(&mut ckt, &opts, &SimOptions::default()).unwrap();
    let vb = res.node_trace("b").unwrap();
    // Closed form: with τ = RC, ω = 2πf0,
    // v_C = [sin(ωt) − ωτ·cos(ωt) + ωτ·e^(−t/τ)] / (1 + (ωτ)²).
    let tau = r * cap;
    let w = 2.0 * std::f64::consts::PI * f0;
    let wt = w * tau;
    let exact =
        |t: f64| ((w * t).sin() - wt * (w * t).cos() + wt * (-t / tau).exp()) / (1.0 + wt * wt);
    // Measure in periodic steady state (t > 10τ): the first step is a
    // backward-Euler restart whose O(h) derivative error decays with
    // the circuit's own time constant and would otherwise mask the
    // method's asymptotic order.
    res.time
        .iter()
        .zip(&vb)
        .filter(|(t, _)| **t > 10.0 * tau)
        .map(|(t, v)| (v - exact(*t)).abs())
        .fold(0.0, f64::max)
}

#[test]
fn backward_euler_is_first_order() {
    let e1 = rc_error(IntegrationMethod::BackwardEuler, 40e-6);
    let e2 = rc_error(IntegrationMethod::BackwardEuler, 20e-6);
    let order = (e1 / e2).log2();
    assert!(
        (order - 1.0).abs() < 0.25,
        "BE order {order:.2} (errors {e1:.3e}, {e2:.3e})"
    );
}

#[test]
fn trapezoidal_is_second_order() {
    let e1 = rc_error(IntegrationMethod::Trapezoidal, 80e-6);
    let e2 = rc_error(IntegrationMethod::Trapezoidal, 40e-6);
    let order = (e1 / e2).log2();
    assert!(
        (order - 2.0).abs() < 0.35,
        "TR order {order:.2} (errors {e1:.3e}, {e2:.3e})"
    );
}

#[test]
fn gear2_is_second_order() {
    let e1 = rc_error(IntegrationMethod::Gear2, 80e-6);
    let e2 = rc_error(IntegrationMethod::Gear2, 40e-6);
    let order = (e1 / e2).log2();
    assert!(
        (order - 2.0).abs() < 0.4,
        "Gear2 order {order:.2} (errors {e1:.3e}, {e2:.3e})"
    );
}

#[test]
fn trapezoidal_preserves_lc_oscillation_amplitude() {
    // Undriven LC tank started from a charged capacitor: TR is
    // A-stable and non-dissipative; BE damps artificially. Kick the
    // tank with a fast PWL edge and compare late-time amplitudes.
    let build = || {
        let mut ckt = Circuit::new();
        let a = ckt.enode("a").unwrap();
        let b = ckt.enode("b").unwrap();
        let g = ckt.ground();
        ckt.add(VoltageSource::new(
            "v1",
            a,
            g,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-6, 1.0)]),
        ))
        .unwrap();
        // Series RLC, v_C settles to 1 V with high-Q ringing:
        // Q = (1/R)·√(L/C) ≈ 63, envelope τ = 2L/R = 4 ms.
        let m = ckt.enode("m").unwrap();
        ckt.add(Resistor::new("r1", a, m, 0.5)).unwrap();
        ckt.add(Inductor::new("l1", m, b, 1e-3)).unwrap();
        ckt.add(Capacitor::new("c1", b, g, 1e-6)).unwrap();
        ckt
    };
    let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-3f64 * 1e-6).sqrt());
    let t_stop = 15.0 / f0;
    let h = 1.0 / (f0 * 100.0);
    let run_with = |method| {
        let mut ckt = build();
        let opts = TranOptions {
            method,
            ..TranOptions::fixed_step(t_stop, h)
        };
        let res = run(&mut ckt, &opts, &SimOptions::default()).unwrap();
        let vb = res.node_trace("b").unwrap();
        let tail = &vb[vb.len() * 3 / 4..];
        tail.iter().fold(0.0f64, |m, v| m.max((v - 1.0).abs()))
    };
    let amp_tr = run_with(IntegrationMethod::Trapezoidal);
    let amp_be = run_with(IntegrationMethod::BackwardEuler);
    // Physical decay over the window is mild; BE's numerical
    // dissipation at 100 steps/period must damp visibly more than TR.
    assert!(
        amp_be < amp_tr * 0.8,
        "BE {amp_be:.4e} not more damped than TR {amp_tr:.4e}"
    );
}

#[test]
fn adaptive_uses_fewer_steps_than_fixed_for_same_accuracy() {
    let (r, cap) = (1e3, 1e-6);
    let build = || {
        let mut ckt = Circuit::new();
        let a = ckt.enode("a").unwrap();
        let b = ckt.enode("b").unwrap();
        let g = ckt.ground();
        ckt.add(VoltageSource::new(
            "v1",
            a,
            g,
            Waveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 1e-3,
                rise: 10e-6,
                fall: 10e-6,
                width: 5e-3,
                period: 0.0,
            },
        ))
        .unwrap();
        ckt.add(Resistor::new("r1", a, b, r)).unwrap();
        ckt.add(Capacitor::new("c1", b, g, cap)).unwrap();
        ckt
    };
    let sim = SimOptions::default();
    let mut c1 = build();
    let adaptive = run(&mut c1, &TranOptions::new(20e-3), &sim).unwrap();
    let mut c2 = build();
    let fixed = run(&mut c2, &TranOptions::fixed_step(20e-3, 5e-6), &sim).unwrap();
    // Same final value (both fully settled after the pulse).
    let va = adaptive.node_trace("b").unwrap();
    let vf = fixed.node_trace("b").unwrap();
    assert!(
        (va.last().unwrap() - vf.last().unwrap()).abs() < 1e-3,
        "final values differ: {} vs {}",
        va.last().unwrap(),
        vf.last().unwrap()
    );
    // The adaptive run concentrates steps at the pulse edges and
    // stretches them on the flats: fewer points than the uniformly
    // fine fixed run (4000 steps) at matching accuracy.
    assert!(
        (adaptive.time.len() as f64) < 0.75 * fixed.time.len() as f64,
        "adaptive {} vs fixed {}",
        adaptive.time.len(),
        fixed.time.len()
    );
}
