//! Multi-domain tests: Table 1's non-electrical natures flowing
//! through the same MNA core — thermal RC cooling, hydraulic
//! resistance networks, and a rotational inertia — plus an HDL
//! behavioral device bridging two non-electrical domains.

use mems_hdl::model::HdlModel;
use mems_hdl::Nature;
use mems_spice::analysis::transient::{run, TranOptions};
use mems_spice::circuit::Circuit;
use mems_spice::devices::{Capacitor, CurrentSource, HdlDevice, Resistor, VoltageSource};
use mems_spice::solver::SimOptions;
use mems_spice::wave::Waveform;

#[test]
fn thermal_rc_cools_exponentially() {
    // Thermal nature: across = temperature, through = heat flow.
    // A heated mass (thermal capacitance 0.5 J/K) cooling through a
    // thermal resistance 20 K/W: τ = 10 s.
    let mut ckt = Circuit::new();
    let t_node = ckt.node("chip", Nature::Thermal).unwrap();
    let gnd = ckt.ground();
    ckt.add(Capacitor::new("cth", t_node, gnd, 0.5)).unwrap();
    ckt.add(Resistor::new("rth", t_node, gnd, 20.0)).unwrap();
    // Heat pulse: 1 W for 2 s establishes ~ the step response, then
    // free cooling.
    ckt.add(CurrentSource::new(
        "heater",
        gnd,
        t_node,
        Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 1e-3,
            fall: 1e-3,
            width: 30.0,
            period: 0.0,
        },
    ))
    .unwrap();
    let res = run(&mut ckt, &TranOptions::new(30.0), &SimOptions::default()).unwrap();
    let temp = res.node_trace("chip").unwrap();
    // Steady state: ΔT = P·Rth = 20 K, approached with τ = 10 s.
    let t_end = *res.time.last().unwrap();
    let expect = 20.0 * (1.0 - (-t_end / 10.0).exp());
    let got = *temp.last().unwrap();
    assert!((got - expect).abs() < 0.2, "T = {got} vs {expect}");
}

#[test]
fn hydraulic_divider_balances_flows() {
    // Hydraulic nature: across = pressure, through = volume flow.
    // A pressure source across two flow restrictions in series.
    let mut ckt = Circuit::new();
    let p_in = ckt.node("inlet", Nature::Hydraulic).unwrap();
    let p_mid = ckt.node("junction", Nature::Hydraulic).unwrap();
    let gnd = ckt.ground();
    ckt.add(VoltageSource::new("pump", p_in, gnd, Waveform::Dc(1e5)))
        .unwrap(); // 1 bar
    ckt.add(Resistor::new("pipe1", p_in, p_mid, 1e6)).unwrap(); // Pa·s/m³
    ckt.add(Resistor::new("pipe2", p_mid, gnd, 3e6)).unwrap();
    let op = mems_spice::analysis::dcop::solve(&mut ckt, &SimOptions::default()).unwrap();
    // Pressure divider: 3/4 of a bar at the junction.
    assert!((op.v(p_mid) - 7.5e4).abs() < 1.0, "p = {}", op.v(p_mid));
    // Flow through the pump: 1e5 / 4e6 = 0.025 m³/s.
    let q = op.by_label("i(pump,0)").unwrap();
    assert!((q + 2.5e-2).abs() < 1e-6, "flow {q}");
}

#[test]
fn rotational_inertia_spins_up() {
    // Rotational nature: across = angular velocity, through = torque.
    // Inertia J = 1e-6 kg·m² driven by 1e-3 N·m against a viscous
    // bearing 1e-4 N·m·s: final ω = 10 rad/s, τ = J/b = 10 ms.
    let mut ckt = Circuit::new();
    let w = ckt.node("shaft", Nature::MechanicalRotation).unwrap();
    let gnd = ckt.ground();
    ckt.add(Capacitor::new("j1", w, gnd, 1e-6)).unwrap();
    ckt.add(Resistor::new("b1", w, gnd, 1.0 / 1e-4)).unwrap();
    ckt.add(CurrentSource::new(
        "motor",
        gnd,
        w,
        Waveform::Pwl(vec![(0.0, 0.0), (1e-4, 1e-3)]),
    ))
    .unwrap();
    let res = run(&mut ckt, &TranOptions::new(60e-3), &SimOptions::default()).unwrap();
    let omega = res.node_trace("shaft").unwrap();
    let got = *omega.last().unwrap();
    assert!((got - 10.0).abs() < 0.05, "ω = {got}");
}

#[test]
fn hdl_device_bridges_thermal_and_electrical() {
    // A behavioral self-heating resistor: electrical power flows into
    // the thermal net as heat, and the resistance rises with
    // temperature — a two-nature HDL model beyond the paper's pairs.
    let src = r#"
ENTITY heatres IS
  GENERIC (r0, tc : analog);
  PIN (p, q : electrical; th, tl : thermal);
END ENTITY heatres;
ARCHITECTURE a OF heatres IS
VARIABLE r, vpq, dt : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      vpq := [p, q].v;
      dt := [th, tl].temp;
      r := r0 * (1.0 + tc * dt);
      [p, q].i %= vpq / r;
      -- Dissipated power enters the thermal node as heat flow.
      [th, tl].hflow %= -vpq * vpq / r;
  END RELATION;
END ARCHITECTURE a;
"#;
    let model = HdlModel::compile(src, "heatres", None).unwrap();
    let mut ckt = Circuit::new();
    let p = ckt.enode("p").unwrap();
    let hot = ckt.node("hot", Nature::Thermal).unwrap();
    let gnd = ckt.ground();
    ckt.add(VoltageSource::new("v1", p, gnd, Waveform::Dc(5.0)))
        .unwrap();
    ckt.add(
        HdlDevice::new(
            "rh",
            &model,
            &[("r0", 100.0), ("tc", 4e-3)],
            &[p, gnd, hot, gnd],
        )
        .unwrap(),
    )
    .unwrap();
    // Thermal path: 50 K/W to ambient.
    ckt.add(Resistor::new("rth", hot, gnd, 50.0)).unwrap();
    let op = mems_spice::analysis::dcop::solve(&mut ckt, &SimOptions::default()).unwrap();
    let dt = op.v(hot);
    // Self-consistent solution: ΔT = Rth·V²/(r0(1+tc·ΔT)) →
    // 0.2·ΔT² + 50·ΔT? No: quadratic 100·tc·ΔT² + 100·ΔT − 50·25 = 0.
    let (a, b, c) = (100.0_f64 * 4e-3, 100.0_f64, -50.0_f64 * 25.0);
    let expect = (-b + (b * b - 4.0 * a * c).sqrt()) / (2.0 * a);
    assert!((dt - expect).abs() < expect * 1e-6, "ΔT = {dt} vs {expect}");
    // The heated resistance reduces the current below V/r0.
    let i = op.by_label("i(v1,0)").unwrap().abs();
    assert!(i < 5.0 / 100.0);
    assert!((i - 5.0 / (100.0 * (1.0 + 4e-3 * dt))).abs() < 1e-9);
}
