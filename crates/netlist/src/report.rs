//! Rendering deck and batch results as aligned text tables and CSV.

use crate::ast::Deck;
use crate::batch::BatchResult;
use crate::elab::{AnalysisOutcome, DeckRun};
use std::fmt::Write as _;

/// Renders an aligned table: header row + data rows.
fn table(headers: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>width$}", width = widths[i]);
        }
        out.push('\n');
    };
    render_row(&mut out, headers);
    let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        render_row(&mut out, row);
    }
    out
}

fn fmt_val(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if (1e-3..1e6).contains(&v.abs()) {
        format!("{v:.6}")
    } else {
        format!("{v:.6e}")
    }
}

/// Labels the deck selects for an analysis kind (`.PRINT` filters, or
/// everything when no `.PRINT` matches) — see [`Deck::print_labels`].
pub fn selected_labels(deck: &Deck, kind: &str, all: &[String]) -> Vec<String> {
    deck.print_labels(kind, all)
}

/// Renders one analysis outcome as an aligned table.
pub fn outcome_table(deck: &Deck, outcome: &AnalysisOutcome) -> String {
    match outcome {
        AnalysisOutcome::Op(op) => {
            let labels = selected_labels(deck, "op", &op.layout.labels);
            let rows: Vec<Vec<String>> = labels
                .iter()
                .filter_map(|l| op.by_label(l).map(|v| vec![l.clone(), fmt_val(v)]))
                .collect();
            format!(
                "operating point ({} iterations)\n{}",
                op.iterations,
                table(&["unknown".into(), "value".into()], &rows)
            )
        }
        AnalysisOutcome::Dc { var, result } => {
            let all = result
                .points
                .first()
                .map(|p| p.layout.labels.clone())
                .unwrap_or_default();
            let labels = selected_labels(deck, "dc", &all);
            let mut headers = vec![var.clone()];
            headers.extend(labels.iter().cloned());
            let rows: Vec<Vec<String>> = result
                .values
                .iter()
                .zip(&result.points)
                .map(|(v, op)| {
                    let mut row = vec![fmt_val(*v)];
                    row.extend(
                        labels
                            .iter()
                            .map(|l| op.by_label(l).map_or("-".into(), fmt_val)),
                    );
                    row
                })
                .collect();
            format!("dc sweep over {var}\n{}", table(&headers, &rows))
        }
        AnalysisOutcome::Ac(ac) => {
            let labels = selected_labels(deck, "ac", &ac.labels);
            let mut headers = vec!["freq [Hz]".to_string()];
            for l in &labels {
                headers.push(format!("|{l}|"));
                headers.push(format!("arg({l}) [deg]"));
            }
            let mags: Vec<Vec<f64>> = labels.iter().filter_map(|l| ac.magnitude(l)).collect();
            let phases: Vec<Vec<f64>> = labels.iter().filter_map(|l| ac.phase_deg(l)).collect();
            let rows: Vec<Vec<String>> = ac
                .freqs
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let mut row = vec![fmt_val(*f)];
                    for (m, p) in mags.iter().zip(&phases) {
                        row.push(fmt_val(m[i]));
                        row.push(format!("{:+.2}", p[i]));
                    }
                    row
                })
                .collect();
            format!(
                "ac sweep ({} points)\n{}",
                ac.freqs.len(),
                table(&headers, &rows)
            )
        }
        AnalysisOutcome::Tran(tr) => {
            let labels = selected_labels(deck, "tran", &tr.labels);
            let mut headers = vec!["time [s]".to_string()];
            headers.extend(labels.iter().cloned());
            let cols: Vec<Option<usize>> = labels.iter().map(|l| tr.column(l)).collect();
            let rows: Vec<Vec<String>> = tr
                .time
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let mut row = vec![format!("{t:.6e}")];
                    for c in &cols {
                        row.push(c.map_or("-".into(), |c| fmt_val(tr.samples[i][c])));
                    }
                    row
                })
                .collect();
            format!(
                "transient ({} accepted steps, {} newton iterations, {} rejected)\n{}",
                tr.time.len(),
                tr.total_newton_iterations,
                tr.rejected_steps,
                table(&headers, &rows)
            )
        }
    }
}

/// Renders one analysis outcome as CSV.
pub fn outcome_csv(deck: &Deck, outcome: &AnalysisOutcome) -> String {
    match outcome {
        AnalysisOutcome::Op(op) => {
            let labels = selected_labels(deck, "op", &op.layout.labels);
            let mut out = String::from("unknown,value\n");
            for l in &labels {
                if let Some(v) = op.by_label(l) {
                    let _ = writeln!(out, "{l},{v:.9e}");
                }
            }
            out
        }
        AnalysisOutcome::Dc { var, result } => {
            let all = result
                .points
                .first()
                .map(|p| p.layout.labels.clone())
                .unwrap_or_default();
            let labels = selected_labels(deck, "dc", &all);
            let mut out = var.clone();
            for l in &labels {
                let _ = write!(out, ",{l}");
            }
            out.push('\n');
            for (v, op) in result.values.iter().zip(&result.points) {
                let _ = write!(out, "{v:.9e}");
                for l in &labels {
                    match op.by_label(l) {
                        Some(x) => {
                            let _ = write!(out, ",{x:.9e}");
                        }
                        None => out.push_str(",nan"),
                    }
                }
                out.push('\n');
            }
            out
        }
        AnalysisOutcome::Ac(ac) => {
            let labels = selected_labels(deck, "ac", &ac.labels);
            let mut out = String::from("freq");
            for l in &labels {
                let _ = write!(out, ",mag({l}),phase_deg({l})");
            }
            out.push('\n');
            let mags: Vec<Vec<f64>> = labels.iter().filter_map(|l| ac.magnitude(l)).collect();
            let phases: Vec<Vec<f64>> = labels.iter().filter_map(|l| ac.phase_deg(l)).collect();
            for (i, f) in ac.freqs.iter().enumerate() {
                let _ = write!(out, "{f:.9e}");
                for (m, p) in mags.iter().zip(&phases) {
                    let _ = write!(out, ",{:.9e},{:.9e}", m[i], p[i]);
                }
                out.push('\n');
            }
            out
        }
        AnalysisOutcome::Tran(tr) => {
            let labels = selected_labels(deck, "tran", &tr.labels);
            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            tr.to_csv(&refs)
        }
    }
}

/// Renders the whole run (all analyses) as tables.
pub fn run_report(deck: &Deck, run: &DeckRun) -> String {
    let mut out = format!("deck: {}\n", run.title);
    for (card, outcome) in &run.outcomes {
        let _ = writeln!(out, "\n== .{} ==", card.kind_name());
        out.push_str(&outcome_table(deck, outcome));
    }
    out
}

/// Renders a batch result: per-point table + aggregate statistics.
pub fn batch_report(result: &BatchResult) -> String {
    let mut param_names: Vec<String> = Vec::new();
    let mut metric_names: Vec<String> = Vec::new();
    for p in &result.points {
        for (name, _) in &p.point.overrides {
            if !param_names.contains(name) {
                param_names.push(name.clone());
            }
        }
        if let Ok(metrics) = &p.outcome {
            for m in metrics {
                if !metric_names.contains(&m.name) {
                    metric_names.push(m.name.clone());
                }
            }
        }
    }
    let mut headers = vec!["#".to_string()];
    headers.extend(param_names.iter().cloned());
    headers.extend(metric_names.iter().cloned());
    headers.push("status".into());
    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            let mut row = vec![p.point.index.to_string()];
            for name in &param_names {
                let v = p.point.overrides.iter().find(|(n, _)| n == name);
                row.push(v.map_or("-".into(), |(_, v)| fmt_val(*v)));
            }
            match &p.outcome {
                Ok(metrics) => {
                    for name in &metric_names {
                        let m = metrics.iter().find(|m| &m.name == name);
                        row.push(m.map_or("-".into(), |m| fmt_val(m.value)));
                    }
                    row.push("ok".into());
                }
                Err(e) => {
                    for _ in &metric_names {
                        row.push("-".into());
                    }
                    row.push(format!("FAIL: {e}"));
                }
            }
            row
        })
        .collect();
    let mut out = format!(
        "batch: {} points, {} ok, {} threads\n{}",
        result.points.len(),
        result.ok_count(),
        result.threads_used,
        table(&headers, &rows)
    );
    let agg = result.aggregate();
    if !agg.is_empty() {
        out.push_str("\naggregate statistics (ok points)\n");
        let headers = ["metric", "min", "max", "mean", "rms", "n"].map(String::from);
        let rows: Vec<Vec<String>> = agg
            .iter()
            .map(|(name, s)| {
                vec![
                    name.clone(),
                    fmt_val(s.min),
                    fmt_val(s.max),
                    fmt_val(s.mean),
                    fmt_val(s.rms),
                    s.n.to_string(),
                ]
            })
            .collect();
        out.push_str(&table(&headers, &rows));
    }
    out
}

// ---------------------------------------------------------------
// ASCII plots (`mems plot`)
// ---------------------------------------------------------------

/// Normalizes a `--probe` argument into a trace label: full labels
/// (`v(x1.mid)`, `i(kk,0)`) pass through, bare (possibly
/// hierarchical) node paths get wrapped as `v(…)`.
pub fn normalize_probe(probe: &str) -> String {
    let p = probe.to_ascii_lowercase();
    if p.contains('(') {
        p
    } else {
        format!("v({p})")
    }
}

/// Resolves the labels one analysis should plot: explicit probes
/// (every one must exist) or the deck's `.PRINT` selection.
fn plot_labels(
    deck: &Deck,
    kind: &str,
    all: &[String],
    probes: &[String],
) -> Result<Vec<String>, String> {
    if probes.is_empty() {
        return Ok(selected_labels(deck, kind, all));
    }
    let chosen: Vec<String> = probes.iter().map(|p| normalize_probe(p)).collect();
    for c in &chosen {
        if !all.contains(c) {
            return Err(format!(
                "probe `{c}` does not name a trace of the .{kind} analysis (available: {})",
                all.join(", ")
            ));
        }
    }
    Ok(chosen)
}

/// Rendering options for `mems plot`.
#[derive(Debug, Clone)]
pub struct PlotOptions {
    /// Plot height in character rows.
    pub rows: usize,
    /// Plot width in character columns.
    pub cols: usize,
    /// `.AC` only: plot magnitude over `log10(frequency)` instead of
    /// the raw frequency axis (`--log-x`). Non-positive frequencies
    /// are dropped from the plot.
    pub log_x: bool,
    /// `.AC` only: plot magnitude in dB, `20·log10(|·|)` (`--db`).
    pub db: bool,
}

impl Default for PlotOptions {
    fn default() -> Self {
        PlotOptions {
            rows: 16,
            cols: 72,
            log_x: false,
            db: false,
        }
    }
}

/// Magnitude floor for the dB axis: a structural zero plots at
/// −360 dB instead of collapsing the plot to `-inf`.
const DB_FLOOR_MAG: f64 = 1e-18;

/// Renders one analysis outcome as an ASCII plot
/// ([`mems_spice::output::ascii_plot`]): traces over time for
/// `.TRAN`, magnitude over frequency for `.AC` (optionally with
/// log-frequency x-axis and/or dB y-axis), traces over the swept
/// variable for `.DC`. `.OP` has no axis and falls back to its table.
///
/// # Errors
///
/// A message when a probe matches no trace of the analysis.
pub fn outcome_plot(
    deck: &Deck,
    outcome: &AnalysisOutcome,
    probes: &[String],
    opts: &PlotOptions,
) -> Result<String, String> {
    let (rows, cols) = (opts.rows, opts.cols);
    match outcome {
        AnalysisOutcome::Op(_) => Ok(outcome_table(deck, outcome)),
        AnalysisOutcome::Dc { var, result } => {
            let all = result
                .points
                .first()
                .map(|p| p.layout.labels.clone())
                .unwrap_or_default();
            let labels = plot_labels(deck, "dc", &all, probes)?;
            Ok(render_plot(
                &format!("dc sweep over {var}"),
                &result.values,
                labels
                    .iter()
                    .filter_map(|l| result.trace(l).map(|t| (l.clone(), t)))
                    .collect(),
                rows,
                cols,
            ))
        }
        AnalysisOutcome::Ac(ac) => {
            let labels = plot_labels(deck, "ac", &ac.labels, probes)?;
            // Axis transforms: keep the (frequency, magnitude) pairs
            // aligned when `log_x` drops non-positive frequencies.
            let keep: Vec<usize> = ac
                .freqs
                .iter()
                .enumerate()
                .filter(|(_, &f)| !opts.log_x || f > 0.0)
                .map(|(i, _)| i)
                .collect();
            let xs: Vec<f64> = keep
                .iter()
                .map(|&i| {
                    if opts.log_x {
                        ac.freqs[i].log10()
                    } else {
                        ac.freqs[i]
                    }
                })
                .collect();
            let traces: Vec<(String, Vec<f64>)> = labels
                .iter()
                .filter_map(|l| {
                    ac.magnitude(l).map(|m| {
                        let ys: Vec<f64> = keep
                            .iter()
                            .map(|&i| {
                                if opts.db {
                                    20.0 * m[i].max(DB_FLOOR_MAG).log10()
                                } else {
                                    m[i]
                                }
                            })
                            .collect();
                        let name = if opts.db {
                            format!("dB({l})")
                        } else {
                            format!("|{l}|")
                        };
                        (name, ys)
                    })
                })
                .collect();
            let axes = match (opts.log_x, opts.db) {
                (true, true) => "dB over log10(f)",
                (true, false) => "magnitude over log10(f)",
                (false, true) => "dB",
                (false, false) => "magnitude",
            };
            Ok(render_plot(
                &format!("ac sweep ({} points, {axes})", xs.len()),
                &xs,
                traces,
                rows,
                cols,
            ))
        }
        AnalysisOutcome::Tran(tr) => {
            let labels = plot_labels(deck, "tran", &tr.labels, probes)?;
            Ok(render_plot(
                &format!("transient ({} steps)", tr.time.len()),
                &tr.time,
                labels
                    .iter()
                    .filter_map(|l| tr.trace(l).map(|t| (l.clone(), t)))
                    .collect(),
                rows,
                cols,
            ))
        }
    }
}

/// Feeds named traces through [`mems_spice::output::ascii_plot`] (the
/// owned-to-borrowed series conversion all three sweep kinds share).
fn render_plot(
    title: &str,
    xs: &[f64],
    traces: Vec<(String, Vec<f64>)>,
    rows: usize,
    cols: usize,
) -> String {
    let series: Vec<(&str, &[f64])> = traces
        .iter()
        .map(|(l, t)| (l.as_str(), t.as_slice()))
        .collect();
    mems_spice::output::ascii_plot(title, xs, &series, rows, cols)
}

/// Renders every analysis of a run as ASCII plots (`mems plot`).
///
/// # Errors
///
/// The first unmatched probe.
pub fn run_plot(
    deck: &Deck,
    run: &DeckRun,
    probes: &[String],
    opts: &PlotOptions,
) -> Result<String, String> {
    let mut out = format!("deck: {}\n", run.title);
    for (card, outcome) in &run.outcomes {
        let _ = writeln!(out, "\n== .{} ==", card.kind_name());
        out.push_str(&outcome_plot(deck, outcome, probes, opts)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------
// JSON rendering (hand-rolled: the offline workspace has no serde).
// ---------------------------------------------------------------

/// Escapes a string for a JSON string literal (without the enclosing
/// quotes). Control characters become `\uXXXX` escapes; non-ASCII
/// text (hierarchical node names, deck titles) passes through as
/// UTF-8. Public because the `mems serve` protocol writes
/// user-supplied strings — deck titles, probe labels, error logs —
/// through the same writer the CLI reports use.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON value (`null` for NaN/infinite, which
/// JSON cannot represent).
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.12e}")
    } else {
        "null".to_string()
    }
}

fn json_num_array(vs: &[f64]) -> String {
    let items: Vec<String> = vs.iter().map(|&v| json_num(v)).collect();
    format!("[{}]", items.join(","))
}

/// `{"label": [..], ...}` from label → trace pairs.
fn json_trace_object(traces: &[(String, Vec<f64>)]) -> String {
    let items: Vec<String> = traces
        .iter()
        .map(|(l, vs)| format!("\"{}\":{}", json_escape(l), json_num_array(vs)))
        .collect();
    format!("{{{}}}", items.join(","))
}

/// Renders one analysis outcome as a JSON object.
pub fn outcome_json(deck: &Deck, outcome: &AnalysisOutcome) -> String {
    match outcome {
        AnalysisOutcome::Op(op) => {
            let labels = selected_labels(deck, "op", &op.layout.labels);
            let values: Vec<String> = labels
                .iter()
                .filter_map(|l| {
                    op.by_label(l)
                        .map(|v| format!("\"{}\":{}", json_escape(l), json_num(v)))
                })
                .collect();
            format!(
                "{{\"kind\":\"op\",\"iterations\":{},\"values\":{{{}}}}}",
                op.iterations,
                values.join(",")
            )
        }
        AnalysisOutcome::Dc { var, result } => {
            let all = result
                .points
                .first()
                .map(|p| p.layout.labels.clone())
                .unwrap_or_default();
            let labels = selected_labels(deck, "dc", &all);
            let traces: Vec<(String, Vec<f64>)> = labels
                .iter()
                .filter_map(|l| result.trace(l).map(|t| (l.clone(), t)))
                .collect();
            format!(
                "{{\"kind\":\"dc\",\"var\":\"{}\",\"values\":{},\"traces\":{}}}",
                json_escape(var),
                json_num_array(&result.values),
                json_trace_object(&traces)
            )
        }
        AnalysisOutcome::Ac(ac) => {
            let labels = selected_labels(deck, "ac", &ac.labels);
            let mags: Vec<(String, Vec<f64>)> = labels
                .iter()
                .filter_map(|l| ac.magnitude(l).map(|m| (l.clone(), m)))
                .collect();
            let phases: Vec<(String, Vec<f64>)> = labels
                .iter()
                .filter_map(|l| ac.phase_deg(l).map(|p| (l.clone(), p)))
                .collect();
            format!(
                "{{\"kind\":\"ac\",\"freqs\":{},\"magnitude\":{},\"phase_deg\":{}}}",
                json_num_array(&ac.freqs),
                json_trace_object(&mags),
                json_trace_object(&phases)
            )
        }
        AnalysisOutcome::Tran(tr) => {
            let labels = selected_labels(deck, "tran", &tr.labels);
            let traces: Vec<(String, Vec<f64>)> = labels
                .iter()
                .filter_map(|l| tr.trace(l).map(|t| (l.clone(), t)))
                .collect();
            format!(
                "{{\"kind\":\"tran\",\"newton_iterations\":{},\"rejected_steps\":{},\"time\":{},\"traces\":{}}}",
                tr.total_newton_iterations,
                tr.rejected_steps,
                json_num_array(&tr.time),
                json_trace_object(&traces)
            )
        }
    }
}

/// Renders one [`SolverStats`](mems_spice::system::SolverStats)
/// snapshot as a JSON object. Shared by `mems run --json` and the
/// `mems serve` job metadata so both report the linear solver the same
/// way.
pub fn solver_stats_json(st: &mems_spice::system::SolverStats) -> String {
    format!(
        "{{\"backend\":\"{}\",\"factor_path\":\"{}\",\"ordering\":\"{}\",\
         \"order_source\":\"{}\",\"order_us\":{},\
         \"n\":{},\"pattern_nnz\":{},\"factor_nnz\":{},\"fill_ratio\":{},\
         \"supernodes\":{},\"levels\":{},\"threads\":{},\
         \"factors\":{},\"refactors\":{},\"fallbacks\":{},\
         \"last_factor_us\":{},\"last_refactor_us\":{}}}",
        json_escape(st.backend),
        json_escape(st.factor_path),
        json_escape(st.ordering),
        json_escape(st.order_source),
        st.order_us,
        st.n,
        st.pattern_nnz,
        st.factor_nnz,
        json_num(st.fill_ratio()),
        st.supernodes,
        st.levels,
        st.threads,
        st.factors,
        st.refactors,
        st.fallbacks,
        st.last_factor_us,
        st.last_refactor_us
    )
}

/// Renders a whole deck run as a JSON document:
/// `{"deck": …, "analyses": […], "solver": {…}}`.
pub fn run_json(deck: &Deck, run: &DeckRun) -> String {
    let analyses: Vec<String> = run
        .outcomes
        .iter()
        .map(|(_, outcome)| outcome_json(deck, outcome))
        .collect();
    let solver: Vec<String> = run
        .solver
        .iter()
        .map(|(name, st)| format!("\"{}\":{}", json_escape(name), solver_stats_json(st)))
        .collect();
    format!(
        "{{\"deck\":\"{}\",\"analyses\":[{}],\"solver\":{{{}}}}}\n",
        json_escape(&run.title),
        analyses.join(","),
        solver.join(",")
    )
}

/// Renders one batch point as a JSON object — the per-point record
/// both `mems sweep --json` and the `mems serve` results stream emit,
/// byte-identical, so served jobs can be diffed against CLI sweeps.
pub fn point_json(p: &crate::batch::PointResult) -> String {
    let params: Vec<String> = p
        .point
        .overrides
        .iter()
        .map(|(n, v)| format!("\"{}\":{}", json_escape(n), json_num(*v)))
        .collect();
    let body = match &p.outcome {
        Ok(metrics) => {
            let ms: Vec<String> = metrics
                .iter()
                .map(|m| format!("\"{}\":{}", json_escape(&m.name), json_num(m.value)))
                .collect();
            format!("\"status\":\"ok\",\"metrics\":{{{}}}", ms.join(","))
        }
        Err(e) => format!("\"status\":\"fail\",\"error\":\"{}\"", json_escape(e)),
    };
    format!(
        "{{\"index\":{},\"params\":{{{}}},{}}}",
        p.point.index,
        params.join(","),
        body
    )
}

/// Renders a batch result as a JSON document: per-point parameter
/// overrides, metrics or failure log, and aggregate statistics.
pub fn batch_json(result: &BatchResult) -> String {
    let points: Vec<String> = result.points.iter().map(point_json).collect();
    let agg: Vec<String> = result
        .aggregate()
        .iter()
        .map(|(name, s)| {
            format!(
                "\"{}\":{{\"min\":{},\"max\":{},\"mean\":{},\"rms\":{},\"n\":{}}}",
                json_escape(name),
                json_num(s.min),
                json_num(s.max),
                json_num(s.mean),
                json_num(s.rms),
                s.n
            )
        })
        .collect();
    format!(
        "{{\"total\":{},\"ok\":{},\"threads\":{},\"points\":[{}],\"aggregate\":{{{}}}}}\n",
        result.points.len(),
        result.ok_count(),
        result.threads_used,
        points.join(","),
        agg.join(",")
    )
}

/// Renders a batch result as CSV (one row per point).
pub fn batch_csv(result: &BatchResult) -> String {
    let mut param_names: Vec<String> = Vec::new();
    let mut metric_names: Vec<String> = Vec::new();
    for p in &result.points {
        for (name, _) in &p.point.overrides {
            if !param_names.contains(name) {
                param_names.push(name.clone());
            }
        }
        if let Ok(metrics) = &p.outcome {
            for m in metrics {
                if !metric_names.contains(&m.name) {
                    metric_names.push(m.name.clone());
                }
            }
        }
    }
    let mut out = String::from("point");
    for n in &param_names {
        let _ = write!(out, ",{n}");
    }
    for n in &metric_names {
        let _ = write!(out, ",{n}");
    }
    out.push_str(",status\n");
    for p in &result.points {
        let _ = write!(out, "{}", p.point.index);
        for name in &param_names {
            match p.point.overrides.iter().find(|(n, _)| n == name) {
                Some((_, v)) => {
                    let _ = write!(out, ",{v:.9e}");
                }
                None => out.push_str(",nan"),
            }
        }
        match &p.outcome {
            Ok(metrics) => {
                for name in &metric_names {
                    match metrics.iter().find(|m| &m.name == name) {
                        Some(m) => {
                            let _ = write!(out, ",{:.9e}", m.value);
                        }
                        None => out.push_str(",nan"),
                    }
                }
                out.push_str(",ok\n");
            }
            Err(e) => {
                for _ in &metric_names {
                    out.push_str(",nan");
                }
                let _ = writeln!(out, ",\"{}\"", e.replace('"', "'"));
            }
        }
    }
    out
}

// ---------------------------------------------------------------
// Machine-readable diagnostics (`mems check --json`,
// `mems serve --check-only`, and serve's 400 responses all emit this
// one format, so editor/service integrations never scrape the human
// caret excerpts).
// ---------------------------------------------------------------

/// One structured diagnostic: severity, message, and (when the
/// failing card is known) a byte span into the deck source.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// `"error"` (the deck frontend currently has no warnings; the
    /// field exists so the wire format won't change when it does).
    pub severity: String,
    /// Human-readable description, without source excerpts.
    pub message: String,
    /// Byte span into the (include-spliced) deck source.
    pub span: Option<mems_hdl::span::Span>,
}

impl Diagnostic {
    /// Converts a deck-frontend error into a diagnostic, preserving
    /// its span when it has one.
    pub fn from_error(e: &crate::error::NetlistError) -> Self {
        Diagnostic {
            severity: "error".to_string(),
            message: e.to_string(),
            span: e.span(),
        }
    }
}

/// 1-based `(line, column)` of a byte offset in `src` (column counts
/// characters, not bytes, so multibyte node names report sensibly).
fn line_col(src: &str, pos: usize) -> (usize, usize) {
    let pos = pos.min(src.len());
    let before = &src[..pos];
    let line = before.matches('\n').count() + 1;
    let col = before.rfind('\n').map_or(before.chars().count(), |nl| {
        before[nl + 1..].chars().count()
    }) + 1;
    (line, col)
}

/// Renders one diagnostic as a JSON object:
/// `{"severity","message","span":{"start","end","line","col"}|null}`.
pub fn diagnostic_json(src: &str, d: &Diagnostic) -> String {
    let span = match d.span {
        Some(s) => {
            let (line, col) = line_col(src, s.start);
            format!(
                "{{\"start\":{},\"end\":{},\"line\":{line},\"col\":{col}}}",
                s.start, s.end
            )
        }
        None => "null".to_string(),
    };
    format!(
        "{{\"severity\":\"{}\",\"message\":\"{}\",\"span\":{span}}}",
        json_escape(&d.severity),
        json_escape(&d.message)
    )
}

/// Renders a diagnostic list as a JSON array — the shared payload of
/// `mems check --json`, `mems serve --check-only`, and serve's
/// invalid-deck responses.
pub fn diagnostics_json(src: &str, diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(|d| diagnostic_json(src, d)).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{run_batch, BatchOptions};
    use crate::elab::run_deck;

    #[test]
    fn op_table_and_csv_render() {
        let deck = Deck::parse("t\nVs in 0 2\nR1 in out 1k\nR2 out 0 1k\n.op\n.print op v(out)\n")
            .unwrap();
        let run = run_deck(&deck).unwrap();
        let report = run_report(&deck, &run);
        assert!(report.contains("v(out)"), "{report}");
        assert!(report.contains("1.000000"), "{report}");
        let csv = outcome_csv(&deck, &run.outcomes[0].1);
        assert!(csv.starts_with("unknown,value\n"));
        assert!(csv.contains("v(out),"), "{csv}");
    }

    #[test]
    fn run_json_is_wellformed_and_has_values() {
        let deck = Deck::parse(
            "json \"deck\"\nVs in 0 2\nR1 in out 1k\nR2 out 0 1k\n.op\n.print op v(out)\n",
        )
        .unwrap();
        let run = run_deck(&deck).unwrap();
        let json = run_json(&deck, &run);
        assert!(json.contains("\"kind\":\"op\""), "{json}");
        assert!(json.contains("\"v(out)\":9.99999999"), "{json}");
        // The quote in the title must be escaped.
        assert!(json.contains("json \\\"deck\\\""), "{json}");
        assert_json_balanced(&json);
    }

    #[test]
    fn batch_json_reports_failures_and_aggregate() {
        let deck = Deck::parse(
            "f\n.param r=1k\nVs in 0 1\nR1 in out 1k\nR2 out 0 {r}\n.op\n.print op v(out)\n.step param r LIST 1k 0 3k\n",
        )
        .unwrap();
        let result = run_batch(&deck, &BatchOptions::with_threads(2)).unwrap();
        let json = batch_json(&result);
        assert!(json.contains("\"total\":3"), "{json}");
        assert!(json.contains("\"ok\":2"), "{json}");
        assert!(json.contains("\"status\":\"fail\""), "{json}");
        assert!(json.contains("\"error\":"), "{json}");
        assert!(json.contains("\"aggregate\""), "{json}");
        assert!(json.contains("\"op:v(out)\""), "{json}");
        assert_json_balanced(&json);
    }

    #[test]
    fn json_numbers_handle_non_finite() {
        assert_eq!(super::json_num(f64::NAN), "null");
        assert_eq!(super::json_num(f64::INFINITY), "null");
        assert!(super::json_num(1.5).starts_with("1.5"));
    }

    #[test]
    fn json_escape_covers_the_two_char_escapes() {
        assert_eq!(json_escape("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("line1\nline2"), "line1\\nline2");
        assert_eq!(json_escape("cr\rtab\t"), "cr\\rtab\\t");
    }

    #[test]
    fn json_escape_hexifies_control_chars() {
        assert_eq!(json_escape("\u{0}"), "\\u0000");
        assert_eq!(json_escape("bell\u{7}"), "bell\\u0007");
        assert_eq!(json_escape("esc\u{1b}[0m"), "esc\\u001b[0m");
        // 0x7f DEL is not in the JSON mandatory-escape set and passes
        // through, as does everything from 0x20 up.
        assert_eq!(json_escape("\u{7f}"), "\u{7f}");
    }

    #[test]
    fn json_escape_passes_non_ascii_through_as_utf8() {
        // Hierarchical node names and deck titles are user-supplied
        // and may carry any UTF-8; the writer must not mangle them.
        assert_eq!(json_escape("x1.mid"), "x1.mid");
        assert_eq!(json_escape("xµ.gap"), "xµ.gap");
        assert_eq!(json_escape("共振器 β→γ"), "共振器 β→γ");
        assert_eq!(json_escape("emoji \u{1f300} node"), "emoji \u{1f300} node");
    }

    #[test]
    fn escaped_strings_embed_in_wellformed_json() {
        let nasty = "t\u{1}tle \"q\" \\ \n xµ.共振";
        let doc = format!("{{\"title\":\"{}\"}}", json_escape(nasty));
        assert_json_balanced(&doc);
        assert!(!doc.contains('\n'), "{doc}");
    }

    #[test]
    fn point_json_matches_batch_json_points() {
        let deck = Deck::parse(
            "p\n.param r=1k\nVs in 0 1\nR1 in out 1k\nR2 out 0 {r}\n.op\n.print op v(out)\n.step param r 1k 2k 500\n",
        )
        .unwrap();
        let result = run_batch(&deck, &BatchOptions::with_threads(1)).unwrap();
        let doc = batch_json(&result);
        for p in &result.points {
            let one = point_json(p);
            assert!(doc.contains(&one), "{one} not embedded in {doc}");
            assert_json_balanced(&one);
        }
    }

    #[test]
    fn diagnostics_json_carries_span_line_col() {
        let src = "title\nR1 a b 1k\nbogus card here\n";
        let err = Deck::parse(src).unwrap_err();
        let diags = vec![Diagnostic::from_error(&err)];
        let json = diagnostics_json(src, &diags);
        assert_json_balanced(&json);
        assert!(json.contains("\"severity\":\"error\""), "{json}");
        assert!(json.contains("\"line\":3"), "{json}");
        assert!(json.contains("\"start\":"), "{json}");
        // Spanless errors serialize with `"span":null`.
        let io = crate::error::NetlistError::Io("gone".into());
        let json = diagnostics_json(src, &[Diagnostic::from_error(&io)]);
        assert!(json.contains("\"span\":null"), "{json}");
    }

    #[test]
    fn line_col_is_one_based_and_counts_chars() {
        let src = "ab\ncdé f\n";
        assert_eq!(super::line_col(src, 0), (1, 1));
        assert_eq!(super::line_col(src, 3), (2, 1));
        // é is 2 bytes; the column after it counts characters.
        let pos = src.find(" f").unwrap();
        assert_eq!(super::line_col(src, pos), (2, 4));
    }

    /// Cheap structural check: braces/brackets balance outside strings.
    fn assert_json_balanced(json: &str) {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced JSON: {json}");
        }
        assert_eq!(depth, 0, "unbalanced JSON: {json}");
        assert!(!in_str, "unterminated string: {json}");
    }

    #[test]
    fn probe_normalization_wraps_bare_node_paths() {
        assert_eq!(normalize_probe("x1.mid"), "v(x1.mid)");
        assert_eq!(normalize_probe("V(X1.MID)"), "v(x1.mid)");
        assert_eq!(normalize_probe("i(kk,0)"), "i(kk,0)");
    }

    #[test]
    fn plots_render_for_every_analysis_kind() {
        let deck = Deck::parse(
            "p\n.subckt div a b\nRt a m 1k\nRb m b 1k\n.ends\n\
             Vs in 0 SIN(0 1 1k) AC 1 0\nX1 in 0 div\n\
             .op\n.dc vs 0 2 1\n.ac lin 5 10 1k\n.tran 0.1m 2m\n",
        )
        .unwrap();
        let run = run_deck(&deck).unwrap();
        let small = PlotOptions {
            rows: 8,
            cols: 40,
            ..PlotOptions::default()
        };
        // Default selection renders all four analyses.
        let all = run_plot(&deck, &run, &[], &small).unwrap();
        assert!(all.contains("== .tran =="), "{all}");
        assert!(all.contains("dc sweep over v(vs)"), "{all}");
        assert!(all.contains("magnitude"), "{all}");
        // A hierarchical bare-node probe resolves the private node.
        let hier = run_plot(&deck, &run, &["x1.m".to_string()], &small).unwrap();
        assert!(hier.contains("v(x1.m)"), "{hier}");
        // Unknown probes list what exists.
        let err = run_plot(&deck, &run, &["nope".to_string()], &small).unwrap_err();
        assert!(err.contains("probe `v(nope)`"), "{err}");
        assert!(err.contains("available"), "{err}");
    }

    #[test]
    fn ac_plot_log_axis_and_db() {
        let deck = Deck::parse(
            "lowpass\nVs in 0 0 AC 1\nR1 in out 1k\nC1 out 0 1u\n\
             .ac dec 3 10 10k\n.print ac v(out)\n",
        )
        .unwrap();
        let run = run_deck(&deck).unwrap();
        let log_db = PlotOptions {
            rows: 8,
            cols: 40,
            log_x: true,
            db: true,
        };
        let plot = run_plot(&deck, &run, &[], &log_db).unwrap();
        assert!(plot.contains("dB over log10(f)"), "{plot}");
        assert!(plot.contains("dB(v(out))"), "{plot}");
        // x axis runs in decades now: log10(10) = 1 .. log10(10k) = 4.
        assert!(plot.contains("x: 1.000e0 .. 4.000e0"), "{plot}");
        // The dB axis is negative-valued past the corner.
        let y_line = plot
            .lines()
            .find(|l| l.contains("y:"))
            .expect("y range line");
        assert!(y_line.contains("-"), "{y_line}");
        // log-x alone keeps the linear magnitude axis.
        let log_only = PlotOptions {
            rows: 8,
            cols: 40,
            log_x: true,
            db: false,
        };
        let plot = run_plot(&deck, &run, &[], &log_only).unwrap();
        assert!(plot.contains("magnitude over log10(f)"), "{plot}");
        assert!(plot.contains("|v(out)|"), "{plot}");
    }

    #[test]
    fn batch_report_includes_stats_and_failures() {
        let deck = Deck::parse(
            "f\n.param r=1k\nVs in 0 1\nR1 in out 1k\nR2 out 0 {r}\n.op\n.print op v(out)\n.step param r LIST 1k 0 3k\n",
        )
        .unwrap();
        let result = run_batch(&deck, &BatchOptions::with_threads(2)).unwrap();
        let report = batch_report(&result);
        assert!(report.contains("3 points, 2 ok"), "{report}");
        assert!(report.contains("FAIL"), "{report}");
        assert!(report.contains("aggregate statistics"), "{report}");
        let csv = batch_csv(&result);
        assert!(csv.lines().count() == 4, "{csv}");
        assert!(csv.contains(",ok"));
    }
}
