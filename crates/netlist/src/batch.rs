//! Batch scenario engine: `.STEP` parameter sweeps and `.MC` Monte
//! Carlo, running points in parallel across threads. Each worker
//! elaborates the deck once and re-binds parameters in place through
//! the devices' `set_param` path per point (see
//! [`crate::elab::Elaborator::patch`]); `BatchOptions::reelaborate`
//! forces the old rebuild-per-point behavior, which is bit-identical.
//!
//! Determinism: every point's parameter values are derived from a
//! splitmix64 hash of `(seed, point index, variable index)` — never
//! from execution order — and transient warm-start guesses come from
//! a sequential pre-chain, so on the dense matrix backend results are
//! bit-identical for any thread count. (On the forced-sparse backend
//! a worker's pivot order is chosen at its first factorization and
//! replayed for its later points, so multi-threaded sparse batches
//! are deterministic to solver tolerance rather than to the last
//! bit.) Per-point failures (non-convergence, pull-in asserts, …) are
//! recorded and the batch continues: a Monte Carlo run that loses a
//! few collapsed points still reports yield.

use crate::ast::{AnalysisCard, Deck, McDist, StepValues};
use crate::elab::{
    run_elaborated_ctx, sim_options, AnalysisOutcome, DeckRun, Elaborator, ParamEnv, RunCtx,
};
use crate::error::{NetlistError, Result};
use mems_numerics::stats::{self, TraceStats};
use mems_spice::analysis::dcop;
use mems_spice::circuit::Circuit;
use mems_spice::solver::Workspace;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Cooperative cancellation handle: an `Arc<AtomicBool>` the batch
/// engine (and the `mems serve` job runner) checks **between points**
/// — a running Newton solve or transient integration is never torn
/// down mid-step, so cancellation lands on the next point boundary.
/// Clones share the flag; `cancel()` is sticky.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation (visible to every clone, irrevocable).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Batch execution options.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Forces per-point re-elaboration (parse tree → circuit) instead
    /// of the default elaborate-once path, where each worker builds
    /// its circuits once and re-binds parameters in place through the
    /// devices' `set_param` hooks. The two paths are bit-identical
    /// (enforced by tests); this switch exists for differential
    /// testing and benchmarking.
    pub reelaborate: bool,
    /// Cooperative cancellation: when the token trips, workers (and
    /// the sequential warm-start pre-chain) stop at the next point
    /// boundary; unvisited points are recorded as cancelled failures
    /// and [`BatchResult::cancelled`] is set.
    pub cancel: Option<CancelToken>,
}

impl BatchOptions {
    /// Options with a fixed worker count and the default
    /// elaborate-once path.
    pub fn with_threads(threads: usize) -> Self {
        BatchOptions {
            threads,
            ..BatchOptions::default()
        }
    }
}

/// One batch point's parameter assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPoint {
    /// Point index (stable across thread counts).
    pub index: usize,
    /// Ordered `(param, value)` overrides for this point.
    pub overrides: Vec<(String, f64)>,
}

impl BatchPoint {
    fn env(&self) -> ParamEnv {
        self.overrides.iter().cloned().collect()
    }
}

/// A scalar extracted from one point's analyses, e.g.
/// `tran:v(out):settled`.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (`analysis:label:statistic`).
    pub name: String,
    /// Value at this point.
    pub value: f64,
}

/// Outcome of one batch point.
#[derive(Debug)]
pub struct PointResult {
    /// The parameter assignment.
    pub point: BatchPoint,
    /// Extracted metrics, or the failure description.
    pub outcome: std::result::Result<Vec<Metric>, String>,
}

/// The failure message recorded for points a [`CancelToken`] stopped
/// before they ran (and matched on by the CLI's partial-batch
/// reporting).
pub const CANCELLED_POINT: &str = "cancelled before simulation";

/// A finished batch.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-point results, ordered by point index.
    pub points: Vec<PointResult>,
    /// Thread count actually used.
    pub threads_used: usize,
    /// Whether a [`CancelToken`] stopped the batch early; unvisited
    /// points carry [`CANCELLED_POINT`] failures.
    pub cancelled: bool,
}

impl BatchResult {
    /// Points that simulated successfully.
    pub fn ok_count(&self) -> usize {
        self.points.iter().filter(|p| p.outcome.is_ok()).count()
    }

    /// Aggregates each metric across successful points
    /// (name → statistics), sorted by metric name.
    pub fn aggregate(&self) -> Vec<(String, TraceStats)> {
        let mut by_name: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for p in &self.points {
            if let Ok(metrics) = &p.outcome {
                for m in metrics {
                    by_name.entry(m.name.clone()).or_default().push(m.value);
                }
            }
        }
        by_name
            .into_iter()
            .filter_map(|(name, values)| stats::stats(&values).map(|s| (name, s)))
            .collect()
    }
}

/// Expands the deck's `.STEP`/`.MC` cards into the point list.
///
/// `.STEP` alone yields its range/list; `.MC` alone yields `n`
/// sampled points; both together yield the cross product (each sweep
/// value Monte-Carlo'd). Swept/perturbed parameters may be
/// hierarchical (`x1.gap`, `x1.xcell.k`), addressing a formal or
/// local `.PARAM` of a subcircuit instance.
///
/// # Errors
///
/// [`NetlistError::Elab`] when the deck has neither card, when a
/// swept/perturbed parameter is declared in no scope of the
/// hierarchy, or when a range is malformed.
pub fn batch_points(deck: &Deck) -> Result<Vec<BatchPoint>> {
    batch_points_with(&Elaborator::new(deck)?)
}

/// [`batch_points`] against an existing [`Elaborator`]: its flattened
/// hierarchy supplies parameter validation and `.MC` nominal values,
/// so callers that already elaborated (the batch engine, `mems
/// check`) skip a second flatten-and-compile pass.
///
/// # Errors
///
/// As [`batch_points`].
pub fn batch_points_with(elab: &Elaborator<'_>) -> Result<Vec<BatchPoint>> {
    let deck = elab.deck();
    let nominal = crate::elab::param_env(deck, &ParamEnv::new())?;
    let step_sets: Vec<Vec<(String, f64)>> = match &deck.step {
        Some(card) => {
            // Structural check only: a default-less formal is fine to
            // sweep — every point supplies its value — so nothing is
            // *evaluated* here.
            if !elab.declares_param(&card.param) {
                return Err(NetlistError::elab_at(
                    format!("`.STEP` sweeps undeclared parameter `{}`", card.param),
                    card.span,
                ));
            }
            let values = match &card.values {
                StepValues::Range { start, stop, step } => {
                    let (v0, v1, dv) = (
                        start.eval(&nominal)?,
                        stop.eval(&nominal)?,
                        step.eval(&nominal)?,
                    );
                    crate::elab::linear_points(v0, v1, dv)
                        .ok_or_else(|| NetlistError::elab_at("bad `.STEP` range", card.span))?
                }
                StepValues::List(exprs) => {
                    let mut out = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        out.push(e.eval(&nominal)?);
                    }
                    out
                }
            };
            values
                .into_iter()
                .map(|v| vec![(card.param.clone(), v)])
                .collect()
        }
        None => vec![Vec::new()],
    };

    let mc_sets: Vec<Vec<(String, f64)>> = match &deck.mc {
        Some(card) => {
            let n = card.n.eval(&nominal)?.round();
            if !(1.0..=1e6).contains(&n) {
                return Err(NetlistError::elab_at(
                    format!("`.MC` point count must be in 1..=1e6, got {n}"),
                    card.span,
                ));
            }
            let seed = match &card.seed {
                Some(e) => e.eval(&nominal)?.abs() as u64,
                None => 1,
            };
            // `.MC` perturbs *around a nominal*, so here every scope
            // is evaluated: bare deck `.PARAM`s plus qualified
            // `path.name` instance parameters. (Evaluated only for
            // `.MC` decks — a `.STEP`-only sweep of a default-less
            // formal must not trip scope evaluation.)
            let qualified = elab.qualified_param_env(&ParamEnv::new())?;
            let mut vars = Vec::with_capacity(card.vars.len());
            for v in &card.vars {
                let nominal_value = *qualified.get(&v.param).ok_or_else(|| {
                    NetlistError::elab_at(
                        format!("`.MC` perturbs undeclared parameter `{}`", v.param),
                        card.span,
                    )
                })?;
                vars.push((
                    v.param.clone(),
                    nominal_value,
                    v.tol.eval(&nominal)?,
                    v.dist,
                ));
            }
            (0..n as usize)
                .map(|i| {
                    vars.iter()
                        .enumerate()
                        .map(|(j, (name, nom, tol, dist))| {
                            (name.clone(), sample(seed, i, j, *nom, *tol, *dist))
                        })
                        .collect()
                })
                .collect()
        }
        None => vec![Vec::new()],
    };

    if deck.step.is_none() && deck.mc.is_none() {
        return Err(NetlistError::Elab {
            message: "deck has no `.STEP` or `.MC` card to batch over".into(),
            span: None,
        });
    }

    let mut points = Vec::with_capacity(step_sets.len() * mc_sets.len());
    for s in &step_sets {
        for m in &mc_sets {
            let mut overrides = s.clone();
            overrides.extend(m.iter().cloned());
            points.push(BatchPoint {
                index: points.len(),
                overrides,
            });
        }
    }
    Ok(points)
}

/// Deterministic per-(seed, point, variable) sample.
fn sample(seed: u64, point: usize, var: usize, nominal: f64, tol: f64, dist: McDist) -> f64 {
    let key = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((point as u64) << 20)
        .wrapping_add(var as u64);
    match dist {
        McDist::Uniform => {
            let u = unit(splitmix64(key));
            nominal * (1.0 + tol * (2.0 * u - 1.0))
        }
        McDist::Gauss => {
            // Box–Muller; tol is the 3σ bound.
            let u1 = unit(splitmix64(key)).max(1e-12);
            let u2 = unit(splitmix64(key.wrapping_add(0x5bf0_3635)));
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            nominal * (1.0 + tol / 3.0 * z)
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(raw: u64) -> f64 {
    (raw >> 11) as f64 / (1u64 << 53) as f64
}

/// Runs the deck's batch: expands points, simulates them across
/// worker threads, and extracts metrics.
///
/// # Errors
///
/// Point-expansion errors abort; per-point simulation failures are
/// recorded in the result instead.
pub fn run_batch(deck: &Deck, opts: &BatchOptions) -> Result<BatchResult> {
    // Flattening the hierarchy doubles as the fail-fast check on
    // decks whose subcircuits or models don't elaborate at all.
    let chain_elab = Elaborator::new(deck)?;
    let points = batch_points_with(&chain_elab)?;

    // Transient warm-start chain: a transient run's own integration
    // dwarfs its initial DC solve, so for `.TRAN` decks the operating
    // points are pre-solved *sequentially*, each warm-started from the
    // previous point's solution, and handed to the workers as Newton
    // guesses. Doing this on one thread (rather than letting each
    // worker warm-start from whatever point it happened to finish
    // last) keeps every point's guess — and therefore its converged
    // bits — independent of the thread count.
    let cancel = opts.cancel.clone().unwrap_or_default();
    let op_guesses = warm_start_chain(deck, &chain_elab, &points, opts.reelaborate, &cancel);

    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    }
    .min(points.len().max(1));

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<PointResult>>> = {
        let mut v = Vec::with_capacity(points.len());
        v.resize_with(points.len(), || None);
        Mutex::new(v)
    };

    // Shared thread budget: the sweep workers own the machine, so each
    // worker's supernodal factorizations are capped to its share of
    // the cores (see `mems_numerics::par`). Restored afterwards so
    // nested or subsequent runs see the caller's budget.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let prev_cap = mems_numerics::par::set_factor_thread_cap((cores / threads).max(1));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Each worker compiles its own model set: HdlModel is
                // cheap to build and this keeps the hot path lock-free.
                let elab = match Elaborator::new(deck) {
                    Ok(e) => e,
                    Err(_) => return, // already surfaced by the fail-fast above
                };
                // One reusable context per worker: all points share a
                // topology, so the assembly workspace — including the
                // sparse backend's symbolic factorization — AND the
                // elaborated circuits themselves (parameter-patched in
                // place via `set_param`, unless `reelaborate` opts
                // out) carry across every point this worker simulates.
                let mut ctx = if opts.reelaborate {
                    RunCtx::without_reuse()
                } else {
                    RunCtx::default()
                };
                loop {
                    if cancel.is_cancelled() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= points.len() {
                        break;
                    }
                    let point = points[i].clone();
                    ctx.op_guess = op_guesses.as_ref().and_then(|g| g[i].clone());
                    let outcome = simulate_point(&elab, &point, &mut ctx);
                    results.lock().expect("no poisoned batch lock")[i] =
                        Some(PointResult { point, outcome });
                }
            });
        }
    });
    mems_numerics::par::set_factor_thread_cap(prev_cap);

    // Cancellation leaves gaps: record them as failed points so the
    // partial batch still reports its yield with stable indices.
    let cancelled = cancel.is_cancelled();
    let points = results
        .into_inner()
        .expect("no poisoned batch lock")
        .into_iter()
        .zip(points)
        .map(|(done, point)| {
            done.unwrap_or_else(|| PointResult {
                point,
                outcome: Err(CANCELLED_POINT.to_string()),
            })
        })
        .collect();
    Ok(BatchResult {
        points,
        threads_used: threads,
        cancelled,
    })
}

/// Pre-solves each point's DC operating point sequentially (previous
/// point's solution as Newton guess) for decks with `.TRAN` cards.
/// Returns `None` when the deck has no transient analysis or only one
/// point; per-point failures yield `None` guesses (the point itself
/// will surface its error when simulated). The chain runs
/// elaborate-once itself: one circuit, parameter-patched per point
/// (unless `reelaborate`) — and checks `cancel` between points,
/// leaving the remaining guesses `None`.
///
/// Public because the `mems serve` job runner pre-chains the same
/// guesses before chunking a sweep across its workers, keeping served
/// results bit-identical to `mems sweep` for any worker count.
pub fn warm_start_chain(
    deck: &Deck,
    elab: &Elaborator<'_>,
    points: &[BatchPoint],
    reelaborate: bool,
    cancel: &CancelToken,
) -> Option<Vec<Option<Vec<f64>>>> {
    let has_tran = deck
        .analyses
        .iter()
        .any(|c| matches!(c, AnalysisCard::Tran { .. }));
    if !has_tran || points.len() < 2 {
        return None;
    }
    let mut ws: Option<Workspace> = None;
    let mut prev: Option<Vec<f64>> = None;
    let mut cached: Option<Circuit> = None;
    let mut guesses = Vec::with_capacity(points.len());
    for point in points {
        if cancel.is_cancelled() {
            guesses.resize(points.len(), None);
            break;
        }
        let overrides = point.env();
        // Patch the chain's one circuit in place; fall back to a
        // fresh build on the first point or when patching is
        // disabled. Failures yield a `None` guess (the point itself
        // surfaces its error when simulated).
        let from = if reelaborate { None } else { cached.take() };
        let ckt = crate::elab::patch_or_build(elab, from, &overrides, None).ok();
        let guess = ckt.and_then(|mut ckt| {
            let env = crate::elab::param_env(deck, &overrides).ok()?;
            let sim = sim_options(deck, &env).ok()?;
            let ws = ws.get_or_insert_with(|| {
                Workspace::with_solver(0, sim.matrix, sim.ordering, sim.factor, sim.factor_threads)
            });
            let op = dcop::solve_in(&mut ckt, &sim, prev.as_deref(), ws).ok();
            if !reelaborate {
                cached = Some(ckt);
            }
            op.map(|op| op.x)
        });
        if guess.is_some() {
            prev.clone_from(&guess);
        }
        guesses.push(guess);
    }
    Some(guesses)
}

fn simulate_point(
    elab: &Elaborator<'_>,
    point: &BatchPoint,
    ctx: &mut RunCtx,
) -> std::result::Result<Vec<Metric>, String> {
    match run_elaborated_ctx(elab, &point.env(), ctx) {
        Ok(run) => Ok(extract_metrics(elab.deck(), &run)),
        Err(e) => Err(e.to_string()),
    }
}

/// Flattens a point's analyses into scalar metrics (the per-point
/// payload of `mems sweep` reports and of served sweep jobs).
pub fn extract_metrics(deck: &Deck, run: &DeckRun) -> Vec<Metric> {
    let mut out = Vec::new();
    let mut push = |name: String, value: f64| out.push(Metric { name, value });
    for (card, outcome) in &run.outcomes {
        let kind = card.kind_name();
        match outcome {
            AnalysisOutcome::Op(op) => {
                for label in deck.print_labels(kind, &op.layout.labels) {
                    if let Some(v) = op.by_label(&label) {
                        push(format!("op:{label}"), v);
                    }
                }
            }
            AnalysisOutcome::Dc { result, .. } => {
                let all = result
                    .points
                    .first()
                    .map(|p| p.layout.labels.clone())
                    .unwrap_or_default();
                for label in deck.print_labels(kind, &all) {
                    if let Some(trace) = result.trace(&label) {
                        if let Some(last) = trace.last() {
                            push(format!("dc:{label}:last"), *last);
                        }
                        if let Some((_, peak)) = stats::peak(&trace) {
                            push(format!("dc:{label}:peak"), peak);
                        }
                    }
                }
            }
            AnalysisOutcome::Ac(ac) => {
                for label in deck.print_labels(kind, &ac.labels) {
                    if let Some(mag) = ac.magnitude(&label) {
                        if let Some((i, peak)) = stats::peak(&mag) {
                            push(format!("ac:{label}:peak_mag"), peak.abs());
                            push(format!("ac:{label}:f_peak"), ac.freqs[i]);
                        }
                    }
                }
            }
            AnalysisOutcome::Tran(tr) => {
                for label in deck.print_labels(kind, &tr.labels) {
                    if let Some(trace) = tr.trace(&label) {
                        push(
                            format!("tran:{label}:settled"),
                            stats::settled_value(&trace, 0.1),
                        );
                        if let Some((_, peak)) = stats::peak(&trace) {
                            push(format!("tran:{label}:peak"), peak);
                        }
                        if let Some(s) = stats::stats(&trace) {
                            push(format!("tran:{label}:rms"), s.rms);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const STEP_DECK: &str = "\
stepped divider
.param vin=10 rbot=1k
Vs in 0 {vin}
R1 in out 1k
R2 out 0 {rbot}
.op
.print op v(out)
.step param rbot 500 2000 500
";

    #[test]
    fn step_points_expand_inclusively() {
        let deck = Deck::parse(STEP_DECK).unwrap();
        let points = batch_points(&deck).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].overrides, vec![("rbot".to_string(), 500.0)]);
        assert_eq!(points[3].overrides, vec![("rbot".to_string(), 2000.0)]);
    }

    #[test]
    fn step_batch_matches_analytic_divider() {
        let deck = Deck::parse(STEP_DECK).unwrap();
        let result = run_batch(&deck, &BatchOptions::with_threads(2)).unwrap();
        assert_eq!(result.ok_count(), 4);
        for p in &result.points {
            let rbot = p.point.overrides[0].1;
            let expect = 10.0 * rbot / (1000.0 + rbot);
            let metrics = p.outcome.as_ref().unwrap();
            let vout = metrics
                .iter()
                .find(|m| m.name == "op:v(out)")
                .expect("metric present");
            assert!((vout.value - expect).abs() < 1e-6);
        }
        let agg = result.aggregate();
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].1.n, 4);
    }

    #[test]
    fn mc_points_are_deterministic_and_within_tolerance() {
        let deck = Deck::parse(
            "mc divider\n.param r=1000\nVs in 0 5\nR1 in out {r}\nR2 out 0 1k\n.op\n.mc 40 seed=9 r tol=0.05\n",
        )
        .unwrap();
        let a = batch_points(&deck).unwrap();
        let b = batch_points(&deck).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        for p in &a {
            let r = p.overrides[0].1;
            assert!((950.0..=1050.0).contains(&r), "r = {r}");
        }
        // Not all identical.
        assert!(a.iter().any(|p| p.overrides[0].1 != a[0].overrides[0].1));
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        let deck = Deck::parse(
            "mc divider\n.param r=1000\nVs in 0 5\nR1 in out {r}\nR2 out 0 1k\n.op\n.print op v(out)\n.mc 32 seed=3 r tol=0.1\n",
        )
        .unwrap();
        let one = run_batch(&deck, &BatchOptions::with_threads(1)).unwrap();
        let many = run_batch(&deck, &BatchOptions::with_threads(8)).unwrap();
        assert_eq!(one.points.len(), 32);
        assert_eq!(one.threads_used, 1);
        for (p1, pn) in one.points.iter().zip(&many.points) {
            assert_eq!(p1.point, pn.point);
            let (m1, mn) = (p1.outcome.as_ref().unwrap(), pn.outcome.as_ref().unwrap());
            assert_eq!(m1.len(), mn.len());
            for (a, b) in m1.iter().zip(mn) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "{}", a.name);
            }
        }
    }

    #[test]
    fn tran_step_warm_start_is_thread_count_invariant() {
        // A `.TRAN` batch triggers the sequential DC warm-start
        // pre-chain; the chain (not worker completion order) supplies
        // every point's Newton guess, so results stay bit-identical
        // for any thread count on the dense backend.
        let deck = Deck::parse(
            "warm\n.param k=200\nId 0 vel PWL(0 0 1m 1u)\n.node mechanical1 vel\n\
             Mm vel 0 1e-4\nKk vel 0 {k}\nDd vel 0 40m\n.tran 1m 20m\n\
             .print tran i(kk,0)\n.step param k 150 250 25\n",
        )
        .unwrap();
        let chain = warm_start_chain(
            &deck,
            &Elaborator::new(&deck).unwrap(),
            &batch_points(&deck).unwrap(),
            false,
            &CancelToken::new(),
        )
        .expect("tran deck builds a warm-start chain");
        assert_eq!(chain.len(), 5);
        assert!(chain.iter().all(Option::is_some), "all points solve");
        let one = run_batch(&deck, &BatchOptions::with_threads(1)).unwrap();
        let many = run_batch(&deck, &BatchOptions::with_threads(4)).unwrap();
        assert_eq!(one.ok_count(), 5);
        for (p1, pn) in one.points.iter().zip(&many.points) {
            let (m1, mn) = (p1.outcome.as_ref().unwrap(), pn.outcome.as_ref().unwrap());
            for (a, b) in m1.iter().zip(mn) {
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "{}", a.name);
            }
            // The settled spring force equals the 1 µN drive.
            let settled = m1
                .iter()
                .find(|m| m.name == "tran:i(kk,0):settled")
                .expect("settled metric");
            assert!((settled.value - 1e-6).abs() < 2e-8, "{}", settled.value);
        }
    }

    #[test]
    fn step_times_mc_is_a_cross_product() {
        let deck = Deck::parse(
            "x\n.param a=1 b=2\nVs in 0 {a}\nR1 in 0 {b}\n.op\n.step param a 1 3 1\n.mc 4 b tol=0.1\n",
        )
        .unwrap();
        let points = batch_points(&deck).unwrap();
        assert_eq!(points.len(), 12);
        assert_eq!(points[0].overrides.len(), 2);
    }

    #[test]
    fn gauss_sampling_stays_reasonable() {
        let deck = Deck::parse(
            "g\n.param m=1\nVs in 0 1\nR1 in 0 {m}\n.op\n.mc 200 m tol=0.09 dist=gauss\n",
        )
        .unwrap();
        let points = batch_points(&deck).unwrap();
        let vals: Vec<f64> = points.iter().map(|p| p.overrides[0].1).collect();
        let s = stats::stats(&vals).unwrap();
        assert!((s.mean - 1.0).abs() < 0.01, "mean = {}", s.mean);
        // σ = 0.03 ⇒ essentially everything within ±5σ.
        assert!(s.min > 0.85 && s.max < 1.15, "range [{}, {}]", s.min, s.max);
    }

    const HIER_DECK: &str = "\
hier divider batch
.param vin=10
.subckt div in out PARAMS: rbot=1k
Rt in out 1k
Rb out 0 {rbot}
.ends
Vs in 0 {vin}
X1 in out div
.op
.print op v(out)
";

    #[test]
    fn hierarchical_step_addresses_instance_params() {
        let src = format!("{HIER_DECK}.step param x1.rbot 500 2000 500\n");
        let deck = Deck::parse(&src).unwrap();
        let points = batch_points(&deck).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].overrides[0].0, "x1.rbot");
        let result = run_batch(&deck, &BatchOptions::with_threads(2)).unwrap();
        assert_eq!(result.ok_count(), 4);
        for p in &result.points {
            let rbot = p.point.overrides[0].1;
            let expect = 10.0 * rbot / (1000.0 + rbot);
            let vout = p.outcome.as_ref().unwrap()[..]
                .iter()
                .find(|m| m.name == "op:v(out)")
                .unwrap();
            assert!((vout.value - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn hierarchical_mc_samples_around_instance_nominal() {
        // The nominal of `x1.rbot` is the formal's default (1k); the
        // MC spread must straddle it.
        let src = format!("{HIER_DECK}.mc 24 seed=5 x1.rbot tol=0.1\n");
        let deck = Deck::parse(&src).unwrap();
        let points = batch_points(&deck).unwrap();
        assert_eq!(points.len(), 24);
        for p in &points {
            let r = p.overrides[0].1;
            assert!((900.0..=1100.0).contains(&r), "r = {r}");
        }
        let result = run_batch(&deck, &BatchOptions::with_threads(2)).unwrap();
        assert_eq!(result.ok_count(), 24);
    }

    #[test]
    fn step_may_sweep_a_defaultless_formal() {
        // `rbot` has no default and no call-site value — only the
        // `.STEP` supplies it. Point expansion must not evaluate the
        // scope, and every point binds the formal through its
        // override.
        let deck = Deck::parse(
            "d\n.subckt div in out PARAMS: rbot\nRt in out 1k\nRb out 0 {rbot}\n.ends\n\
             Vs in 0 10\nX1 in out div\n.op\n.print op v(out)\n\
             .step param x1.rbot 1k 2k 1k\n",
        )
        .unwrap();
        let points = batch_points(&deck).unwrap();
        assert_eq!(points.len(), 2);
        let result = run_batch(&deck, &BatchOptions::with_threads(1)).unwrap();
        assert_eq!(result.ok_count(), 2);
        let vout = result.points[1].outcome.as_ref().unwrap()[..]
            .iter()
            .find(|m| m.name == "op:v(out)")
            .unwrap();
        assert!((vout.value - 10.0 * 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn undeclared_hierarchical_step_param_is_diagnosed() {
        let src = format!("{HIER_DECK}.step param x1.bogus 1 2 1\n");
        let deck = Deck::parse(&src).unwrap();
        let err = batch_points(&deck).expect_err("undeclared param");
        assert!(
            err.to_string().contains("undeclared parameter `x1.bogus`"),
            "{err}"
        );
    }

    #[test]
    fn batch_without_cards_is_an_error() {
        let deck = Deck::parse("t\nR1 a 0 1\n.op\n").unwrap();
        assert!(batch_points(&deck).is_err());
    }

    #[test]
    fn pre_cancelled_batch_visits_no_points() {
        let deck = Deck::parse(
            "c\n.param r=1000\nVs in 0 5\nR1 in out {r}\nR2 out 0 1k\n.op\n.print op v(out)\n.mc 16 seed=2 r tol=0.1\n",
        )
        .unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let result = run_batch(
            &deck,
            &BatchOptions {
                threads: 2,
                cancel: Some(cancel),
                ..BatchOptions::default()
            },
        )
        .unwrap();
        assert!(result.cancelled);
        assert_eq!(result.points.len(), 16);
        assert_eq!(result.ok_count(), 0);
        for p in &result.points {
            assert_eq!(p.outcome.as_ref().unwrap_err(), CANCELLED_POINT);
        }
    }

    #[test]
    fn mid_batch_cancellation_stops_at_a_point_boundary() {
        // A worker-side hook is hard to time deterministically, so
        // trip the token from a watcher thread while a single-threaded
        // `.MC` batch with a real transient per point grinds: the
        // batch must stop early, keep every completed point intact,
        // and mark the rest cancelled.
        let deck = Deck::parse(
            "c\n.param k=200\nId 0 vel PWL(0 0 1m 1u)\n.node mechanical1 vel\n\
             Mm vel 0 1e-4\nKk vel 0 {k}\nDd vel 0 40m\n.tran 0.2m 30m\n\
             .print tran i(kk,0)\n.mc 400 seed=7 k tol=0.1\n",
        )
        .unwrap();
        let cancel = CancelToken::new();
        let watcher = {
            let cancel = cancel.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(60));
                cancel.cancel();
            })
        };
        let result = run_batch(
            &deck,
            &BatchOptions {
                threads: 1,
                cancel: Some(cancel),
                ..BatchOptions::default()
            },
        )
        .unwrap();
        watcher.join().unwrap();
        assert!(result.cancelled);
        assert_eq!(result.points.len(), 400);
        let cancelled = result
            .points
            .iter()
            .filter(|p| p.outcome.as_ref().is_err_and(|e| e == CANCELLED_POINT))
            .count();
        assert!(cancelled > 0, "cancellation raced past the whole batch");
        // Completed points carry real metrics.
        for p in result.points.iter().filter(|p| p.outcome.is_ok()) {
            assert!(!p.outcome.as_ref().unwrap().is_empty());
        }
    }

    #[test]
    fn failed_points_are_recorded_not_fatal() {
        // rbot sweeps through 0 ⇒ that point fails to build.
        let deck = Deck::parse(
            "f\n.param rbot=1k\nVs in 0 1\nR1 in out 1k\nR2 out 0 {rbot}\n.op\n.step param rbot LIST 1k 0 2k\n",
        )
        .unwrap();
        let result = run_batch(&deck, &BatchOptions::with_threads(2)).unwrap();
        assert_eq!(result.points.len(), 3);
        assert_eq!(result.ok_count(), 2);
        assert!(result.points[1].outcome.is_err());
    }
}
