//! Card parser: lexed logical lines → [`Deck`] AST.
//!
//! Hierarchy: `.SUBCKT name ports… [PARAMS: k=v …]` opens a scoped
//! definition; cards up to the matching `.ENDS` form its body. All
//! definitions (nested ones included) are hoisted into one global
//! table with duplicate-name diagnostics. `.INCLUDE` resolves either
//! HDL-A source (as before) or a *deck fragment* — a library file of
//! `.SUBCKT`/`.PARAM`/`.HDL` cards, detected by its first card
//! starting with a dot — which is spliced into the deck's virtual
//! source so every diagnostic still carries a real excerpt.

use crate::ast::*;
use crate::error::{NetlistError, Result};
use crate::expr::{parse_arg, parse_expr, Cursor, NumExpr};
use crate::token::{lex, LogicalLine, RawBlock, Token, TokenKind};
use mems_hdl::span::Span;
use mems_hdl::Nature;

/// Maximum `.INCLUDE` nesting depth (cycle guard for libraries that
/// include each other).
const MAX_INCLUDE_DEPTH: usize = 16;

/// Resolves `.INCLUDE` file names to their contents.
pub trait IncludeResolver {
    /// Reads the named include (HDL-A source).
    fn read(&mut self, path: &str) -> std::io::Result<String>;
}

/// Resolver that refuses every include (pure in-memory parsing).
pub struct NoIncludes;

impl IncludeResolver for NoIncludes {
    fn read(&mut self, path: &str) -> std::io::Result<String> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            format!("includes are disabled (requested `{path}`)"),
        ))
    }
}

/// Resolver reading includes relative to a base directory.
pub struct FsResolver {
    /// Directory `.INCLUDE` paths are resolved against.
    pub base: std::path::PathBuf,
}

impl IncludeResolver for FsResolver {
    fn read(&mut self, path: &str) -> std::io::Result<String> {
        std::fs::read_to_string(self.base.join(path))
    }
}

impl Deck {
    /// Parses a deck from source, refusing `.INCLUDE` cards.
    ///
    /// # Errors
    ///
    /// Returns spanned [`NetlistError::Parse`] diagnostics; render
    /// them against the deck text with [`NetlistError::render`].
    pub fn parse(src: &str) -> Result<Deck> {
        Deck::parse_with_includes(src, &mut NoIncludes)
    }

    /// Parses a deck, resolving `.INCLUDE` cards through `includes`.
    ///
    /// # Errors
    ///
    /// As [`Deck::parse`], plus [`NetlistError::Io`] for unreadable
    /// includes.
    pub fn parse_with_includes(src: &str, includes: &mut dyn IncludeResolver) -> Result<Deck> {
        let lexed = lex(src)?;
        let mut deck = Deck {
            title: lexed.title,
            source: src.to_string(),
            devices: Vec::new(),
            params: Vec::new(),
            node_decls: Vec::new(),
            subckts: Vec::new(),
            hdl_blocks: lexed.hdl_blocks,
            analyses: Vec::new(),
            step: None,
            mc: None,
            prints: Vec::new(),
            options: Vec::new(),
        };
        let mut ctx = ParseCtx {
            includes,
            depth: 0,
            open: Vec::new(),
        };
        for line in &lexed.lines {
            parse_card(&mut deck, line, &mut ctx)?;
        }
        if let Some(def) = ctx.open.last() {
            return Err(NetlistError::parse(
                format!("`.SUBCKT {}` is never closed by `.ENDS`", def.name),
                def.span,
            ));
        }
        Ok(deck)
    }
}

/// Parser state threaded through the cards: the include resolver (with
/// a nesting depth guard) and the stack of `.SUBCKT` definitions still
/// waiting for their `.ENDS`.
struct ParseCtx<'r> {
    includes: &'r mut dyn IncludeResolver,
    depth: usize,
    open: Vec<SubcktDef>,
}

fn parse_card(deck: &mut Deck, line: &LogicalLine, ctx: &mut ParseCtx<'_>) -> Result<()> {
    let head = &line.tokens[0];
    if head.kind != TokenKind::Word {
        return Err(NetlistError::parse(
            format!("expected a card name, found `{}`", head.text),
            head.span,
        ));
    }
    let mut c = Cursor::new(&line.tokens[1..], line.span);
    let lower = head.lower();
    if let Some(card) = lower.strip_prefix('.') {
        return parse_dot_card(deck, card, head, &mut c, ctx);
    }
    let device = parse_device_card(head, &mut c, line.span)?;
    expect_exhausted(&c)?;
    match ctx.open.last_mut() {
        Some(def) => def.devices.push(device),
        None => deck.devices.push(device),
    }
    Ok(())
}

fn expect_exhausted(c: &Cursor<'_>) -> Result<()> {
    match c.peek() {
        None => Ok(()),
        Some(t) => Err(NetlistError::parse(
            format!("unexpected trailing `{}`", t.text),
            t.span,
        )),
    }
}

fn node_name(c: &mut Cursor<'_>, what: &str) -> Result<String> {
    Ok(c.expect_word(what)?.lower())
}

fn parse_device_card(
    head: &Token,
    c: &mut Cursor<'_>,
    span: mems_hdl::span::Span,
) -> Result<DeviceCard> {
    let name = head.lower();
    let letter = name.chars().next().expect("nonempty token");
    if name.len() < 2 {
        return Err(NetlistError::parse(
            format!(
                "device name `{}` needs at least one character after the type letter",
                head.text
            ),
            head.span,
        ));
    }
    match letter {
        'r' | 'c' | 'l' | 'm' | 'k' | 'd' => {
            let kind = match letter {
                'r' => PassiveKind::Resistor,
                'c' => PassiveKind::Capacitor,
                'l' => PassiveKind::Inductor,
                'm' => PassiveKind::Mass,
                'k' => PassiveKind::Spring,
                _ => PassiveKind::Damper,
            };
            let a = node_name(c, "a node name")?;
            let b = node_name(c, "a node name")?;
            let value = parse_arg(c)?;
            Ok(DeviceCard::Passive {
                kind,
                name,
                a,
                b,
                value,
                span,
            })
        }
        'v' | 'i' => {
            let kind = if letter == 'v' {
                SourceKind::Voltage
            } else {
                SourceKind::Current
            };
            let a = node_name(c, "a node name")?;
            let b = node_name(c, "a node name")?;
            let wave = parse_wave(c)?;
            let ac = parse_ac_suffix(c)?;
            Ok(DeviceCard::Source {
                kind,
                name,
                a,
                b,
                wave,
                ac,
                span,
            })
        }
        'e' | 'g' | 'f' | 'h' => {
            let kind = match letter {
                'e' => ControlledKind::Vcvs,
                'g' => ControlledKind::Vccs,
                'f' => ControlledKind::Cccs,
                _ => ControlledKind::Ccvs,
            };
            let nodes = [
                node_name(c, "the output + node")?,
                node_name(c, "the output − node")?,
                node_name(c, "the control + node")?,
                node_name(c, "the control − node")?,
            ];
            let value = parse_arg(c)?;
            Ok(DeviceCard::Controlled {
                kind,
                name,
                nodes,
                value,
                span,
            })
        }
        'b' => {
            let nodes = [
                node_name(c, "the output + node")?,
                node_name(c, "the output − node")?,
                node_name(c, "control 1 + node")?,
                node_name(c, "control 1 − node")?,
                node_name(c, "control 2 + node")?,
                node_name(c, "control 2 − node")?,
            ];
            let value = parse_arg(c)?;
            Ok(DeviceCard::Product {
                name,
                nodes,
                value,
                span,
            })
        }
        't' | 'y' => {
            let kind = if letter == 't' {
                TwoPortKind::Transformer
            } else {
                TwoPortKind::Gyrator
            };
            let nodes = [
                node_name(c, "port 1 + node")?,
                node_name(c, "port 1 − node")?,
                node_name(c, "port 2 + node")?,
                node_name(c, "port 2 − node")?,
            ];
            let value = parse_arg(c)?;
            Ok(DeviceCard::TwoPort {
                kind,
                name,
                nodes,
                value,
                span,
            })
        }
        'x' => parse_call(name, c, span),
        other => Err(NetlistError::parse(
            format!("unknown device letter `{other}` (supported: R C L V I E G F H B M K D T Y X)"),
            head.span,
        )),
    }
}

/// `Xname n1 n2 … callee [param=expr …]` — the positional run ends at
/// the first `name=` pair (or the card end); its last word is the
/// callee (a `.SUBCKT` or an HDL entity), the rest are node
/// connections.
fn parse_call(name: String, c: &mut Cursor<'_>, span: Span) -> Result<DeviceCard> {
    let mut positional: Vec<&Token> = Vec::new();
    while let Some(t) = c.peek() {
        if t.kind != TokenKind::Word || c.peek_at(1).is_some_and(|n| n.kind == TokenKind::Eq) {
            break;
        }
        positional.push(t);
        c.next();
    }
    let callee_tok = positional.pop().ok_or_else(|| {
        NetlistError::parse(
            "`X` instance needs nodes and a subcircuit or entity name",
            c.here(),
        )
    })?;
    if positional.is_empty() {
        return Err(NetlistError::parse(
            format!(
                "`X` instance of `{}` connects no pins (write `X… node… {} […]`)",
                callee_tok.text, callee_tok.text
            ),
            callee_tok.span,
        ));
    }
    let mut args: Vec<(String, NumExpr)> = Vec::new();
    while let Some(t) = c.peek() {
        if t.kind != TokenKind::Word {
            break;
        }
        let gname = t.lower();
        if args.iter().any(|(n, _)| n == &gname) {
            return Err(NetlistError::parse(
                format!("parameter `{gname}` is passed twice"),
                t.span,
            ));
        }
        let _ = c.next();
        c.expect(TokenKind::Eq, "`=`")?;
        let value = parse_arg(c)?;
        args.push((gname, value));
    }
    expect_exhausted(c)?;
    Ok(DeviceCard::Call {
        name,
        nodes: positional.iter().map(|t| t.lower()).collect(),
        callee: callee_tok.lower(),
        callee_span: callee_tok.span,
        args,
        span,
    })
}

/// Parses a source's waveform: `DC v`, a bare value, or
/// `PULSE(…)`, `SIN(…)`, `PWL(…)`, `EXP(…)`.
fn parse_wave(c: &mut Cursor<'_>) -> Result<WaveSpec> {
    if let Some(t) = c.peek() {
        if t.kind == TokenKind::Word {
            let kw = t.lower();
            match kw.as_str() {
                "dc" => {
                    c.next();
                    return Ok(WaveSpec::Dc(parse_arg(c)?));
                }
                "pulse" | "sin" | "pwl" | "exp"
                    if c.peek_at(1).is_some_and(|n| n.kind == TokenKind::LParen) =>
                {
                    c.next();
                    let args = parse_paren_args(c)?;
                    return Ok(match kw.as_str() {
                        "pulse" => WaveSpec::Pulse(args),
                        "sin" => WaveSpec::Sin(args),
                        "pwl" => WaveSpec::Pwl(args),
                        _ => WaveSpec::Exp(args),
                    });
                }
                _ => {}
            }
        }
    }
    Ok(WaveSpec::Dc(parse_arg(c)?))
}

/// `( arg arg … )` with optional commas.
fn parse_paren_args(c: &mut Cursor<'_>) -> Result<Vec<NumExpr>> {
    c.expect(TokenKind::LParen, "`(`")?;
    let mut args = Vec::new();
    loop {
        match c.peek() {
            Some(t) if t.kind == TokenKind::RParen => {
                c.next();
                return Ok(args);
            }
            Some(t) if t.kind == TokenKind::Comma => {
                c.next();
            }
            Some(_) => args.push(parse_arg(c)?),
            None => {
                return Err(NetlistError::parse(
                    "unclosed `(` in argument list",
                    c.here(),
                ))
            }
        }
    }
}

/// Optional trailing `AC mag [phase]`.
fn parse_ac_suffix(c: &mut Cursor<'_>) -> Result<Option<(NumExpr, Option<NumExpr>)>> {
    if c.peek().is_some_and(|t| t.is("ac")) {
        c.next();
        let mag = parse_arg(c)?;
        let phase = if c.at_end() {
            None
        } else {
            Some(parse_arg(c)?)
        };
        expect_exhausted(c)?;
        return Ok(Some((mag, phase)));
    }
    expect_exhausted(c)?;
    Ok(None)
}

fn parse_dot_card(
    deck: &mut Deck,
    card: &str,
    head: &Token,
    c: &mut Cursor<'_>,
    ctx: &mut ParseCtx<'_>,
) -> Result<()> {
    // Only device cards, `.PARAM`, `.NODE`, and nested definitions
    // live inside a `.SUBCKT` body.
    if !ctx.open.is_empty() && !matches!(card, "param" | "node" | "subckt" | "ends") {
        return Err(NetlistError::parse(
            format!("`.{card}` is not allowed inside a `.SUBCKT` definition"),
            head.span,
        ));
    }
    match card {
        "param" => {
            while !c.at_end() {
                let name_tok = c.expect_word("a parameter name")?;
                let name = name_tok.lower();
                let span = name_tok.span;
                c.expect(TokenKind::Eq, "`=`")?;
                let value = parse_expr(c)?;
                let def = ParamDef { name, value, span };
                match ctx.open.last_mut() {
                    Some(sub) => sub.params.push(def),
                    None => deck.params.push(def),
                }
            }
            Ok(())
        }
        "subckt" => parse_subckt_header(deck, head, c, ctx),
        "ends" => {
            let def = ctx.open.pop().ok_or_else(|| {
                NetlistError::parse("`.ENDS` without an open `.SUBCKT`", head.span)
            })?;
            if let Some(t) = c.peek() {
                let named = t.lower();
                if named != def.name {
                    return Err(NetlistError::parse(
                        format!("`.ENDS {named}` closes `.SUBCKT {}`", def.name),
                        t.span,
                    ));
                }
                c.next();
            }
            expect_exhausted(c)?;
            deck.subckts.push(def);
            Ok(())
        }
        "node" => {
            let nat_tok = c.expect_word("a nature name")?;
            let nature = Nature::from_name(&nat_tok.lower()).ok_or_else(|| {
                NetlistError::parse(
                    format!(
                        "unknown nature `{}` (one of: {})",
                        nat_tok.text,
                        Nature::ALL.map(|n| n.name()).join(", ")
                    ),
                    nat_tok.span,
                )
            })?;
            let mut nodes = Vec::new();
            while !c.at_end() {
                nodes.push(node_name(c, "a node name")?);
            }
            if nodes.is_empty() {
                return Err(NetlistError::parse("`.NODE` declares no nodes", head.span));
            }
            let decl = NodeDecl {
                nature,
                nodes,
                span: head.span.merge(c.line_span),
            };
            match ctx.open.last_mut() {
                Some(sub) => sub.node_decls.push(decl),
                None => deck.node_decls.push(decl),
            }
            Ok(())
        }
        "include" => {
            let file_tok = match c.next() {
                Some(t) if matches!(t.kind, TokenKind::Str | TokenKind::Word) => t,
                _ => {
                    return Err(NetlistError::parse(
                        "`.INCLUDE` needs a file name",
                        head.span,
                    ))
                }
            };
            expect_exhausted(c)?;
            let text = ctx.includes.read(&file_tok.text).map_err(|e| {
                NetlistError::Io(format!("cannot read include `{}`: {e}", file_tok.text))
            })?;
            if include_is_deck_fragment(&text) {
                parse_fragment(deck, &file_tok.text, &text, ctx, head.span)
            } else {
                deck.hdl_blocks.push(RawBlock {
                    text,
                    span: head.span.merge(file_tok.span),
                });
                Ok(())
            }
        }
        "op" => {
            expect_exhausted(c)?;
            deck.analyses.push(AnalysisCard::Op { span: head.span });
            Ok(())
        }
        "dc" => {
            let var_tok = c.expect_word("a source name or `PARAM`")?;
            let sweep = if var_tok.is("param") {
                DcSweepVar::Param(c.expect_word("a parameter name")?.lower())
            } else {
                DcSweepVar::Source(var_tok.lower())
            };
            let start = parse_arg(c)?;
            let stop = parse_arg(c)?;
            let step = parse_arg(c)?;
            expect_exhausted(c)?;
            deck.analyses.push(AnalysisCard::Dc {
                sweep,
                start,
                stop,
                step,
                span: head.span,
            });
            Ok(())
        }
        "ac" => {
            let shape_tok = c.expect_word("`DEC`, `LIN`, or `LIST`")?;
            let sweep = match shape_tok.lower().as_str() {
                "dec" => AcSweepSpec::Decade {
                    n: parse_arg(c)?,
                    fstart: parse_arg(c)?,
                    fstop: parse_arg(c)?,
                },
                "lin" => AcSweepSpec::Linear {
                    n: parse_arg(c)?,
                    fstart: parse_arg(c)?,
                    fstop: parse_arg(c)?,
                },
                "list" => {
                    let mut fs = Vec::new();
                    while !c.at_end() {
                        fs.push(parse_arg(c)?);
                    }
                    AcSweepSpec::List(fs)
                }
                other => {
                    return Err(NetlistError::parse(
                        format!("unknown `.AC` sweep `{other}` (DEC, LIN, or LIST)"),
                        shape_tok.span,
                    ))
                }
            };
            expect_exhausted(c)?;
            deck.analyses.push(AnalysisCard::Ac {
                sweep,
                span: head.span,
            });
            Ok(())
        }
        "tran" => {
            let tstep = parse_arg(c)?;
            let tstop = parse_arg(c)?;
            let fixed = if c.peek().is_some_and(|t| t.is("fixed")) {
                c.next();
                true
            } else {
                false
            };
            expect_exhausted(c)?;
            deck.analyses.push(AnalysisCard::Tran {
                tstep,
                tstop,
                fixed,
                span: head.span,
            });
            Ok(())
        }
        "step" => {
            if deck.step.is_some() {
                return Err(NetlistError::parse(
                    "only one `.STEP` card per deck",
                    head.span,
                ));
            }
            let mut var_tok = c.expect_word("`PARAM` or a parameter name")?;
            if var_tok.is("param") {
                var_tok = c.expect_word("a parameter name")?;
            }
            let param = var_tok.lower();
            let values = if c.peek().is_some_and(|t| t.is("list")) {
                c.next();
                let mut vs = Vec::new();
                while !c.at_end() {
                    vs.push(parse_arg(c)?);
                }
                if vs.is_empty() {
                    return Err(NetlistError::parse(
                        "`.STEP … LIST` needs at least one value",
                        head.span,
                    ));
                }
                StepValues::List(vs)
            } else {
                let start = parse_arg(c)?;
                let stop = parse_arg(c)?;
                let step = parse_arg(c)?;
                expect_exhausted(c)?;
                StepValues::Range { start, stop, step }
            };
            deck.step = Some(StepCard {
                param,
                values,
                span: head.span,
            });
            Ok(())
        }
        "mc" => {
            if deck.mc.is_some() {
                return Err(NetlistError::parse(
                    "only one `.MC` card per deck",
                    head.span,
                ));
            }
            let n = parse_arg(c)?;
            let mut seed = None;
            let mut vars = Vec::new();
            while let Some(t) = c.peek() {
                if t.is("seed") && c.peek_at(1).is_some_and(|n| n.kind == TokenKind::Eq) {
                    c.next();
                    c.next();
                    seed = Some(parse_arg(c)?);
                    continue;
                }
                let param = c.expect_word("a parameter name")?.lower();
                let tol_kw = c.expect_word("`TOL`")?;
                if !tol_kw.is("tol") {
                    return Err(NetlistError::parse(
                        format!("expected `TOL=…` after parameter, found `{}`", tol_kw.text),
                        tol_kw.span,
                    ));
                }
                c.expect(TokenKind::Eq, "`=`")?;
                let tol = parse_arg(c)?;
                let mut dist = McDist::Uniform;
                if c.peek().is_some_and(|t| t.is("dist")) {
                    c.next();
                    c.expect(TokenKind::Eq, "`=`")?;
                    let d = c.expect_word("`UNIFORM` or `GAUSS`")?;
                    dist = match d.lower().as_str() {
                        "uniform" => McDist::Uniform,
                        "gauss" | "gaussian" | "normal" => McDist::Gauss,
                        other => {
                            return Err(NetlistError::parse(
                                format!("unknown distribution `{other}`"),
                                d.span,
                            ))
                        }
                    };
                }
                vars.push(McVar { param, tol, dist });
            }
            if vars.is_empty() {
                return Err(NetlistError::parse(
                    "`.MC` needs at least one `param TOL=…` entry",
                    head.span,
                ));
            }
            deck.mc = Some(McCard {
                n,
                seed,
                vars,
                span: head.span,
            });
            Ok(())
        }
        "print" | "save" => {
            let analysis = match c.peek() {
                Some(t)
                    if t.kind == TokenKind::Word
                        && matches!(t.lower().as_str(), "op" | "dc" | "ac" | "tran") =>
                {
                    let kind = t.lower();
                    c.next();
                    Some(kind)
                }
                _ => None,
            };
            let mut labels = Vec::new();
            while !c.at_end() {
                labels.push(parse_trace_label(c)?);
            }
            if labels.is_empty() {
                return Err(NetlistError::parse("`.PRINT` selects no traces", head.span));
            }
            deck.prints.push(PrintCard {
                analysis,
                labels,
                span: head.span,
            });
            Ok(())
        }
        "options" | "option" => {
            while !c.at_end() {
                let name = c.expect_word("an option name")?.lower();
                c.expect(TokenKind::Eq, "`=`")?;
                let value = parse_expr(c)?;
                deck.options.push((name, value));
            }
            Ok(())
        }
        other => Err(NetlistError::parse(
            format!("unknown card `.{other}`"),
            head.span,
        )),
    }
}

/// Parses a `.SUBCKT name port… [PARAMS: k=v …]` header and pushes
/// the open definition onto the stack. Formal parameters start either
/// at the `PARAMS:` keyword or at the first `name=value` pair.
fn parse_subckt_header(
    deck: &mut Deck,
    head: &Token,
    c: &mut Cursor<'_>,
    ctx: &mut ParseCtx<'_>,
) -> Result<()> {
    let name_tok = c.expect_word("a subcircuit name")?;
    let name = name_tok.lower();
    if deck.subckt(&name).is_some() || ctx.open.iter().any(|d| d.name == name) {
        return Err(NetlistError::parse(
            format!("duplicate `.SUBCKT` definition `{name}`"),
            name_tok.span,
        ));
    }
    let mut ports: Vec<String> = Vec::new();
    loop {
        match c.peek() {
            None => break,
            Some(t) if t.is("params") => {
                c.next();
                if c.peek().is_some_and(|t| t.kind == TokenKind::Colon) {
                    c.next();
                }
                break;
            }
            Some(t)
                if t.kind == TokenKind::Word
                    && c.peek_at(1).is_some_and(|n| n.kind == TokenKind::Eq) =>
            {
                break; // implicit start of the formals
            }
            Some(_) => {
                let port_tok = c.expect_word("a port node name")?;
                let port = port_tok.lower();
                if port == "0" || port == "gnd" {
                    return Err(NetlistError::parse(
                        "ground cannot be a `.SUBCKT` port (it is shared globally)",
                        port_tok.span,
                    ));
                }
                if ports.contains(&port) {
                    return Err(NetlistError::parse(
                        format!("duplicate port `{port}`"),
                        port_tok.span,
                    ));
                }
                ports.push(port);
            }
        }
    }
    if ports.is_empty() {
        return Err(NetlistError::parse(
            format!("`.SUBCKT {name}` declares no ports"),
            name_tok.span,
        ));
    }
    let mut formals: Vec<FormalParam> = Vec::new();
    while !c.at_end() {
        let f_tok = c.expect_word("a parameter name")?;
        let fname = f_tok.lower();
        if formals.iter().any(|f| f.name == fname) {
            return Err(NetlistError::parse(
                format!("duplicate parameter `{fname}`"),
                f_tok.span,
            ));
        }
        let default = if c.peek().is_some_and(|t| t.kind == TokenKind::Eq) {
            c.next();
            Some(parse_expr(c)?)
        } else {
            None
        };
        formals.push(FormalParam {
            name: fname,
            default,
            span: f_tok.span,
        });
    }
    ctx.open.push(SubcktDef {
        name,
        ports,
        formals,
        devices: Vec::new(),
        params: Vec::new(),
        node_decls: Vec::new(),
        span: head.span.merge(name_tok.span),
    });
    Ok(())
}

/// Heuristic separating the two `.INCLUDE` payloads: a *deck
/// fragment* (library of `.SUBCKT`/`.PARAM`/`.HDL` cards) leads with a
/// dot card; anything else (HDL-A source leads with `ENTITY`) keeps
/// the old raw-HDL behavior.
fn include_is_deck_fragment(text: &str) -> bool {
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('*') {
            continue;
        }
        return t.starts_with('.');
    }
    false
}

/// Parses an included deck fragment. The fragment is appended to the
/// deck's virtual source (`Deck::source`) and lexed with offset
/// spans, so its cards — and any diagnostics they later raise — point
/// at real text. Fragment-level parse errors are rendered here, since
/// the caller only holds the on-disk deck text.
fn parse_fragment(
    deck: &mut Deck,
    path: &str,
    text: &str,
    ctx: &mut ParseCtx<'_>,
    include_span: Span,
) -> Result<()> {
    if ctx.depth >= MAX_INCLUDE_DEPTH {
        return Err(NetlistError::parse(
            format!("`.INCLUDE` nesting deeper than {MAX_INCLUDE_DEPTH} (include cycle?)"),
            include_span,
        ));
    }
    // Splice: a comment header (which the sub-lexer consumes as the
    // fragment's title line) followed by the fragment text, all
    // appended to the virtual source at `base`.
    deck.source.push('\n');
    let base = deck.source.len();
    let wrapped = format!("* .include \"{path}\"\n{text}");
    deck.source.push_str(&wrapped);
    let render_in = |deck: &Deck, e: NetlistError| match e.span() {
        Some(_) => NetlistError::Include(format!(
            "in `.INCLUDE`d file `{path}`: {}",
            e.render(&deck.source)
        )),
        None => e,
    };
    let mut lexed = lex(&wrapped).map_err(|e| render_in(deck, e.offset(base)))?;
    for line in &mut lexed.lines {
        line.span = line.span.offset(base);
        for t in &mut line.tokens {
            t.span = t.span.offset(base);
        }
    }
    for mut block in lexed.hdl_blocks {
        block.span = block.span.offset(base);
        deck.hdl_blocks.push(block);
    }
    let open_before = ctx.open.len();
    ctx.depth += 1;
    let outcome = (|| {
        for line in &lexed.lines {
            parse_card(deck, line, ctx)?;
        }
        if ctx.open.len() > open_before {
            let def = ctx.open.last().expect("checked non-empty");
            return Err(NetlistError::parse(
                format!("`.SUBCKT {}` is never closed by `.ENDS`", def.name),
                def.span,
            ));
        }
        Ok(())
    })();
    ctx.depth -= 1;
    ctx.open.truncate(open_before);
    outcome.map_err(|e| render_in(deck, e))
}

/// Reassembles a trace label like `v(out)` or `i(k1,0)` from tokens.
fn parse_trace_label(c: &mut Cursor<'_>) -> Result<String> {
    let head = c.expect_word("a trace label like `v(out)`")?;
    let mut label = head.lower();
    if c.peek().is_some_and(|t| t.kind == TokenKind::LParen) {
        c.next();
        label.push('(');
        let mut first = true;
        loop {
            match c.next() {
                Some(t) if t.kind == TokenKind::RParen => break,
                Some(t) if t.kind == TokenKind::Comma => {
                    label.push(',');
                    first = true;
                }
                Some(t) if t.kind == TokenKind::Word => {
                    if !first {
                        label.push(' ');
                    }
                    label.push_str(&t.lower());
                    first = false;
                }
                Some(t) => {
                    return Err(NetlistError::parse(
                        format!("unexpected `{}` in trace label", t.text),
                        t.span,
                    ))
                }
                None => {
                    return Err(NetlistError::parse(
                        "unclosed `(` in trace label",
                        head.span,
                    ))
                }
            }
        }
        label.push(')');
    }
    Ok(label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_deck() {
        let src = "\
demo deck
.param vtop=5 r={2*1k}
.node mechanical1 vel
R1 in out {r}
C1 out 0 1u
Vs in 0 PULSE(0 {vtop} 1m 1m 1m 10m)
Gd out 0 vel 0 2.5
.op
.tran 10u 20m
.print tran v(out) i(c1,0)
.options reltol=1e-8
";
        let deck = Deck::parse(src).unwrap();
        assert_eq!(deck.title, "demo deck");
        assert_eq!(deck.params.len(), 2);
        assert_eq!(deck.devices.len(), 4);
        assert_eq!(deck.analyses.len(), 2);
        assert_eq!(deck.prints[0].labels, vec!["v(out)", "i(c1,0)"]);
        assert_eq!(deck.options[0].0, "reltol");
        match &deck.devices[2] {
            DeviceCard::Source { kind, wave, .. } => {
                assert_eq!(*kind, SourceKind::Voltage);
                assert!(matches!(wave, WaveSpec::Pulse(args) if args.len() == 6));
            }
            other => panic!("expected source, got {other:?}"),
        }
    }

    #[test]
    fn parses_x_instances() {
        let src = "t\nXt1 a 0 vel 0 eletran A=1e-4 d=0.15m er=1.0\n";
        let deck = Deck::parse(src).unwrap();
        match &deck.devices[0] {
            DeviceCard::Call {
                nodes,
                callee,
                args,
                ..
            } => {
                assert_eq!(nodes, &["a", "0", "vel", "0"]);
                assert_eq!(callee, "eletran");
                assert_eq!(args.len(), 3);
                assert_eq!(args[1].0, "d");
            }
            other => panic!("expected X instance, got {other:?}"),
        }
    }

    #[test]
    fn parses_subckt_definitions() {
        let src = "\
t
.subckt cell in vel PARAMS: k=200 m={1e-4} alpha
Rs in mid 10
.param kk={k*2}
.node mechanical1 vel
Kk1 vel 0 {kk}
.ends cell
X1 a v1 cell k=300
";
        let deck = Deck::parse(src).unwrap();
        assert_eq!(deck.subckts.len(), 1);
        let def = &deck.subckts[0];
        assert_eq!(def.name, "cell");
        assert_eq!(def.ports, vec!["in", "vel"]);
        assert_eq!(def.formals.len(), 3);
        assert_eq!(def.formals[0].name, "k");
        assert!(def.formals[0].default.is_some());
        assert!(def.formals[2].default.is_none(), "bare formal");
        assert_eq!(def.devices.len(), 2);
        assert_eq!(def.params.len(), 1);
        assert_eq!(def.node_decls.len(), 1);
        // The body cards stayed out of the top level.
        assert_eq!(deck.devices.len(), 1);
        assert!(deck.params.is_empty());
    }

    #[test]
    fn subckt_formals_without_params_keyword() {
        let src = "t\n.subckt div a b r1=1k r2=1k\nRa a m {r1}\nRb m b {r2}\n.ends\n";
        let deck = Deck::parse(src).unwrap();
        let def = &deck.subckts[0];
        assert_eq!(def.ports, vec!["a", "b"]);
        assert_eq!(def.formals.len(), 2);
    }

    #[test]
    fn nested_subckt_definitions_are_hoisted() {
        let src = "\
t
.subckt outer a b
.subckt inner p q
Rq p q 1k
.ends inner
Xi a b inner
.ends outer
";
        let deck = Deck::parse(src).unwrap();
        let names: Vec<&str> = deck.subckts.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["inner", "outer"]);
        assert_eq!(deck.subckt("outer").unwrap().devices.len(), 1);
    }

    #[test]
    fn subckt_diagnostics() {
        let dup = "t\n.subckt a p q\nR1 p q 1\n.ends\n.subckt a p q\nR1 p q 1\n.ends\n";
        let err = Deck::parse(dup).unwrap_err();
        assert!(err.to_string().contains("duplicate `.SUBCKT`"), "{err}");

        let unclosed = "t\n.subckt a p q\nR1 p q 1\n";
        let err = Deck::parse(unclosed).unwrap_err();
        assert!(err.to_string().contains("never closed"), "{err}");

        let stray = "t\n.ends\n";
        let err = Deck::parse(stray).unwrap_err();
        assert!(err.to_string().contains("without an open"), "{err}");

        let misnamed = "t\n.subckt a p q\nR1 p q 1\n.ends b\n";
        let err = Deck::parse(misnamed).unwrap_err();
        assert!(err.to_string().contains("closes `.SUBCKT a`"), "{err}");

        let ground_port = "t\n.subckt a p 0\nR1 p 0 1\n.ends\n";
        let err = Deck::parse(ground_port).unwrap_err();
        assert!(err.to_string().contains("ground cannot be"), "{err}");

        let analysis_inside = "t\n.subckt a p q\n.tran 1m 10m\n.ends\n";
        let err = Deck::parse(analysis_inside).unwrap_err();
        assert!(
            err.to_string().contains("not allowed inside a `.SUBCKT`"),
            "{err}"
        );
    }

    #[test]
    fn include_deck_fragments_splice_subckts_and_params() {
        struct Lib;
        impl IncludeResolver for Lib {
            fn read(&mut self, path: &str) -> std::io::Result<String> {
                match path {
                    "cells.lib" => Ok("* cell library\n.param gbase=2\n.subckt gcell a b PARAMS: g=1\nGd a 0 b 0 {g*gbase}\n.ends gcell\n".into()),
                    other => Err(std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        other.to_string(),
                    )),
                }
            }
        }
        let src = "t\n.include \"cells.lib\"\nX1 in out gcell g=3\nVs in 0 1\nRl out 0 1k\n.op\n";
        let deck = Deck::parse_with_includes(src, &mut Lib).unwrap();
        assert_eq!(deck.subckts.len(), 1);
        assert_eq!(deck.params.len(), 1, "library .PARAM lands in the deck");
        // The fragment is spliced into the virtual source, so its
        // spans render real text.
        let def = &deck.subckts[0];
        assert!(def.span.slice(&deck.source).starts_with(".subckt gcell"));
    }

    #[test]
    fn duplicate_subckt_across_include_is_diagnosed() {
        struct Lib;
        impl IncludeResolver for Lib {
            fn read(&mut self, _: &str) -> std::io::Result<String> {
                Ok(".subckt cell a b\nR1 a b 1k\n.ends\n".into())
            }
        }
        let src = "t\n.subckt cell a b\nR1 a b 2k\n.ends\n.include \"lib\"\n.op\n";
        let err = Deck::parse_with_includes(src, &mut Lib).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("duplicate `.SUBCKT` definition `cell`"),
            "{msg}"
        );
        assert!(msg.contains("in `.INCLUDE`d file `lib`"), "{msg}");
    }

    #[test]
    fn include_fragments_nest_with_depth_guard() {
        struct Cyclic;
        impl IncludeResolver for Cyclic {
            fn read(&mut self, _: &str) -> std::io::Result<String> {
                Ok(".include \"self.lib\"\n".into())
            }
        }
        let src = "t\n.include \"self.lib\"\n";
        let err = Deck::parse_with_includes(src, &mut Cyclic).unwrap_err();
        assert!(err.to_string().contains("nesting deeper"), "{err}");
    }

    #[test]
    fn negative_args_stay_separate() {
        let src = "t\nVs a 0 PWL(0 -5 1m 5)\n";
        let deck = Deck::parse(src).unwrap();
        match &deck.devices[0] {
            DeviceCard::Source {
                wave: WaveSpec::Pwl(args),
                ..
            } => {
                assert_eq!(args.len(), 4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn step_and_mc_cards() {
        let src = "t\n.param k=200\n.step param k 100 300 50\n";
        let deck = Deck::parse(src).unwrap();
        let step = deck.step.unwrap();
        assert_eq!(step.param, "k");
        assert!(matches!(step.values, StepValues::Range { .. }));

        let src = "t\n.param k=200 m=1e-4\n.mc 32 seed=7 k tol=0.05 m tol=0.1 dist=gauss\n";
        let deck = Deck::parse(src).unwrap();
        let mc = deck.mc.unwrap();
        assert_eq!(mc.vars.len(), 2);
        assert_eq!(mc.vars[1].dist, McDist::Gauss);
        assert!(mc.seed.is_some());
    }

    #[test]
    fn golden_error_unknown_card() {
        let src = "t\n.bogus 1 2 3\n";
        let err = Deck::parse(src).unwrap_err();
        let rendered = err.render(src);
        assert_eq!(
            rendered,
            "deck parse error: unknown card `.bogus`\n\
             .bogus 1 2 3\n\
             ^^^^^^ (line 2, col 1)"
        );
    }

    #[test]
    fn golden_error_missing_node() {
        let src = "t\nR1 a\n";
        let err = Deck::parse(src).unwrap_err();
        let rendered = err.render(src);
        assert_eq!(
            rendered,
            "deck parse error: expected a node name before end of card\nR1 a\n    ^ (line 2, col 5)"
        );
    }

    #[test]
    fn golden_error_bad_nature() {
        let src = "t\n.node quantum q1\n";
        let err = Deck::parse(src).unwrap_err();
        assert!(err.render(src).contains("unknown nature `quantum`"));
        assert!(err.render(src).contains("line 2"));
    }

    #[test]
    fn golden_error_bad_value() {
        let src = "t\nC1 a 0 4..7k\n";
        let err = Deck::parse(src).unwrap_err();
        let rendered = err.render(src);
        assert!(
            rendered.contains("neither a number nor a parameter name"),
            "{rendered}"
        );
        assert!(rendered.contains("4..7k"), "{rendered}");
        assert!(rendered.contains("line 2"), "{rendered}");
    }

    #[test]
    fn duplicate_call_args_are_diagnosed() {
        // The subcircuit and HDL-entity paths resolve named args
        // differently (first-wins vs last-wins), so a doubled name is
        // a parse error rather than a silent pick.
        let src = "t\nX1 a 0 vel 0 eletran A=1e-4 a=2e-4\n";
        let err = Deck::parse(src).unwrap_err();
        assert!(
            err.to_string().contains("parameter `a` is passed twice"),
            "{err}"
        );
    }

    #[test]
    fn x_without_pins_is_an_error() {
        let src = "t\nX1 eletran\n";
        let err = Deck::parse(src).unwrap_err();
        assert!(err.to_string().contains("connects no pins"));
    }

    #[test]
    fn includes_are_refused_by_default() {
        let src = "t\n.include \"models.hdl\"\n";
        let err = Deck::parse(src).unwrap_err();
        assert!(matches!(err, NetlistError::Io(_)));
    }

    #[test]
    fn include_resolver_feeds_hdl_blocks() {
        struct Fixed;
        impl IncludeResolver for Fixed {
            fn read(&mut self, _: &str) -> std::io::Result<String> {
                Ok("ENTITY probe IS\nEND ENTITY probe;".into())
            }
        }
        let src = "t\n.include \"models.hdl\"\n";
        let deck = Deck::parse_with_includes(src, &mut Fixed).unwrap();
        assert_eq!(deck.hdl_blocks.len(), 1);
        assert!(deck.hdl_blocks[0].text.contains("ENTITY probe"));
    }
}
