//! `.PARAM` expressions: a small arithmetic language over deck
//! parameters, evaluated at elaboration time so `.STEP`/`.MC` points
//! can override parameters and re-elaborate without re-parsing.
//!
//! Grammar (precedence climbing): `+ -` < `* /` < unary `-` < `**`
//! (right-associative), with parenthesized groups, function calls
//! (`sin`, `cos`, `tan`, `sqrt`, `exp`, `ln`, `log10`, `abs`, `min`,
//! `max`, `pow`, `floor`, `ceil`), and the constants `pi` and `eps0`.

use crate::error::{NetlistError, Result};
use crate::token::{parse_number, Token, TokenKind};
use mems_hdl::span::Span;
use std::collections::HashMap;

/// Vacuum permittivity [F/m] — the paper's `e0`.
pub const EPS0: f64 = 8.8542e-12;

/// A parsed numeric expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct NumExpr {
    /// Expression tree.
    pub node: ExprNode,
    /// Covering span in the deck source.
    pub span: Span,
}

/// Expression tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprNode {
    /// Literal (SPICE suffixes already applied).
    Num(f64),
    /// Parameter reference (lower-cased).
    Ident(String),
    /// Negation.
    Neg(Box<NumExpr>),
    /// Binary operation.
    Bin(BinOp, Box<NumExpr>, Box<NumExpr>),
    /// Function call.
    Call(String, Vec<NumExpr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `**`
    Pow,
}

impl NumExpr {
    /// A literal expression (used for programmatic deck construction).
    pub fn literal(v: f64, span: Span) -> Self {
        NumExpr {
            node: ExprNode::Num(v),
            span,
        }
    }

    /// Evaluates against a parameter environment.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Elab`] for unknown parameters or
    /// function arity mismatches, pointing at this expression's span.
    pub fn eval(&self, params: &HashMap<String, f64>) -> Result<f64> {
        match &self.node {
            ExprNode::Num(v) => Ok(*v),
            ExprNode::Ident(name) => match name.as_str() {
                "pi" => Ok(std::f64::consts::PI),
                "eps0" | "e0" => Ok(EPS0),
                _ => params.get(name).copied().ok_or_else(|| {
                    NetlistError::elab_at(format!("unknown parameter `{name}`"), self.span)
                }),
            },
            ExprNode::Neg(inner) => Ok(-inner.eval(params)?),
            ExprNode::Bin(op, a, b) => {
                let (x, y) = (a.eval(params)?, b.eval(params)?);
                Ok(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Pow => x.powf(y),
                })
            }
            ExprNode::Call(name, args) => {
                let unary = |f: fn(f64) -> f64| -> Result<f64> {
                    if args.len() != 1 {
                        return Err(NetlistError::elab_at(
                            format!("`{name}` takes 1 argument, got {}", args.len()),
                            self.span,
                        ));
                    }
                    Ok(f(args[0].eval(params)?))
                };
                let binary = |f: fn(f64, f64) -> f64| -> Result<f64> {
                    if args.len() != 2 {
                        return Err(NetlistError::elab_at(
                            format!("`{name}` takes 2 arguments, got {}", args.len()),
                            self.span,
                        ));
                    }
                    Ok(f(args[0].eval(params)?, args[1].eval(params)?))
                };
                match name.as_str() {
                    "sin" => unary(f64::sin),
                    "cos" => unary(f64::cos),
                    "tan" => unary(f64::tan),
                    "sqrt" => unary(f64::sqrt),
                    "exp" => unary(f64::exp),
                    "ln" => unary(f64::ln),
                    "log10" => unary(f64::log10),
                    "abs" => unary(f64::abs),
                    "floor" => unary(f64::floor),
                    "ceil" => unary(f64::ceil),
                    "min" => binary(f64::min),
                    "max" => binary(f64::max),
                    "pow" => binary(f64::powf),
                    _ => Err(NetlistError::elab_at(
                        format!("unknown function `{name}`"),
                        self.span,
                    )),
                }
            }
        }
    }

    /// Parameter names this expression references (for dependency
    /// checks in `.PARAM` ordering).
    pub fn idents(&self, out: &mut Vec<String>) {
        match &self.node {
            ExprNode::Num(_) => {}
            ExprNode::Ident(n) => out.push(n.clone()),
            ExprNode::Neg(e) => e.idents(out),
            ExprNode::Bin(_, a, b) => {
                a.idents(out);
                b.idents(out);
            }
            ExprNode::Call(_, args) => {
                for a in args {
                    a.idents(out);
                }
            }
        }
    }
}

// ---------------------------------------------------------------
// Per-instance parameter scopes (hierarchical `.SUBCKT` elaboration)
// ---------------------------------------------------------------

/// How one name inside an instance scope gets its value.
#[derive(Debug, Clone)]
pub enum ScopeBinding<'d> {
    /// A `.SUBCKT` formal parameter: the optional call-site argument
    /// (evaluated in the **caller's** scope) and the optional declared
    /// default (evaluated in the instance scope, where outer
    /// parameters and earlier formals are visible).
    Formal {
        /// `name=expr` passed on the `X` card, if any.
        arg: Option<&'d NumExpr>,
        /// Default from the `PARAMS:` clause, if any.
        default: Option<&'d NumExpr>,
    },
    /// A body `.PARAM`, evaluated in the instance scope (shadows any
    /// outer parameter of the same name).
    Local(&'d NumExpr),
}

/// One named parameter of a scope, in evaluation order.
#[derive(Debug, Clone)]
pub struct ScopeParam<'d> {
    /// Lower-cased name (unqualified).
    pub name: String,
    /// Value source.
    pub binding: ScopeBinding<'d>,
    /// Span to blame for evaluation failures.
    pub span: Span,
}

/// One parameter scope of the flattened hierarchy. Scope 0 is the
/// deck's global scope (`path` empty); every subcircuit instance adds
/// a scope whose `path` is its hierarchical instance name (`x1`,
/// `x1.xcell`, …) and whose lookups fall back outward through
/// `parent`.
#[derive(Debug, Clone)]
pub struct ScopeInfo<'d> {
    /// Index of the enclosing scope (0 for the root itself).
    pub parent: usize,
    /// Hierarchical instance path ("" for the root).
    pub path: String,
    /// Parameters declared *in this scope*, in evaluation order
    /// (formals first, then body `.PARAM`s).
    pub params: Vec<ScopeParam<'d>>,
}

/// Joins a hierarchical prefix and a local name with `.` — the one
/// rule behind instance paths (`x1.r1`), private node names
/// (`x1.mid`), and parameter override keys (`x1.k`).
pub fn join_path(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

impl ScopeInfo<'_> {
    /// The override key of a parameter declared in this scope:
    /// `name` at the root, `path.name` inside an instance.
    pub fn qualified(&self, name: &str) -> String {
        join_path(&self.path, name)
    }
}

/// Evaluates every scope of the flattened hierarchy under `overrides`
/// (parents before children — construction order guarantees
/// `parent < child`). An override keyed on the qualified name wins
/// over the scope's own expression — this is how `.STEP`/`.MC`/`.DC
/// PARAM` points re-bind hierarchical parameters like `x1.gap`.
///
/// Each returned environment is self-contained: a clone of the parent
/// environment with this scope's parameters shadowed in, so inner
/// definitions hide outer ones and untouched outer names remain
/// visible to body expressions.
///
/// # Errors
///
/// Spanned expression failures, plus a diagnostic for a formal with
/// neither a call-site value nor a default.
pub fn eval_scopes<'d>(
    scopes: &[ScopeInfo<'d>],
    overrides: &HashMap<String, f64>,
) -> Result<Vec<HashMap<String, f64>>> {
    let mut envs: Vec<HashMap<String, f64>> = Vec::with_capacity(scopes.len());
    for (i, scope) in scopes.iter().enumerate() {
        let mut env = if i == 0 {
            HashMap::new()
        } else {
            envs[scope.parent].clone()
        };
        for p in &scope.params {
            let v = match overrides.get(&scope.qualified(&p.name)) {
                Some(o) => *o,
                None => match &p.binding {
                    ScopeBinding::Local(e) => e.eval(&env)?,
                    ScopeBinding::Formal { arg: Some(e), .. } => e.eval(&envs[scope.parent])?,
                    ScopeBinding::Formal {
                        arg: None,
                        default: Some(e),
                    } => e.eval(&env)?,
                    ScopeBinding::Formal {
                        arg: None,
                        default: None,
                    } => {
                        return Err(NetlistError::elab_at(
                            format!(
                                "parameter `{}` of subcircuit instance `{}` has no value and no default",
                                p.name, scope.path
                            ),
                            p.span,
                        ))
                    }
                },
            };
            env.insert(p.name.clone(), v);
        }
        envs.push(env);
    }
    Ok(envs)
}

/// Token-stream cursor shared with the card parser.
pub struct Cursor<'t> {
    tokens: &'t [Token],
    pos: usize,
    /// Span to blame for "unexpected end of card" errors.
    pub line_span: Span,
}

impl<'t> Cursor<'t> {
    /// Creates a cursor over a card's tokens.
    pub fn new(tokens: &'t [Token], line_span: Span) -> Self {
        Cursor {
            tokens,
            pos: 0,
            line_span,
        }
    }

    /// The next unconsumed token.
    pub fn peek(&self) -> Option<&'t Token> {
        self.tokens.get(self.pos)
    }

    /// Token `k` ahead of the cursor.
    pub fn peek_at(&self, k: usize) -> Option<&'t Token> {
        self.tokens.get(self.pos + k)
    }

    /// Consumes and returns the next token.
    // Not an `Iterator`: callers interleave `next` with `peek`-based
    // lookahead, and the cursor is shared across parse functions.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&'t Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// True when all tokens are consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Span at the cursor (end of line when exhausted).
    pub fn here(&self) -> Span {
        self.peek()
            .map_or(Span::new(self.line_span.end, self.line_span.end), |t| {
                t.span
            })
    }

    /// Consumes a token that must satisfy `kind`.
    pub fn expect(&mut self, kind: TokenKind, what: &str) -> Result<&'t Token> {
        match self.next() {
            Some(t) if t.kind == kind => Ok(t),
            Some(t) => Err(NetlistError::parse(
                format!("expected {what}, found `{}`", t.text),
                t.span,
            )),
            None => Err(NetlistError::parse(
                format!("expected {what} before end of card"),
                Span::new(self.line_span.end, self.line_span.end),
            )),
        }
    }

    /// Consumes a bare word and returns it.
    pub fn expect_word(&mut self, what: &str) -> Result<&'t Token> {
        self.expect(TokenKind::Word, what)
    }
}

/// Parses a full infix expression (used after `=` and inside braces
/// and parentheses).
pub fn parse_expr(c: &mut Cursor<'_>) -> Result<NumExpr> {
    parse_additive(c)
}

/// Parses an *argument*: sign + atom only. Infix operators are not
/// consumed at this level, so whitespace-separated argument lists like
/// `PULSE(0 -5 1m)` keep their SPICE meaning; wrap arithmetic in
/// braces or parentheses to opt in: `PULSE(0 {v2*2} 1m)`.
pub fn parse_arg(c: &mut Cursor<'_>) -> Result<NumExpr> {
    if let Some(t) = c.peek() {
        if t.kind == TokenKind::Op && (t.text == "-" || t.text == "+") {
            let neg = t.text == "-";
            let start = t.span;
            c.next();
            let inner = parse_atom(c)?;
            let span = start.merge(inner.span);
            return Ok(if neg {
                NumExpr {
                    node: ExprNode::Neg(Box::new(inner)),
                    span,
                }
            } else {
                NumExpr {
                    node: inner.node,
                    span,
                }
            });
        }
    }
    parse_atom(c)
}

fn parse_additive(c: &mut Cursor<'_>) -> Result<NumExpr> {
    let mut lhs = parse_multiplicative(c)?;
    while let Some(t) = c.peek() {
        let op = match (t.kind, t.text.as_str()) {
            (TokenKind::Op, "+") => BinOp::Add,
            (TokenKind::Op, "-") => BinOp::Sub,
            _ => break,
        };
        c.next();
        let rhs = parse_multiplicative(c)?;
        let span = lhs.span.merge(rhs.span);
        lhs = NumExpr {
            node: ExprNode::Bin(op, Box::new(lhs), Box::new(rhs)),
            span,
        };
    }
    Ok(lhs)
}

fn parse_multiplicative(c: &mut Cursor<'_>) -> Result<NumExpr> {
    let mut lhs = parse_unary(c)?;
    while let Some(t) = c.peek() {
        let op = match (t.kind, t.text.as_str()) {
            (TokenKind::Op, "*") => BinOp::Mul,
            (TokenKind::Op, "/") => BinOp::Div,
            _ => break,
        };
        c.next();
        let rhs = parse_unary(c)?;
        let span = lhs.span.merge(rhs.span);
        lhs = NumExpr {
            node: ExprNode::Bin(op, Box::new(lhs), Box::new(rhs)),
            span,
        };
    }
    Ok(lhs)
}

fn parse_unary(c: &mut Cursor<'_>) -> Result<NumExpr> {
    if let Some(t) = c.peek() {
        if t.kind == TokenKind::Op && (t.text == "-" || t.text == "+") {
            let neg = t.text == "-";
            let start = t.span;
            c.next();
            let inner = parse_unary(c)?;
            let span = start.merge(inner.span);
            return Ok(if neg {
                NumExpr {
                    node: ExprNode::Neg(Box::new(inner)),
                    span,
                }
            } else {
                inner
            });
        }
    }
    parse_power(c)
}

fn parse_power(c: &mut Cursor<'_>) -> Result<NumExpr> {
    let base = parse_atom(c)?;
    if let Some(t) = c.peek() {
        if t.kind == TokenKind::Op && t.text == "**" {
            c.next();
            let exp = parse_unary(c)?; // right-associative
            let span = base.span.merge(exp.span);
            return Ok(NumExpr {
                node: ExprNode::Bin(BinOp::Pow, Box::new(base), Box::new(exp)),
                span,
            });
        }
    }
    Ok(base)
}

fn parse_atom(c: &mut Cursor<'_>) -> Result<NumExpr> {
    let t = match c.next() {
        Some(t) => t,
        None => {
            return Err(NetlistError::parse(
                "expected a value before end of card",
                Span::new(c.line_span.end, c.line_span.end),
            ))
        }
    };
    match t.kind {
        TokenKind::Word => {
            if let Some(v) = parse_number(&t.text) {
                return Ok(NumExpr::literal(v, t.span));
            }
            let name = t.lower();
            if !name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            {
                return Err(NetlistError::parse(
                    format!("`{}` is neither a number nor a parameter name", t.text),
                    t.span,
                ));
            }
            // Function call?
            if c.peek().is_some_and(|p| p.kind == TokenKind::LParen) {
                c.next(); // (
                let mut args = Vec::new();
                loop {
                    if c.peek().is_some_and(|p| p.kind == TokenKind::RParen) {
                        break;
                    }
                    args.push(parse_expr(c)?);
                    if c.peek().is_some_and(|p| p.kind == TokenKind::Comma) {
                        c.next();
                    }
                }
                let close = c.expect(TokenKind::RParen, "`)`")?;
                return Ok(NumExpr {
                    node: ExprNode::Call(name, args),
                    span: t.span.merge(close.span),
                });
            }
            Ok(NumExpr {
                node: ExprNode::Ident(name),
                span: t.span,
            })
        }
        TokenKind::LBrace => {
            let inner = parse_expr(c)?;
            let close = c.expect(TokenKind::RBrace, "`}`")?;
            Ok(NumExpr {
                node: inner.node,
                span: t.span.merge(close.span),
            })
        }
        TokenKind::LParen => {
            let inner = parse_expr(c)?;
            let close = c.expect(TokenKind::RParen, "`)`")?;
            Ok(NumExpr {
                node: inner.node,
                span: t.span.merge(close.span),
            })
        }
        _ => Err(NetlistError::parse(
            format!("expected a value, found `{}`", t.text),
            t.span,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::lex;

    fn eval_str(src: &str, params: &[(&str, f64)]) -> Result<f64> {
        let deck = format!("t\n.param x={src}\n");
        let lexed = lex(&deck).unwrap();
        let mut c = Cursor::new(&lexed.lines[0].tokens[3..], lexed.lines[0].span);
        let e = parse_expr(&mut c)?;
        assert!(c.at_end(), "leftover tokens");
        let env: HashMap<String, f64> = params.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        e.eval(&env)
    }

    #[test]
    fn precedence_and_suffixes() {
        assert_eq!(eval_str("1+2*3", &[]).unwrap(), 7.0);
        assert_eq!(eval_str("{(1+2)*3}", &[]).unwrap(), 9.0);
        assert_eq!(eval_str("2**3**2", &[]).unwrap(), 512.0); // right assoc
        assert_eq!(eval_str("1k+1", &[]).unwrap(), 1001.0);
        assert_eq!(eval_str("-2*3", &[]).unwrap(), -6.0);
    }

    #[test]
    fn params_and_functions() {
        assert_eq!(eval_str("a*b", &[("a", 3.0), ("b", 4.0)]).unwrap(), 12.0);
        assert!((eval_str("sqrt(2)", &[]).unwrap() - 2f64.sqrt()).abs() < 1e-15);
        assert!((eval_str("2*pi", &[]).unwrap() - std::f64::consts::TAU).abs() < 1e-15);
        assert_eq!(eval_str("max(2, 5)", &[]).unwrap(), 5.0);
        assert!((eval_str("eps0", &[]).unwrap() - 8.8542e-12).abs() < 1e-25);
    }

    #[test]
    fn unknown_parameter_reports_span() {
        let err = eval_str("2*mystery", &[]).unwrap_err();
        assert!(err.to_string().contains("unknown parameter `mystery`"));
        assert!(err.span().is_some());
    }

    #[test]
    fn bad_arity_is_reported() {
        let err = eval_str("sqrt(1, 2)", &[]).unwrap_err();
        assert!(err.to_string().contains("takes 1 argument"));
    }
}
