//! Deck lexer: physical lines → logical lines → spanned tokens.
//!
//! SPICE decks are line-oriented: the first line is the title, `*`
//! starts a comment line, `;` a trailing comment, and a leading `+`
//! continues the previous card. `.HDL … .ENDHDL` blocks are captured
//! raw (the HDL-A compiler has its own front end). Every token keeps
//! its byte span into the original deck text so diagnostics point at
//! real source.

use crate::error::{NetlistError, Result};
use mems_hdl::span::Span;

/// What a token lexically is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier / card name / node name / unit-suffixed number —
    /// any bare word.
    Word,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `=`
    Eq,
    /// `,`
    Comma,
    /// `:` (the `PARAMS:` keyword of `.SUBCKT` headers)
    Colon,
    /// `+`, `-`, `*`, `/`, `**` — expression operators.
    Op,
    /// A double-quoted string (quotes stripped in `text`).
    Str,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind of token.
    pub kind: TokenKind,
    /// Raw text (original case preserved; quotes stripped for `Str`).
    pub text: String,
    /// Byte span in the deck source.
    pub span: Span,
}

impl Token {
    /// Lower-cased text (SPICE cards are case-insensitive).
    pub fn lower(&self) -> String {
        self.text.to_ascii_lowercase()
    }

    /// Case-insensitive keyword match.
    pub fn is(&self, kw: &str) -> bool {
        self.text.eq_ignore_ascii_case(kw)
    }
}

/// One logical card: tokens of a line plus its continuations.
#[derive(Debug, Clone)]
pub struct LogicalLine {
    /// The card's tokens in order.
    pub tokens: Vec<Token>,
    /// Span covering the full logical line.
    pub span: Span,
}

/// A raw `.HDL`/`.ENDHDL` (or `.INCLUDE`d) HDL-A source block.
#[derive(Debug, Clone)]
pub struct RawBlock {
    /// The verbatim HDL-A source text.
    pub text: String,
    /// Where the block sits in the deck (the `.HDL` card for inline
    /// blocks; the `.INCLUDE` card for included files).
    pub span: Span,
}

/// Lexer output: title, cards, raw HDL blocks.
#[derive(Debug, Clone)]
pub struct LexedDeck {
    /// The deck's first line, verbatim.
    pub title: String,
    /// Logical card lines in deck order (dot cards included; `.HDL`
    /// block bodies and `.END` excluded).
    pub lines: Vec<LogicalLine>,
    /// Inline `.HDL … .ENDHDL` blocks in deck order.
    pub hdl_blocks: Vec<RawBlock>,
}

/// Splits the deck into logical lines and raw HDL blocks.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for stray continuations, unclosed
/// `.HDL` blocks, unterminated strings, or characters the deck syntax
/// has no meaning for.
pub fn lex(src: &str) -> Result<LexedDeck> {
    let mut lines_iter = line_spans(src).into_iter();
    let title = match lines_iter.next() {
        Some((s, e)) => src[s..e].trim().to_string(),
        None => String::new(),
    };

    let mut lines: Vec<LogicalLine> = Vec::new();
    let mut hdl_blocks: Vec<RawBlock> = Vec::new();
    let mut in_hdl: Option<(usize, usize)> = None; // (card start, body start)
    let mut ended = false;

    for (start, end) in lines_iter {
        let line = &src[start..end];
        let trimmed = line.trim_start();
        let indent = line.len() - trimmed.len();
        if let Some((hdl_span_start, body_start)) = in_hdl {
            if trimmed.to_ascii_lowercase().starts_with(".endhdl") {
                hdl_blocks.push(RawBlock {
                    text: src[body_start..start].to_string(),
                    span: Span::new(hdl_span_start, start + indent + ".endhdl".len()),
                });
                in_hdl = None;
            }
            continue;
        }
        if ended || trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        let lower = trimmed.to_ascii_lowercase();
        if lower.starts_with(".hdl") && lower[4..].trim().is_empty() {
            in_hdl = Some((start + indent, end + 1));
            continue;
        }
        if lower == ".end" || lower.starts_with(".end ") {
            ended = true;
            continue;
        }
        let tokens = lex_line(src, start + indent, end)?;
        if tokens.is_empty() {
            continue;
        }
        if trimmed.starts_with('+') {
            // Continuation: splice onto the previous card (minus the
            // leading `+` operator token).
            match lines.last_mut() {
                Some(prev) => {
                    prev.span = prev.span.merge(Span::new(start + indent, end));
                    prev.tokens.extend(tokens.into_iter().skip(1));
                }
                None => {
                    return Err(NetlistError::parse(
                        "continuation line with no card to continue",
                        Span::new(start + indent, start + indent + 1),
                    ))
                }
            }
            continue;
        }
        lines.push(LogicalLine {
            span: Span::new(start + indent, end),
            tokens,
        });
    }
    if let Some((hdl_start, _)) = in_hdl {
        return Err(NetlistError::parse(
            "`.HDL` block is never closed by `.ENDHDL`",
            Span::new(hdl_start, hdl_start + 4),
        ));
    }
    Ok(LexedDeck {
        title,
        lines,
        hdl_blocks,
    })
}

/// Byte ranges of each line (newline excluded; a CR before the LF is
/// excluded too, so CRLF decks lex like LF ones).
fn line_spans(src: &str) -> Vec<(usize, usize)> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, c) in src.char_indices() {
        if c == '\n' {
            let end = if i > start && bytes[i - 1] == b'\r' {
                i - 1
            } else {
                i
            };
            out.push((start, end));
            start = i + 1;
        }
    }
    if start < src.len() {
        let mut end = src.len();
        if bytes[end - 1] == b'\r' {
            end -= 1;
        }
        out.push((start, end));
    }
    out
}

/// Tokenizes one physical line `[start, end)`.
fn lex_line(src: &str, start: usize, end: usize) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = start;
    while i < end {
        let c = bytes[i] as char;
        if c == ';' {
            break; // trailing comment
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let tok_start = i;
        let (kind, len) = match c {
            '(' => (TokenKind::LParen, 1),
            ')' => (TokenKind::RParen, 1),
            '{' => (TokenKind::LBrace, 1),
            '}' => (TokenKind::RBrace, 1),
            '=' => (TokenKind::Eq, 1),
            ',' => (TokenKind::Comma, 1),
            ':' => (TokenKind::Colon, 1),
            '+' | '-' | '/' => (TokenKind::Op, 1),
            '*' => {
                if i + 1 < end && bytes[i + 1] == b'*' {
                    (TokenKind::Op, 2)
                } else {
                    (TokenKind::Op, 1)
                }
            }
            '"' => {
                let mut j = i + 1;
                while j < end && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= end {
                    return Err(NetlistError::parse(
                        "unterminated string",
                        Span::new(i, end),
                    ));
                }
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: src[i + 1..j].to_string(),
                    span: Span::new(i, j + 1),
                });
                i = j + 1;
                continue;
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '.' => {
                let mut j = i;
                while j < end {
                    let cj = bytes[j] as char;
                    // A sign is part of the word only as an exponent
                    // sign inside a number: 1e-6.
                    let exponent_sign = (cj == '+' || cj == '-')
                        && j > i
                        && matches!(bytes[j - 1], b'e' | b'E')
                        && (bytes[i] as char).is_ascii_digit()
                        && j + 1 < end
                        && (bytes[j + 1] as char).is_ascii_digit();
                    if cj.is_ascii_alphanumeric() || cj == '_' || cj == '.' || exponent_sign {
                        j += 1;
                    } else {
                        break;
                    }
                }
                (TokenKind::Word, j - i)
            }
            other => {
                return Err(NetlistError::parse(
                    format!("unexpected character `{other}`"),
                    Span::new(i, i + other.len_utf8()),
                ))
            }
        };
        tokens.push(Token {
            kind,
            text: src[tok_start..tok_start + len].to_string(),
            span: Span::new(tok_start, tok_start + len),
        });
        i = tok_start + len;
    }
    Ok(tokens)
}

/// Parses a SPICE-style number with magnitude suffix: `1k`, `2.5m`,
/// `10MEG`, `1e-6`, `100n`, `10pF` (trailing unit letters ignored).
pub fn parse_number(text: &str) -> Option<f64> {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    // Mantissa: digits [. digits] [e [+|-] digits]
    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' {
        i += 1;
        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
            i += 1;
        }
    }
    if i == 0 || (i == 1 && bytes[0] == b'.') {
        return None;
    }
    if i < bytes.len() && matches!(bytes[i], b'e' | b'E') {
        let mut j = i + 1;
        if j < bytes.len() && matches!(bytes[j], b'+' | b'-') {
            j += 1;
        }
        let digits_start = j;
        while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
            j += 1;
        }
        if j > digits_start {
            i = j;
        }
    }
    let mantissa: f64 = text[..i].parse().ok()?;
    let suffix = text[i..].to_ascii_lowercase();
    if !suffix.chars().all(|c| c.is_ascii_alphabetic()) {
        return None;
    }
    let scale = if suffix.starts_with("meg") {
        1e6
    } else if suffix.starts_with("mil") {
        25.4e-6
    } else {
        match suffix.chars().next() {
            None => 1.0,
            Some('t') => 1e12,
            Some('g') => 1e9,
            Some('k') => 1e3,
            Some('m') => 1e-3,
            Some('u') => 1e-6,
            Some('n') => 1e-9,
            Some('p') => 1e-12,
            Some('f') => 1e-15,
            // Any other letters are a unit annotation (V, A, Hz, …).
            Some(_) => 1.0,
        }
    };
    Some(mantissa * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Option<f64>, b: f64) {
        let a = a.expect("parses");
        assert!((a - b).abs() <= b.abs() * 1e-12, "{a} vs {b}");
    }

    #[test]
    fn numbers_with_suffixes() {
        close(parse_number("1k"), 1e3);
        close(parse_number("10MEG"), 1e7);
        close(parse_number("2.5m"), 2.5e-3);
        close(parse_number("100n"), 1e-7);
        close(parse_number("1e-6"), 1e-6);
        close(parse_number("10pF"), 1e-11);
        close(parse_number("3.3V"), 3.3);
        assert_eq!(parse_number("1e"), Some(1.0)); // bare e → unit letter
        assert_eq!(parse_number("abc"), None);
        assert_eq!(parse_number(""), None);
    }

    #[test]
    fn title_comments_continuations() {
        let deck = "my deck\n* a comment\nR1 a b 1k\n+ ; trailing only\nV1 a 0 DC 5\n";
        let lexed = lex(deck).unwrap();
        assert_eq!(lexed.title, "my deck");
        assert_eq!(lexed.lines.len(), 2);
        assert_eq!(lexed.lines[0].tokens[0].text, "R1");
        assert_eq!(lexed.lines[1].tokens[0].text, "V1");
    }

    #[test]
    fn continuation_merges_tokens() {
        let deck = "t\nV1 in 0 PWL(0 0\n+ 1m 5)\n";
        let lexed = lex(deck).unwrap();
        assert_eq!(lexed.lines.len(), 1);
        let texts: Vec<&str> = lexed.lines[0]
            .tokens
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(
            texts,
            vec!["V1", "in", "0", "PWL", "(", "0", "0", "1m", "5", ")"]
        );
    }

    #[test]
    fn hdl_blocks_are_captured_raw() {
        let deck = "t\n.HDL\nENTITY e IS\n* not a comment here\nEND ENTITY e;\n.ENDHDL\nR1 a 0 1\n";
        let lexed = lex(deck).unwrap();
        assert_eq!(lexed.hdl_blocks.len(), 1);
        assert!(lexed.hdl_blocks[0].text.contains("* not a comment here"));
        assert_eq!(lexed.lines.len(), 1);
    }

    #[test]
    fn unclosed_hdl_is_an_error() {
        let deck = "t\n.HDL\nENTITY e IS\n";
        let err = lex(deck).unwrap_err();
        assert!(err.to_string().contains("never closed"));
    }

    #[test]
    fn end_card_stops_lexing() {
        let deck = "t\nR1 a 0 1\n.END\ngarbage $$$\n";
        let lexed = lex(deck).unwrap();
        assert_eq!(lexed.lines.len(), 1);
    }

    #[test]
    fn stray_continuation_is_an_error() {
        let deck = "t\n+ R1 a 0 1\n";
        assert!(lex(deck).is_err());
    }

    #[test]
    fn crlf_decks_lex_like_lf_decks() {
        let deck = "t\r\nR1 a 0 1k\r\n.END\r\ngarbage\r\n";
        let lexed = lex(deck).unwrap();
        assert_eq!(lexed.title, "t");
        assert_eq!(lexed.lines.len(), 1);
        let texts: Vec<&str> = lexed.lines[0]
            .tokens
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(texts, vec!["R1", "a", "0", "1k"]);
        // Final line without a trailing newline keeps its CR out too.
        let lexed = lex("t\r\nV1 a 0 5\r").unwrap();
        assert_eq!(lexed.lines[0].tokens.last().unwrap().text, "5");
    }

    #[test]
    fn spans_point_into_source() {
        let deck = "t\nR1 node1 0 4.7k\n";
        let lexed = lex(deck).unwrap();
        let tok = &lexed.lines[0].tokens[3];
        assert_eq!(tok.span.slice(deck), "4.7k");
    }
}
