//! # mems-netlist — SPICE-deck frontend and batch scenario runner
//!
//! The paper's premise is that "SPICE simulators may be used as lumped
//! parameter analog solvers" for electromechanical transducers — and a
//! SPICE simulator is *driven by decks*. This crate turns the
//! `mems-spice` library into a tool: a deck parser with spanned
//! diagnostics, an elaborator lowering decks to
//! [`mems_spice::Circuit`]s, analysis dispatch, and a parallel
//! `.STEP`/`.MC` batch engine with deterministic seeded sampling.
//!
//! ## Deck format
//!
//! Line-oriented SPICE style: first line is the title, `*` comments,
//! `;` trailing comments, `+` continuations, `.END` stops parsing.
//! Values take SPICE magnitude suffixes (`1k`, `10MEG`, `2.5u`) and
//! `{…}` parameter expressions.
//!
//! Device cards (letters are case-insensitive):
//!
//! | card | device |
//! |------|--------|
//! | `Rxx a b v` / `Cxx` / `Lxx` | resistor / capacitor / inductor |
//! | `Vxx a b <wave>` / `Ixx` | sources (`DC`, `PULSE`, `SIN`, `PWL`, `EXP`; optional `AC mag [phase]`) |
//! | `Exx`/`Gxx`/`Fxx`/`Hxx o+ o− c+ c− g` | the four controlled sources |
//! | `Bxx o+ o− c1+ c1− c2+ c2− k` | product source `i = k·v1·v2` |
//! | `Mxx v 0 m` / `Kxx` / `Dxx` | mass / spring / damper (mechanical sugar; nodes default to `mechanical1`) |
//! | `Txx p1 n1 p2 n2 n` / `Yxx … g` | ideal transformer / gyrator |
//! | `Xxx n1 … callee [p=v …]` | subcircuit or HDL-A entity instance |
//!
//! Dot cards: `.PARAM name=expr`, `.NODE <nature> n…` (typed
//! multi-nature nodes), `.SUBCKT`/`.ENDS` (hierarchical definitions,
//! below), `.HDL`/`.ENDHDL` (inline HDL-A source), `.INCLUDE "file"`
//! (HDL-A source *or* a deck-fragment library from disk), `.OP`,
//! `.DC`, `.AC`, `.TRAN`, `.PRINT`, `.OPTIONS`, `.STEP`, `.MC`,
//! `.END`.
//!
//! ## Hierarchy: `.SUBCKT` / `.ENDS`
//!
//! ```text
//! .SUBCKT cell drive vel PARAMS: m=1e-4 k=200
//! Rs drive mid 10          ; `mid` is private: flattens to x1.mid
//! Kk vel 0 {k}             ; flattens to x1.kk
//! .param kk2={k*2}         ; local .PARAM, shadows any outer `kk2`
//! .ENDS cell
//! X1 in v1 cell k=250      ; named overrides; `in`/`v1` bind the ports
//! ```
//!
//! An `X` card is a unified call: positional nodes, then named
//! parameter overrides. The callee resolves to a `.SUBCKT` definition
//! first, else to an HDL-A entity. Subcircuits flatten recursively
//! (cycles, port-arity mismatches, and unknown parameter names are
//! spanned diagnostics) with per-instance **parameter scopes**:
//! formals (call-site args evaluated in the caller's scope; defaults
//! in the instance scope) and body `.PARAM`s shadow outer names,
//! while unshadowed outer parameters stay visible. Ground (`0`/`gnd`)
//! is shared; every other body node is private per instance and
//! surfaces as `x1.mid` — addressable from `.PRINT`, probes, and CSV/
//! JSON reports. `.STEP`/`.MC`/`.DC PARAM` accept hierarchical
//! parameter paths (`x1.k`, `x1.xleg.gap`) and `.DC` sweeps sources
//! by path (`x1.vs`); all of it rides the elaborate-once batch path —
//! circuits are flattened once and re-bound in place per point.
//!
//! `.SUBCKT` definitions (nested ones included) are hoisted into one
//! global, duplicate-checked table. `.INCLUDE` accepts library
//! fragments — files whose first card is a dot card — holding
//! `.SUBCKT`/`.PARAM`/`.HDL` cards; fragments are spliced into the
//! deck's virtual source, so their diagnostics carry real excerpts.
//!
//! ## Example
//!
//! ```
//! use mems_netlist::{Deck, run_deck, AnalysisOutcome};
//!
//! # fn main() -> mems_netlist::Result<()> {
//! let deck = Deck::parse(
//!     "paper fig. 3 resonator\n\
//!      .param k=200 m=1e-4 alpha=40e-3\n\
//!      Is 0 vel PWL(0 0 0.1m 1u)   ; 1 uN step force\n\
//!      Mm1 vel 0 {m}\n\
//!      Kk1 vel 0 {k}\n\
//!      Dd1 vel 0 {alpha}\n\
//!      .tran 0.5m 50m\n\
//!      .print tran v(vel)\n",
//! )?;
//! let run = run_deck(&deck)?;
//! match &run.outcomes[0].1 {
//!     AnalysisOutcome::Tran(tr) => {
//!         let x = tr.integrated_trace("v(vel)", 0.0).unwrap();
//!         assert!((x.last().unwrap() - 5e-9).abs() < 1e-9); // F/k
//!     }
//!     _ => unreachable!(),
//! }
//! # Ok(())
//! # }
//! ```
//!
//! The batch engine ([`run_batch`]) expands `.STEP` sweeps and `.MC`
//! Monte Carlo into a point list and runs points across worker
//! threads — each worker elaborates the deck once and patches device
//! parameters in place per point; sampling is keyed on `(seed, point,
//! variable)` so results are independent of thread count.

pub mod ast;
pub mod batch;
pub mod elab;
pub mod error;
pub mod expr;
pub mod gen;
pub mod parser;
pub mod report;
pub mod token;

pub use ast::{AnalysisCard, Deck, DeviceCard};
pub use batch::{
    batch_points, batch_points_with, extract_metrics, run_batch, warm_start_chain, BatchOptions,
    BatchPoint, BatchResult, CancelToken, Metric, PointResult, CANCELLED_POINT,
};
pub use elab::{
    deck_fingerprint, run_deck, run_deck_with, run_elaborated, run_elaborated_ctx, AnalysisOutcome,
    DeckRun, Elaborator, ParamEnv, RunCtx, RunStats,
};
pub use error::{NetlistError, Result};
pub use mems_spice::system::SolverStats;
pub use parser::{FsResolver, IncludeResolver, NoIncludes};
