//! Deck AST: spanned cards as parsed, before elaboration.

use crate::expr::NumExpr;
use crate::token::RawBlock;
use mems_hdl::span::Span;
use mems_hdl::Nature;

/// A parsed deck.
#[derive(Debug, Clone)]
pub struct Deck {
    /// Title (first line, verbatim).
    pub title: String,
    /// The full deck source (spans index into this).
    pub source: String,
    /// Device cards in deck order.
    pub devices: Vec<DeviceCard>,
    /// `.PARAM` definitions in deck order.
    pub params: Vec<ParamDef>,
    /// `.NODE` nature declarations.
    pub node_decls: Vec<NodeDecl>,
    /// `.SUBCKT` definitions (one global table — nested and
    /// `.INCLUDE`d definitions are hoisted here; names are unique).
    pub subckts: Vec<SubcktDef>,
    /// HDL-A source blocks (inline `.HDL` + `.INCLUDE`d files).
    pub hdl_blocks: Vec<RawBlock>,
    /// Analysis cards in deck order.
    pub analyses: Vec<AnalysisCard>,
    /// `.STEP` sweep, when present.
    pub step: Option<StepCard>,
    /// `.MC` Monte Carlo, when present.
    pub mc: Option<McCard>,
    /// `.PRINT` trace selections (shared by all analyses).
    pub prints: Vec<PrintCard>,
    /// `.OPTIONS` overrides applied to [`mems_spice::SimOptions`].
    pub options: Vec<(String, NumExpr)>,
}

impl Deck {
    /// Looks up a `.SUBCKT` definition by (lower-cased) name.
    pub fn subckt(&self, name: &str) -> Option<&SubcktDef> {
        self.subckts.iter().find(|s| s.name == name)
    }

    /// Labels the deck selects for one analysis kind: `.PRINT` cards
    /// filtered to the available label set, falling back to every
    /// available label when no `.PRINT` selection matches.
    pub fn print_labels(&self, kind: &str, all: &[String]) -> Vec<String> {
        let chosen: Vec<String> = self
            .prints
            .iter()
            .filter(|p| p.analysis.as_deref().is_none_or(|a| a == kind))
            .flat_map(|p| p.labels.iter().cloned())
            .filter(|l| all.contains(l))
            .collect();
        if chosen.is_empty() {
            all.to_vec()
        } else {
            chosen
        }
    }
}

/// `.PARAM name = expr`.
#[derive(Debug, Clone)]
pub struct ParamDef {
    /// Lower-cased parameter name.
    pub name: String,
    /// Defining expression (may reference earlier parameters).
    pub value: NumExpr,
    /// Span of the definition.
    pub span: Span,
}

/// A formal parameter of a `.SUBCKT` header (`PARAMS: name=default`).
#[derive(Debug, Clone)]
pub struct FormalParam {
    /// Lower-cased parameter name.
    pub name: String,
    /// Default value, evaluated in the instance scope (outer
    /// parameters and earlier formals visible). `None` means the
    /// caller must pass a value.
    pub default: Option<NumExpr>,
    /// Span of the formal's name in the header.
    pub span: Span,
}

/// A `.SUBCKT name ports… [PARAMS: k=v …]` … `.ENDS` definition.
///
/// The body is a scoped sub-deck: device cards, local `.PARAM`s, and
/// `.NODE` declarations. Body node names that are not ports (and not
/// ground) are private to each instance and surface flattened as
/// `<instance-path>.<name>`.
#[derive(Debug, Clone)]
pub struct SubcktDef {
    /// Lower-cased subcircuit name.
    pub name: String,
    /// Port node names in header order.
    pub ports: Vec<String>,
    /// Formal parameters (`PARAMS:` clause).
    pub formals: Vec<FormalParam>,
    /// Body device cards in definition order.
    pub devices: Vec<DeviceCard>,
    /// Body `.PARAM` definitions (evaluated in the instance scope,
    /// shadowing outer parameters).
    pub params: Vec<ParamDef>,
    /// Body `.NODE` declarations (names mapped per instance).
    pub node_decls: Vec<NodeDecl>,
    /// Span of the `.SUBCKT` header card.
    pub span: Span,
}

/// `.NODE <nature> n1 [n2 …]`.
#[derive(Debug, Clone)]
pub struct NodeDecl {
    /// Declared nature.
    pub nature: Nature,
    /// Lower-cased node names.
    pub nodes: Vec<String>,
    /// Span of the card.
    pub span: Span,
}

/// Passive two-terminal element kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassiveKind {
    /// `R` — resistor [Ω].
    Resistor,
    /// `C` — capacitor [F].
    Capacitor,
    /// `L` — inductor [H].
    Inductor,
    /// `M` — mass [kg] (mechanical sugar, force–current analogy).
    Mass,
    /// `K` — spring stiffness [N/m] (mechanical sugar).
    Spring,
    /// `D` — damper [N·s/m] (mechanical sugar).
    Damper,
}

/// Independent source kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// `V` — across source (voltage / velocity / …).
    Voltage,
    /// `I` — through source (current / force / …).
    Current,
}

/// Linear controlled-source kinds (the four SPICE letters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlledKind {
    /// `E` — VCVS.
    Vcvs,
    /// `G` — VCCS.
    Vccs,
    /// `F` — CCCS (senses its own zero-volt branch).
    Cccs,
    /// `H` — CCVS (senses its own zero-volt branch).
    Ccvs,
}

/// Ideal two-port coupler kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoPortKind {
    /// `T` — ideal transformer (ratio `n = v1/v2`).
    Transformer,
    /// `Y` — gyrator (gyration conductance `g`).
    Gyrator,
}

/// Source waveform specification (arguments are expressions).
#[derive(Debug, Clone)]
pub enum WaveSpec {
    /// `DC v` (or a bare value).
    Dc(NumExpr),
    /// `PULSE(v1 v2 delay rise fall width [period])`.
    Pulse(Vec<NumExpr>),
    /// `SIN(offset ampl freq [delay [theta]])`.
    Sin(Vec<NumExpr>),
    /// `PWL(t1 v1 t2 v2 …)`.
    Pwl(Vec<NumExpr>),
    /// `EXP(v1 v2 td1 tau1 td2 tau2)`.
    Exp(Vec<NumExpr>),
}

/// One device card.
#[derive(Debug, Clone)]
pub enum DeviceCard {
    /// R / C / L / M / K / D.
    Passive {
        /// Element kind.
        kind: PassiveKind,
        /// Instance name (deck spelling, lower-cased).
        name: String,
        /// Positive node.
        a: String,
        /// Negative node.
        b: String,
        /// Element value.
        value: NumExpr,
        /// Card span.
        span: Span,
    },
    /// V / I with waveform and optional AC stimulus.
    Source {
        /// Source kind.
        kind: SourceKind,
        /// Instance name.
        name: String,
        /// Positive node.
        a: String,
        /// Negative node.
        b: String,
        /// Large-signal waveform.
        wave: WaveSpec,
        /// Small-signal `AC mag [phase]` stimulus.
        ac: Option<(NumExpr, Option<NumExpr>)>,
        /// Card span.
        span: Span,
    },
    /// E / G / F / H.
    Controlled {
        /// Controlled-source kind.
        kind: ControlledKind,
        /// Instance name.
        name: String,
        /// `[out_p, out_n, ctrl_p, ctrl_n]`.
        nodes: [String; 4],
        /// Gain / transconductance / transresistance.
        value: NumExpr,
        /// Card span.
        span: Span,
    },
    /// `B` — product source `i = k·v(c1)·v(c2)`.
    Product {
        /// Instance name.
        name: String,
        /// `[out_p, out_n, c1p, c1n, c2p, c2n]`.
        nodes: [String; 6],
        /// Product coefficient.
        value: NumExpr,
        /// Card span.
        span: Span,
    },
    /// T / Y.
    TwoPort {
        /// Coupler kind.
        kind: TwoPortKind,
        /// Instance name.
        name: String,
        /// `[p1, n1, p2, n2]`.
        nodes: [String; 4],
        /// Ratio / conductance.
        value: NumExpr,
        /// Card span.
        span: Span,
    },
    /// `X` — the unified call card: positional node connections plus
    /// named parameter overrides, resolving to either a `.SUBCKT`
    /// definition (flattened recursively) or an HDL-A entity.
    Call {
        /// Instance name.
        name: String,
        /// Positional node connections.
        nodes: Vec<String>,
        /// Callee name (lower-cased): a subcircuit or an entity.
        callee: String,
        /// Span of the callee-name token (for "unknown subcircuit or
        /// entity" diagnostics).
        callee_span: Span,
        /// `name=expr` parameter / generic overrides, evaluated in
        /// the caller's scope.
        args: Vec<(String, NumExpr)>,
        /// Card span.
        span: Span,
    },
}

impl DeviceCard {
    /// Instance name of the card.
    pub fn name(&self) -> &str {
        match self {
            DeviceCard::Passive { name, .. }
            | DeviceCard::Source { name, .. }
            | DeviceCard::Controlled { name, .. }
            | DeviceCard::Product { name, .. }
            | DeviceCard::TwoPort { name, .. }
            | DeviceCard::Call { name, .. } => name,
        }
    }

    /// Card span.
    pub fn span(&self) -> Span {
        match self {
            DeviceCard::Passive { span, .. }
            | DeviceCard::Source { span, .. }
            | DeviceCard::Controlled { span, .. }
            | DeviceCard::Product { span, .. }
            | DeviceCard::TwoPort { span, .. }
            | DeviceCard::Call { span, .. } => *span,
        }
    }
}

/// An analysis request.
#[derive(Debug, Clone)]
pub enum AnalysisCard {
    /// `.OP`.
    Op {
        /// Card span.
        span: Span,
    },
    /// `.DC <source>|PARAM <name> start stop step`.
    Dc {
        /// What is swept.
        sweep: DcSweepVar,
        /// Start value.
        start: NumExpr,
        /// Stop value (inclusive within step rounding).
        stop: NumExpr,
        /// Increment (sign-corrected at elaboration).
        step: NumExpr,
        /// Card span.
        span: Span,
    },
    /// `.AC DEC|LIN n fstart fstop` or `.AC LIST f1 f2 …`.
    Ac {
        /// Sweep shape.
        sweep: AcSweepSpec,
        /// Card span.
        span: Span,
    },
    /// `.TRAN tstep tstop`.
    Tran {
        /// Suggested (initial/maximum) step.
        tstep: NumExpr,
        /// Horizon.
        tstop: NumExpr,
        /// Use a fixed step instead of LTE-adaptive stepping.
        fixed: bool,
        /// Card span.
        span: Span,
    },
}

impl AnalysisCard {
    /// Short kind name (for tables and metric labels).
    pub fn kind_name(&self) -> &'static str {
        match self {
            AnalysisCard::Op { .. } => "op",
            AnalysisCard::Dc { .. } => "dc",
            AnalysisCard::Ac { .. } => "ac",
            AnalysisCard::Tran { .. } => "tran",
        }
    }

    /// Card span.
    pub fn span(&self) -> Span {
        match self {
            AnalysisCard::Op { span }
            | AnalysisCard::Dc { span, .. }
            | AnalysisCard::Ac { span, .. }
            | AnalysisCard::Tran { span, .. } => *span,
        }
    }
}

/// What a `.DC` card sweeps.
#[derive(Debug, Clone)]
pub enum DcSweepVar {
    /// An independent source's DC level, by instance name.
    Source(String),
    /// A `.PARAM` value, by name.
    Param(String),
}

/// `.AC` sweep shape.
#[derive(Debug, Clone)]
pub enum AcSweepSpec {
    /// Logarithmic, `n` points per decade.
    Decade {
        /// Points per decade.
        n: NumExpr,
        /// Start frequency [Hz].
        fstart: NumExpr,
        /// Stop frequency [Hz].
        fstop: NumExpr,
    },
    /// Linear with `n` total points.
    Linear {
        /// Total points.
        n: NumExpr,
        /// Start frequency [Hz].
        fstart: NumExpr,
        /// Stop frequency [Hz].
        fstop: NumExpr,
    },
    /// Explicit frequency list.
    List(Vec<NumExpr>),
}

/// `.STEP PARAM name start stop step` or `.STEP PARAM name LIST v…`.
#[derive(Debug, Clone)]
pub struct StepCard {
    /// Swept parameter (lower-cased).
    pub param: String,
    /// The values the parameter takes.
    pub values: StepValues,
    /// Card span.
    pub span: Span,
}

/// Value generator of a `.STEP` card.
#[derive(Debug, Clone)]
pub enum StepValues {
    /// `start stop step` linear range (inclusive).
    Range {
        /// First value.
        start: NumExpr,
        /// Last value.
        stop: NumExpr,
        /// Increment.
        step: NumExpr,
    },
    /// `LIST v1 v2 …`.
    List(Vec<NumExpr>),
}

/// `.MC n [SEED=s] name TOL=t [DIST=UNIFORM|GAUSS] …`.
#[derive(Debug, Clone)]
pub struct McCard {
    /// Number of Monte Carlo points.
    pub n: NumExpr,
    /// RNG seed (defaults to 1).
    pub seed: Option<NumExpr>,
    /// Perturbed parameters.
    pub vars: Vec<McVar>,
    /// Card span.
    pub span: Span,
}

/// One Monte Carlo–perturbed parameter.
#[derive(Debug, Clone)]
pub struct McVar {
    /// Parameter name (lower-cased).
    pub param: String,
    /// Relative tolerance (e.g. `0.05` = ±5 %).
    pub tol: NumExpr,
    /// Sampling distribution.
    pub dist: McDist,
}

/// Monte Carlo sampling distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McDist {
    /// Uniform on `nominal·(1 ± tol)`.
    Uniform,
    /// Gaussian with `σ = nominal·tol/3` (tol is the 3σ bound).
    Gauss,
}

/// `.PRINT [op|dc|ac|tran] label…` — which traces to report.
#[derive(Debug, Clone)]
pub struct PrintCard {
    /// Analysis kind filter (`None` = all analyses).
    pub analysis: Option<String>,
    /// Trace labels, e.g. `v(out)` or `i(k1,0)`.
    pub labels: Vec<String>,
    /// Card span.
    pub span: Span,
}
