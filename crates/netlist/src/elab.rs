//! Elaboration: deck AST → [`mems_spice::Circuit`], plus analysis
//! dispatch for the deck's analysis cards.
//!
//! Elaboration is re-runnable with parameter overrides — the batch
//! engine calls [`Elaborator::build`] once per `.STEP`/`.MC` point —
//! and node natures flow from three sources: explicit `.NODE`
//! declarations, mechanical sugar (mass/spring/damper nodes default to
//! `mechanical1`), and HDL entity pin declarations.

use crate::ast::*;
use crate::error::{NetlistError, Result};
use crate::expr::NumExpr;
use mems_hdl::model::HdlModel;
use mems_hdl::Nature;
use mems_numerics::Complex64;
use mems_spice::analysis::ac::{run_with_op_in as run_ac_with_op_in, FreqSweep};
use mems_spice::analysis::dcop;
use mems_spice::analysis::sweep::{dc_sweep_in, SweepResult};
use mems_spice::analysis::transient::{run_in as run_tran_in, TranOptions};
use mems_spice::circuit::Circuit;
use mems_spice::devices::{
    AcSpec, Capacitor, Cccs, Ccvs, CurrentSource, Damper, Gyrator, HdlDevice, IdealTransformer,
    Inductor, Mass, ProductVccs, Resistor, Spring, Vccs, Vcvs, VoltageSource,
};
use mems_spice::output::{AcResult, OpSolution, TranResult};
use mems_spice::solver::SimOptions;
use mems_spice::solver::Workspace;
use mems_spice::system::{new_system, SystemMatrix};
use mems_spice::wave::Waveform;
use mems_spice::MatrixBackend;
use std::collections::HashMap;

/// Parameter environment: lower-cased name → value.
pub type ParamEnv = HashMap<String, f64>;

/// Evaluates the deck's `.PARAM` chain under `overrides` (override
/// wins over the defining expression; later definitions may reference
/// earlier ones).
///
/// # Errors
///
/// Propagates expression-evaluation failures with their spans.
pub fn param_env(deck: &Deck, overrides: &ParamEnv) -> Result<ParamEnv> {
    let mut env = ParamEnv::new();
    for p in &deck.params {
        let v = match overrides.get(&p.name) {
            Some(o) => *o,
            None => p.value.eval(&env)?,
        };
        env.insert(p.name.clone(), v);
    }
    Ok(env)
}

/// A deck with its HDL entities compiled, ready to build circuits.
pub struct Elaborator<'d> {
    deck: &'d Deck,
    models: HashMap<String, HdlModel>,
}

impl<'d> Elaborator<'d> {
    /// Compiles every entity the deck's `X` cards reference, searching
    /// the inline `.HDL` blocks and `.INCLUDE`d sources in order.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Elab`] pointing at the `X` card for unknown
    /// entities; [`NetlistError::Hdl`] (with the HDL compiler's own
    /// rendered excerpt) for models that fail to compile.
    pub fn new(deck: &'d Deck) -> Result<Self> {
        let mut models = HashMap::new();
        for card in &deck.devices {
            if let DeviceCard::HdlInstance {
                entity,
                entity_span,
                ..
            } = card
            {
                if models.contains_key(entity) {
                    continue;
                }
                let block = deck
                    .hdl_blocks
                    .iter()
                    .find(|b| declares_entity(&b.text, entity))
                    .ok_or_else(|| {
                        NetlistError::elab_at(
                            format!("no `.HDL` block or `.INCLUDE` declares entity `{entity}`"),
                            *entity_span,
                        )
                    })?;
                let model = HdlModel::compile(&block.text, entity, None)
                    .map_err(|e| NetlistError::Hdl(e.render(&block.text)))?;
                models.insert(entity.clone(), model);
            }
        }
        Ok(Elaborator { deck, models })
    }

    /// The deck being elaborated.
    pub fn deck(&self) -> &Deck {
        self.deck
    }

    /// Builds the circuit under `overrides`, optionally forcing one
    /// independent source to a DC level (the `.DC` source sweep).
    ///
    /// # Errors
    ///
    /// Expression, node-nature, and circuit-construction failures, all
    /// attributed to their cards.
    pub fn build(
        &self,
        overrides: &ParamEnv,
        source_dc: Option<(&str, f64)>,
    ) -> Result<(Circuit, ParamEnv)> {
        let env = param_env(self.deck, overrides)?;
        let mut ckt = Circuit::new();

        for decl in &self.deck.node_decls {
            for n in &decl.nodes {
                ckt.node(n, decl.nature)
                    .map_err(|e| NetlistError::elab_at(e.to_string(), decl.span))?;
            }
        }

        for card in &self.deck.devices {
            self.build_device(&mut ckt, card, &env, source_dc)?;
        }
        Ok((ckt, env))
    }

    fn build_device(
        &self,
        ckt: &mut Circuit,
        card: &DeviceCard,
        env: &ParamEnv,
        source_dc: Option<(&str, f64)>,
    ) -> Result<()> {
        let span = card.span();
        let ev = |e: &NumExpr| e.eval(env);
        // Nature defaulting: an existing node keeps its declared
        // nature (sources and couplers are nature-agnostic — a `V`
        // card on a mechanical node is a velocity source); the card's
        // default nature applies only when it creates the node.
        let node = |ckt: &mut Circuit, name: &str, nature: Nature| match ckt.find_node(name) {
            Some(id) => Ok(id),
            None => ckt
                .node(name, nature)
                .map_err(|e| NetlistError::elab_at(e.to_string(), span)),
        };
        let add = |ckt: &mut Circuit, dev: Box<dyn mems_spice::device::Device>| {
            ckt.add_boxed(dev)
                .map_err(|e| NetlistError::elab_at(e.to_string(), span))
        };
        match card {
            DeviceCard::Passive {
                kind,
                name,
                a,
                b,
                value,
                ..
            } => {
                let v = ev(value)?;
                let mech = matches!(
                    kind,
                    PassiveKind::Mass | PassiveKind::Spring | PassiveKind::Damper
                );
                let nature = if mech {
                    Nature::MechanicalTranslation
                } else {
                    Nature::Electrical
                };
                let na = node(ckt, a, nature)?;
                let nb = node(ckt, b, nature)?;
                check_positive(*kind, v, value)?;
                let dev: Box<dyn mems_spice::device::Device> = match kind {
                    PassiveKind::Resistor => Box::new(Resistor::new(name, na, nb, v)),
                    PassiveKind::Capacitor => Box::new(Capacitor::new(name, na, nb, v)),
                    PassiveKind::Inductor => Box::new(Inductor::new(name, na, nb, v)),
                    PassiveKind::Mass => Box::new(Mass::new(name, na, nb, v)),
                    PassiveKind::Spring => Box::new(Spring::new(name, na, nb, v)),
                    PassiveKind::Damper => Box::new(Damper::new(name, na, nb, v)),
                };
                add(ckt, dev)
            }
            DeviceCard::Source {
                kind,
                name,
                a,
                b,
                wave,
                ac,
                ..
            } => {
                let na = node(ckt, a, Nature::Electrical)?;
                let nb = node(ckt, b, Nature::Electrical)?;
                let waveform = match source_dc {
                    Some((target, level)) if target == name => Waveform::Dc(level),
                    _ => self.build_wave(wave, env, span)?,
                };
                let ac_spec = match ac {
                    Some((mag, phase)) => Some(AcSpec {
                        mag: ev(mag)?,
                        phase_deg: phase.as_ref().map_or(Ok(0.0), &ev)?,
                    }),
                    None => None,
                };
                let dev: Box<dyn mems_spice::device::Device> = match kind {
                    SourceKind::Voltage => {
                        let mut s = VoltageSource::new(name, na, nb, waveform);
                        if let Some(spec) = ac_spec {
                            s = s.with_ac(spec);
                        }
                        Box::new(s)
                    }
                    SourceKind::Current => {
                        let mut s = CurrentSource::new(name, na, nb, waveform);
                        if let Some(spec) = ac_spec {
                            s = s.with_ac(spec);
                        }
                        Box::new(s)
                    }
                };
                add(ckt, dev)
            }
            DeviceCard::Controlled {
                kind,
                name,
                nodes,
                value,
                ..
            } => {
                let v = ev(value)?;
                let [op, on, cp, cn] = nodes;
                let op = node(ckt, op, Nature::Electrical)?;
                let on = node(ckt, on, Nature::Electrical)?;
                let cp = node(ckt, cp, Nature::Electrical)?;
                let cn = node(ckt, cn, Nature::Electrical)?;
                let dev: Box<dyn mems_spice::device::Device> = match kind {
                    ControlledKind::Vcvs => Box::new(Vcvs::new(name, op, on, cp, cn, v)),
                    ControlledKind::Vccs => Box::new(Vccs::new(name, op, on, cp, cn, v)),
                    ControlledKind::Cccs => Box::new(Cccs::new(name, op, on, cp, cn, v)),
                    ControlledKind::Ccvs => Box::new(Ccvs::new(name, op, on, cp, cn, v)),
                };
                add(ckt, dev)
            }
            DeviceCard::Product {
                name, nodes, value, ..
            } => {
                let v = ev(value)?;
                let mut ids = [mems_spice::circuit::NodeId::GROUND; 6];
                for (i, n) in nodes.iter().enumerate() {
                    ids[i] = node(ckt, n, Nature::Electrical)?;
                }
                add(
                    ckt,
                    Box::new(ProductVccs::new(
                        name, ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], v,
                    )),
                )
            }
            DeviceCard::TwoPort {
                kind,
                name,
                nodes,
                value,
                ..
            } => {
                let v = ev(value)?;
                let [p1, n1, p2, n2] = nodes;
                let p1 = node(ckt, p1, Nature::Electrical)?;
                let n1 = node(ckt, n1, Nature::Electrical)?;
                let p2 = node(ckt, p2, Nature::Electrical)?;
                let n2 = node(ckt, n2, Nature::Electrical)?;
                let dev: Box<dyn mems_spice::device::Device> = match kind {
                    TwoPortKind::Transformer => {
                        Box::new(IdealTransformer::new(name, p1, n1, p2, n2, v))
                    }
                    TwoPortKind::Gyrator => Box::new(Gyrator::new(name, p1, n1, p2, n2, v)),
                };
                add(ckt, dev)
            }
            DeviceCard::HdlInstance {
                name,
                nodes,
                entity,
                entity_span,
                generics,
                ..
            } => {
                let model = self.models.get(entity).ok_or_else(|| {
                    NetlistError::elab_at(
                        format!("entity `{entity}` was not compiled"),
                        *entity_span,
                    )
                })?;
                let pins = &model.compiled().pins;
                if nodes.len() != pins.len() {
                    return Err(NetlistError::elab_at(
                        format!(
                            "entity `{entity}` has {} pins but {} nodes are connected",
                            pins.len(),
                            nodes.len()
                        ),
                        span,
                    ));
                }
                // Strict here: the entity's pin declarations are the
                // ground truth for connected node natures.
                let mut ids = Vec::with_capacity(nodes.len());
                for (n, pin) in nodes.iter().zip(pins) {
                    ids.push(
                        ckt.node(n, pin.nature)
                            .map_err(|e| NetlistError::elab_at(e.to_string(), span))?,
                    );
                }
                let mut bound: Vec<(String, f64)> = Vec::with_capacity(generics.len());
                for (gname, gexpr) in generics {
                    bound.push((gname.clone(), gexpr.eval(env)?));
                }
                let bound_refs: Vec<(&str, f64)> =
                    bound.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                let dev = HdlDevice::new(name, model, &bound_refs, &ids)
                    .map_err(|e| NetlistError::elab_at(e.to_string(), span))?;
                add(ckt, Box::new(dev))
            }
        }
    }

    fn build_wave(
        &self,
        wave: &WaveSpec,
        env: &ParamEnv,
        span: mems_hdl::span::Span,
    ) -> Result<Waveform> {
        let evs =
            |args: &[NumExpr]| -> Result<Vec<f64>> { args.iter().map(|a| a.eval(env)).collect() };
        let need = |args: &[NumExpr], min: usize, max: usize, what: &str| -> Result<()> {
            if args.len() < min || args.len() > max {
                return Err(NetlistError::elab_at(
                    format!("`{what}` takes {min}..={max} arguments, got {}", args.len()),
                    span,
                ));
            }
            Ok(())
        };
        Ok(match wave {
            WaveSpec::Dc(v) => Waveform::Dc(v.eval(env)?),
            WaveSpec::Pulse(args) => {
                need(args, 6, 7, "PULSE")?;
                let v = evs(args)?;
                Waveform::Pulse {
                    v1: v[0],
                    v2: v[1],
                    delay: v[2],
                    rise: v[3],
                    fall: v[4],
                    width: v[5],
                    period: v.get(6).copied().unwrap_or(0.0),
                }
            }
            WaveSpec::Sin(args) => {
                need(args, 3, 5, "SIN")?;
                let v = evs(args)?;
                Waveform::Sin {
                    offset: v[0],
                    ampl: v[1],
                    freq: v[2],
                    delay: v.get(3).copied().unwrap_or(0.0),
                    theta: v.get(4).copied().unwrap_or(0.0),
                }
            }
            WaveSpec::Pwl(args) => {
                if args.len() < 2 || args.len() % 2 != 0 {
                    return Err(NetlistError::elab_at(
                        format!(
                            "`PWL` needs an even number of (time, value) arguments, got {}",
                            args.len()
                        ),
                        span,
                    ));
                }
                let v = evs(args)?;
                let points: Vec<(f64, f64)> = v.chunks(2).map(|p| (p[0], p[1])).collect();
                for w in points.windows(2) {
                    if w[1].0 <= w[0].0 {
                        return Err(NetlistError::elab_at(
                            format!(
                                "`PWL` times must strictly increase ({} then {})",
                                w[0].0, w[1].0
                            ),
                            span,
                        ));
                    }
                }
                Waveform::Pwl(points)
            }
            WaveSpec::Exp(args) => {
                need(args, 6, 6, "EXP")?;
                let v = evs(args)?;
                Waveform::Exp {
                    v1: v[0],
                    v2: v[1],
                    td1: v[2],
                    tau1: v[3],
                    td2: v[4],
                    tau2: v[5],
                }
            }
        })
    }
}

/// Rejects non-physical element values with a spanned diagnostic
/// (instead of the device constructors' panics).
fn check_positive(kind: PassiveKind, v: f64, value: &NumExpr) -> Result<()> {
    let bad = match kind {
        PassiveKind::Resistor => v == 0.0 || !v.is_finite(),
        _ => v <= 0.0 || !v.is_finite(),
    };
    if bad {
        let what = match kind {
            PassiveKind::Resistor => "resistance must be nonzero and finite",
            PassiveKind::Capacitor => "capacitance must be positive",
            PassiveKind::Inductor => "inductance must be positive",
            PassiveKind::Mass => "mass must be positive",
            PassiveKind::Spring => "stiffness must be positive",
            PassiveKind::Damper => "damping must be positive",
        };
        return Err(NetlistError::elab_at(
            format!("{what}, got {v:.6e}"),
            value.span,
        ));
    }
    Ok(())
}

/// Case-insensitively checks whether HDL source text declares
/// `ENTITY <name>` as a whole word.
fn declares_entity(src: &str, name: &str) -> bool {
    let hay = src.to_ascii_lowercase();
    let needle = format!("entity {name}");
    let mut from = 0;
    while let Some(pos) = hay[from..].find(&needle) {
        let end = from + pos + needle.len();
        let boundary = hay[end..]
            .chars()
            .next()
            .is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'));
        if boundary {
            return true;
        }
        from = end;
    }
    false
}

/// Result of one analysis card.
#[derive(Debug, Clone)]
pub enum AnalysisOutcome {
    /// `.OP` operating point.
    Op(OpSolution),
    /// `.DC` sweep: swept variable name, values, per-point solutions.
    Dc {
        /// `v(source)` or `param(name)` — for table headers.
        var: String,
        /// Result with `values` and per-point operating points.
        result: SweepResult,
    },
    /// `.AC` sweep.
    Ac(AcResult),
    /// `.TRAN` waveforms.
    Tran(TranResult),
}

/// Results of every analysis card of a deck, in deck order.
#[derive(Debug)]
pub struct DeckRun {
    /// Deck title.
    pub title: String,
    /// `(card, outcome)` pairs.
    pub outcomes: Vec<(AnalysisCard, AnalysisOutcome)>,
}

/// Builds [`SimOptions`] from the deck's `.OPTIONS` cards.
///
/// # Errors
///
/// Unknown option names are spanned parse-stage errors.
pub fn sim_options(deck: &Deck, env: &ParamEnv) -> Result<SimOptions> {
    let mut sim = SimOptions::default();
    for (name, value) in &deck.options {
        let v = value.eval(env)?;
        match name.as_str() {
            "reltol" => sim.reltol = v,
            "abstol" | "vntol" => sim.abstol_voltage = v,
            "abstol_across" => sim.abstol_across = v,
            "abstol_internal" => sim.abstol_internal = v,
            "maxiter" | "itl1" => sim.max_iter = v as usize,
            "gmin" => sim.gmin = v,
            "maxstep" => sim.max_step = v,
            // `sparse=1` forces the sparse LU backend, `sparse=0` the
            // dense one; without the option the backend is picked by
            // unknown count.
            "sparse" => {
                sim.matrix = if v != 0.0 {
                    MatrixBackend::Sparse
                } else {
                    MatrixBackend::Dense
                }
            }
            _ => {
                return Err(NetlistError::elab_at(
                    format!("unknown option `{name}`"),
                    value.span,
                ))
            }
        }
    }
    Ok(sim)
}

/// Reusable per-runner state threaded through repeated
/// [`run_elaborated_ctx`] calls — the structure-reuse hook for the
/// `.STEP`/`.MC` batch engine. Every point of a batch elaborates the
/// same topology, so the assembly workspace (and the sparse backend's
/// symbolic factorization living inside it) is shared across points,
/// and a deterministic operating-point guess can warm-start each
/// point's Newton solves.
#[derive(Default)]
pub struct RunCtx {
    /// Shared assembly workspace (lazily sized to the circuit).
    pub ws: Option<Workspace>,
    /// Shared complex system for `.AC` analyses, with the backend it
    /// was built for (rebuilt on an order or backend change).
    ac_sys: Option<(Box<dyn SystemMatrix<Complex64>>, MatrixBackend)>,
    /// Newton guess for DC operating points (e.g. the previous batch
    /// point's solved operating point).
    pub op_guess: Option<Vec<f64>>,
}

impl RunCtx {
    fn workspace(&mut self, backend: MatrixBackend) -> &mut Workspace {
        self.ws
            .get_or_insert_with(|| Workspace::with_backend(0, backend))
    }

    /// The shared complex (AC) system matrix, re-targeted to `n`
    /// unknowns under `backend`. Cached structure survives between
    /// calls with matching order and backend — the batch-point reuse
    /// mirror of [`Workspace::ensure`].
    fn ac_system(&mut self, n: usize, backend: MatrixBackend) -> &mut dyn SystemMatrix<Complex64> {
        let stale = self
            .ac_sys
            .as_ref()
            .is_none_or(|(sys, b)| sys.n() != n || b.resolve(n) != backend.resolve(n));
        if stale {
            self.ac_sys = Some((new_system(n, backend), backend));
        }
        self.ac_sys.as_mut().expect("just ensured").0.as_mut()
    }
}

/// Runs every analysis card of the deck (no batch) and collects the
/// outcomes.
///
/// # Errors
///
/// Propagates elaboration and simulation failures.
pub fn run_deck(deck: &Deck) -> Result<DeckRun> {
    run_deck_with(deck, &ParamEnv::new())
}

/// [`run_deck`] under parameter overrides (one batch point).
///
/// # Errors
///
/// As [`run_deck`].
pub fn run_deck_with(deck: &Deck, overrides: &ParamEnv) -> Result<DeckRun> {
    let elab = Elaborator::new(deck)?;
    run_elaborated(&elab, overrides)
}

/// Runs the deck's analyses from an existing [`Elaborator`] (the
/// batch engine reuses compiled HDL models across points).
///
/// # Errors
///
/// As [`run_deck`].
pub fn run_elaborated(elab: &Elaborator<'_>, overrides: &ParamEnv) -> Result<DeckRun> {
    run_elaborated_ctx(elab, overrides, &mut RunCtx::default())
}

/// [`run_elaborated`] with caller-owned reusable state (see
/// [`RunCtx`]).
///
/// # Errors
///
/// As [`run_deck`].
pub fn run_elaborated_ctx(
    elab: &Elaborator<'_>,
    overrides: &ParamEnv,
    ctx: &mut RunCtx,
) -> Result<DeckRun> {
    let deck = elab.deck();
    let (_, env) = elab.build(overrides, None)?;
    let sim = sim_options(deck, &env)?;
    let mut outcomes = Vec::new();
    for card in &deck.analyses {
        let outcome = match card {
            AnalysisCard::Op { .. } => {
                let (mut ckt, _) = elab.build(overrides, None)?;
                let guess = ctx.op_guess.clone();
                let ws = ctx.workspace(sim.matrix);
                AnalysisOutcome::Op(dcop::solve_in(&mut ckt, &sim, guess.as_deref(), ws)?)
            }
            AnalysisCard::Dc {
                sweep: var,
                start,
                stop,
                step,
                span,
            } => {
                let (v0, v1, dv) = (start.eval(&env)?, stop.eval(&env)?, step.eval(&env)?);
                let values = linear_points(v0, v1, dv)
                    .ok_or_else(|| NetlistError::elab_at("bad `.DC` range", *span))?;
                let (var_name, result) =
                    match var {
                        DcSweepVar::Source(src) => {
                            if !deck.devices.iter().any(
                                |d| matches!(d, DeviceCard::Source { name, .. } if name == src),
                            ) {
                                return Err(NetlistError::elab_at(
                                    format!("`.DC` sweeps unknown source `{src}`"),
                                    *span,
                                ));
                            }
                            let result = dc_sweep_in(
                                |v| {
                                    elab.build(overrides, Some((src.as_str(), v)))
                                        .map(|(c, _)| c)
                                        .map_err(to_spice_build)
                                },
                                &values,
                                &sim,
                                ctx.workspace(sim.matrix),
                            )?;
                            (format!("v({src})"), result)
                        }
                        DcSweepVar::Param(p) => {
                            if !deck.params.iter().any(|d| &d.name == p) {
                                return Err(NetlistError::elab_at(
                                    format!("`.DC PARAM` sweeps undeclared parameter `{p}`"),
                                    *span,
                                ));
                            }
                            let result = dc_sweep_in(
                                |v| {
                                    let mut o = overrides.clone();
                                    o.insert(p.clone(), v);
                                    elab.build(&o, None).map(|(c, _)| c).map_err(to_spice_build)
                                },
                                &values,
                                &sim,
                                ctx.workspace(sim.matrix),
                            )?;
                            (format!("param({p})"), result)
                        }
                    };
                AnalysisOutcome::Dc {
                    var: var_name,
                    result,
                }
            }
            AnalysisCard::Ac {
                sweep: spec,
                span: _,
            } => {
                let fs = match spec {
                    AcSweepSpec::Decade { n, fstart, fstop } => FreqSweep::Decade {
                        start: fstart.eval(&env)?,
                        stop: fstop.eval(&env)?,
                        points_per_decade: n.eval(&env)?.round().max(1.0) as usize,
                    },
                    AcSweepSpec::Linear { n, fstart, fstop } => FreqSweep::Linear {
                        start: fstart.eval(&env)?,
                        stop: fstop.eval(&env)?,
                        points: n.eval(&env)?.round().max(2.0) as usize,
                    },
                    AcSweepSpec::List(fs) => {
                        let mut out = Vec::with_capacity(fs.len());
                        for f in fs {
                            out.push(f.eval(&env)?);
                        }
                        FreqSweep::List(out)
                    }
                };
                let (mut ckt, _) = elab.build(overrides, None)?;
                // Same reuse shape as the other analyses: operating
                // point through the shared real workspace (with the
                // warm-start guess), frequency sweep through the
                // shared complex system.
                let freqs = fs.frequencies().map_err(NetlistError::from)?;
                let guess = ctx.op_guess.clone();
                let op =
                    dcop::solve_in(&mut ckt, &sim, guess.as_deref(), ctx.workspace(sim.matrix))?;
                let sys = ctx.ac_system(op.layout.n_unknowns, sim.matrix);
                AnalysisOutcome::Ac(run_ac_with_op_in(&mut ckt, &freqs, &op, sys)?)
            }
            AnalysisCard::Tran {
                tstep,
                tstop,
                fixed,
                span,
            } => {
                let (h, t1) = (tstep.eval(&env)?, tstop.eval(&env)?);
                if !(h > 0.0 && t1 > 0.0 && h < t1) {
                    return Err(NetlistError::elab_at(
                        format!("bad `.TRAN` times (tstep {h:.3e}, tstop {t1:.3e})"),
                        *span,
                    ));
                }
                let opts = if *fixed {
                    TranOptions::fixed_step(t1, h)
                } else {
                    // `tstep` is both the initial and the maximum step
                    // (SPICE's `tmax` defaulting), so deck authors
                    // control output resolution directly.
                    let mut o = TranOptions::new(t1);
                    o.h_init = Some(h);
                    o.h_max = Some(h);
                    o
                };
                let (mut ckt, _) = elab.build(overrides, None)?;
                let guess = ctx.op_guess.clone();
                let ws = ctx.workspace(sim.matrix);
                AnalysisOutcome::Tran(run_tran_in(&mut ckt, &opts, &sim, guess.as_deref(), ws)?)
            }
        };
        outcomes.push((card.clone(), outcome));
    }
    Ok(DeckRun {
        title: deck.title.clone(),
        outcomes,
    })
}

/// Maps elaboration failures inside a sweep closure into the
/// simulator's error type (the closure must return `SpiceError`).
fn to_spice_build(e: NetlistError) -> mems_spice::SpiceError {
    mems_spice::SpiceError::Build(e.to_string())
}

/// Inclusive linear range with sign-checked step.
pub(crate) fn linear_points(start: f64, stop: f64, step: f64) -> Option<Vec<f64>> {
    if step == 0.0 || !step.is_finite() || !start.is_finite() || !stop.is_finite() {
        return None;
    }
    let step = if (stop - start).signum() == step.signum() || start == stop {
        step
    } else {
        -step
    };
    let n = ((stop - start) / step).round() as i64;
    if !(0..=1_000_000).contains(&n) {
        return None;
    }
    Some((0..=n).map(|i| start + step * i as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn divider_deck() -> Deck {
        Deck::parse(
            "divider\n\
             .param vin=6 rtop=1k\n\
             Vs in 0 {vin}\n\
             R1 in out {rtop}\n\
             R2 out 0 2k\n\
             .op\n",
        )
        .unwrap()
    }

    #[test]
    fn elaborates_and_runs_op() {
        let deck = divider_deck();
        let run = run_deck(&deck).unwrap();
        assert_eq!(run.outcomes.len(), 1);
        match &run.outcomes[0].1 {
            AnalysisOutcome::Op(op) => {
                let v = op.by_label("v(out)").unwrap();
                assert!((v - 4.0).abs() < 1e-6, "v(out) = {v}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overrides_redefine_params() {
        let deck = divider_deck();
        let mut o = ParamEnv::new();
        o.insert("vin".into(), 12.0);
        let run = run_deck_with(&deck, &o).unwrap();
        match &run.outcomes[0].1 {
            AnalysisOutcome::Op(op) => {
                assert!((op.by_label("v(out)").unwrap() - 8.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dc_source_sweep_runs() {
        let deck =
            Deck::parse("sweep\nVs in 0 1\nR1 in out 1k\nR2 out 0 1k\n.dc vs 0 4 1\n").unwrap();
        let run = run_deck(&deck).unwrap();
        match &run.outcomes[0].1 {
            AnalysisOutcome::Dc { var, result } => {
                assert_eq!(var, "v(vs)");
                assert_eq!(result.values, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
                let out = result.trace("v(out)").unwrap();
                assert!((out[4] - 2.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mechanical_sugar_defaults_natures() {
        let deck = Deck::parse(
            "resonator\n\
             Is 0 vel PWL(0 0 1m 1u)\n\
             .node mechanical1 vel\n\
             Mm vel 0 1e-4\n\
             Kk vel 0 200\n\
             Dd vel 0 40m\n\
             .tran 0.1m 50m\n",
        )
        .unwrap();
        let run = run_deck(&deck).unwrap();
        match &run.outcomes[0].1 {
            AnalysisOutcome::Tran(tr) => {
                let x = tr.integrated_trace("v(vel)", 0.0).unwrap();
                // 1 µN / (200 N/m) = 5 nm static deflection.
                let tail = x.last().copied().unwrap();
                assert!((tail - 5e-9).abs() < 0.1e-9, "x(end) = {tail:e}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hdl_pin_nature_conflicts_are_caught() {
        // `tip` is declared electrical, but the entity's c/dd pins
        // are mechanical1 — X pins enforce the entity's natures.
        let deck = Deck::parse(
            "t\n\
             .node electrical tip\n\
             .hdl\n\
             ENTITY et IS\n\
              GENERIC (g : analog := 1.0);\n\
              PIN (a, b : electrical; c, dd : mechanical1);\n\
             END ENTITY et;\n\
             ARCHITECTURE a OF et IS\n\
             BEGIN\n\
               RELATION\n\
                 PROCEDURAL FOR dc, ac, transient =>\n\
                   [a, b].i %= g * [a, b].v;\n\
               END RELATION;\n\
             END ARCHITECTURE a;\n\
             .endhdl\n\
             Vs in 0 1\n\
             X1 in 0 tip 0 et\n\
             .op\n",
        )
        .unwrap();
        let err = run_deck(&deck).unwrap_err();
        assert!(
            err.to_string().contains("already exists with nature"),
            "{err}"
        );
    }

    #[test]
    fn unknown_entity_is_spanned() {
        let deck = Deck::parse("t\nX1 a 0 b 0 ghost\n.op\n").unwrap();
        let err = run_deck(&deck).unwrap_err();
        let r = err.render(&deck.source);
        assert!(r.contains("no `.HDL` block"), "{r}");
        assert!(r.contains("ghost"), "{r}");
    }

    #[test]
    fn entity_scan_respects_word_boundaries() {
        assert!(declares_entity("ENTITY relay IS", "relay"));
        assert!(!declares_entity("ENTITY relay2 IS", "relay"));
        assert!(declares_entity(
            "entity a is\nend;\nENTITY relay IS",
            "relay"
        ));
    }

    #[test]
    fn zero_valued_elements_are_rejected_with_span() {
        let src = "t\nC1 a 0 0\n.op\n";
        let deck = Deck::parse(src).unwrap();
        let err = run_deck(&deck).unwrap_err();
        let r = err.render(src);
        assert!(r.contains("capacitance must be positive"), "{r}");
        assert!(r.contains("line 2"), "{r}");
    }
}
