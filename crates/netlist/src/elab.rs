//! Elaboration: deck AST → [`mems_spice::Circuit`], plus analysis
//! dispatch for the deck's analysis cards.
//!
//! Hierarchy is resolved here: [`Elaborator::new`] flattens the
//! deck's `.SUBCKT` instances **once** into a list of flattened cards
//! — each carrying its hierarchical instance path (`x1.r1`), its
//! resolved global node names (`x1.mid`; ports map to the caller's
//! nodes, ground is shared), and the index of its parameter scope.
//! [`Elaborator::build`] and [`Elaborator::patch`] then only
//! re-evaluate the scope environments per `.STEP`/`.MC`/`.DC` point,
//! so hierarchical decks ride the same elaborate-once batch path as
//! flat ones.
//!
//! Node natures flow from three sources: explicit `.NODE`
//! declarations (top-level or inside subcircuit bodies), mechanical
//! sugar (mass/spring/damper nodes default to `mechanical1`), and HDL
//! entity pin declarations.

use crate::ast::*;
use crate::error::{NetlistError, Result};
use crate::expr::{eval_scopes, join_path, NumExpr, ScopeBinding, ScopeInfo, ScopeParam};
use mems_hdl::model::HdlModel;
use mems_hdl::span::Span;
use mems_hdl::Nature;
use mems_numerics::Complex64;
use mems_spice::analysis::ac::{run_with_op_in as run_ac_with_op_in, FreqSweep};
use mems_spice::analysis::dcop;
use mems_spice::analysis::sweep::{dc_sweep_reuse_in, SweepResult};
use mems_spice::analysis::transient::{run_in as run_tran_in, TranOptions};
use mems_spice::circuit::Circuit;
use mems_spice::devices::{
    AcSpec, Capacitor, Cccs, Ccvs, CurrentSource, Damper, Gyrator, HdlDevice, IdealTransformer,
    Inductor, Mass, ProductVccs, Resistor, Spring, Vccs, Vcvs, VoltageSource,
};
use mems_spice::output::{AcResult, OpSolution, TranResult};
use mems_spice::solver::SimOptions;
use mems_spice::solver::Workspace;
use mems_spice::system::{new_system_solver, FactorKind, FillOrdering, SolverStats, SystemMatrix};
use mems_spice::wave::Waveform;
use mems_spice::MatrixBackend;
use std::collections::HashMap;

/// Parameter environment: lower-cased name → value.
pub type ParamEnv = HashMap<String, f64>;

/// Evaluates the deck's `.PARAM` chain under `overrides` (override
/// wins over the defining expression; later definitions may reference
/// earlier ones).
///
/// # Errors
///
/// Propagates expression-evaluation failures with their spans.
pub fn param_env(deck: &Deck, overrides: &ParamEnv) -> Result<ParamEnv> {
    let mut env = ParamEnv::new();
    for p in &deck.params {
        let v = match overrides.get(&p.name) {
            Some(o) => *o,
            None => p.value.eval(&env)?,
        };
        env.insert(p.name.clone(), v);
    }
    Ok(env)
}

/// One flattened device: the source card, the scope its expressions
/// evaluate in, its hierarchical instance name, and its resolved
/// global node names (positionally matching the card's nodes).
struct FlatCard<'d> {
    card: &'d DeviceCard,
    scope: usize,
    path: String,
    nodes: Vec<String>,
}

/// A `.NODE` declaration with instance-resolved node names.
struct FlatNodeDecl {
    nature: Nature,
    nodes: Vec<String>,
    span: Span,
}

/// Resolves a body node name inside an instance: ground stays shared,
/// ports map to the caller's nodes, anything else is private to the
/// instance and gets its hierarchical name.
fn resolve_node(name: &str, port_map: &HashMap<String, String>, prefix: &str) -> String {
    if name == "0" || name == "gnd" {
        return "0".to_string();
    }
    if let Some(outer) = port_map.get(name) {
        return outer.clone();
    }
    join_path(prefix, name)
}

/// A deck with its hierarchy flattened and its HDL entities compiled,
/// ready to build (or re-bind) circuits.
pub struct Elaborator<'d> {
    deck: &'d Deck,
    models: HashMap<String, HdlModel>,
    scopes: Vec<ScopeInfo<'d>>,
    flat: Vec<FlatCard<'d>>,
    flat_node_decls: Vec<FlatNodeDecl>,
}

impl<'d> Elaborator<'d> {
    /// Flattens the deck's `.SUBCKT` hierarchy and compiles every HDL
    /// entity any (possibly nested) `X` card references, searching the
    /// inline `.HDL` blocks and `.INCLUDE`d sources in order.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Elab`] pointing at the `X` card for unknown
    /// callees, port-arity mismatches, unknown parameter overrides,
    /// and recursive subcircuit instantiation; [`NetlistError::Hdl`]
    /// (with the HDL compiler's own rendered excerpt) for models that
    /// fail to compile.
    pub fn new(deck: &'d Deck) -> Result<Self> {
        let root = ScopeInfo {
            parent: 0,
            path: String::new(),
            params: deck
                .params
                .iter()
                .map(|p| ScopeParam {
                    name: p.name.clone(),
                    binding: ScopeBinding::Local(&p.value),
                    span: p.span,
                })
                .collect(),
        };
        let mut elab = Elaborator {
            deck,
            models: HashMap::new(),
            scopes: vec![root],
            flat: Vec::new(),
            flat_node_decls: deck
                .node_decls
                .iter()
                .map(|d| FlatNodeDecl {
                    nature: d.nature,
                    nodes: d.nodes.clone(),
                    span: d.span,
                })
                .collect(),
        };
        let mut stack = Vec::new();
        elab.flatten_body(&deck.devices, 0, "", &HashMap::new(), &mut stack)?;
        Ok(elab)
    }

    /// Flattens one body (the top level or a subcircuit's card list)
    /// under the given scope, instance-path prefix, and port→outer
    /// node map.
    fn flatten_body(
        &mut self,
        devices: &'d [DeviceCard],
        scope: usize,
        prefix: &str,
        port_map: &HashMap<String, String>,
        stack: &mut Vec<String>,
    ) -> Result<()> {
        let deck = self.deck;
        for card in devices {
            let path = join_path(prefix, card.name());
            if let DeviceCard::Call {
                nodes,
                callee,
                callee_span,
                args,
                span,
                ..
            } = card
            {
                if let Some(def) = deck.subckt(callee) {
                    if stack.iter().any(|s| s == callee) {
                        return Err(NetlistError::elab_at(
                            format!(
                                "recursive subcircuit instantiation: {} → {callee}",
                                stack.join(" → ")
                            ),
                            *callee_span,
                        ));
                    }
                    if nodes.len() != def.ports.len() {
                        return Err(NetlistError::elab_at(
                            format!(
                                "subcircuit `{callee}` has {} ports but {} nodes are connected",
                                def.ports.len(),
                                nodes.len()
                            ),
                            *span,
                        ));
                    }
                    for (aname, aexpr) in args {
                        if !def.formals.iter().any(|f| &f.name == aname) {
                            return Err(NetlistError::elab_at(
                                format!("subcircuit `{callee}` has no parameter `{aname}`"),
                                aexpr.span,
                            ));
                        }
                    }
                    let mut params: Vec<ScopeParam<'d>> = def
                        .formals
                        .iter()
                        .map(|f| ScopeParam {
                            name: f.name.clone(),
                            binding: ScopeBinding::Formal {
                                arg: args.iter().find(|(n, _)| n == &f.name).map(|(_, e)| e),
                                default: f.default.as_ref(),
                            },
                            span: f.span,
                        })
                        .collect();
                    params.extend(def.params.iter().map(|p| ScopeParam {
                        name: p.name.clone(),
                        binding: ScopeBinding::Local(&p.value),
                        span: p.span,
                    }));
                    let inner_scope = self.scopes.len();
                    self.scopes.push(ScopeInfo {
                        parent: scope,
                        path: path.clone(),
                        params,
                    });
                    let mut inner_map = HashMap::with_capacity(def.ports.len());
                    for (port, outer) in def.ports.iter().zip(nodes) {
                        inner_map.insert(port.clone(), resolve_node(outer, port_map, prefix));
                    }
                    for decl in &def.node_decls {
                        self.flat_node_decls.push(FlatNodeDecl {
                            nature: decl.nature,
                            nodes: decl
                                .nodes
                                .iter()
                                .map(|n| resolve_node(n, &inner_map, &path))
                                .collect(),
                            span: decl.span,
                        });
                    }
                    stack.push(callee.clone());
                    self.flatten_body(&def.devices, inner_scope, &path, &inner_map, stack)?;
                    stack.pop();
                    continue;
                }
                self.ensure_model(callee, *callee_span)?;
            }
            let resolved = card_node_names(card)
                .into_iter()
                .map(|n| resolve_node(n, port_map, prefix))
                .collect();
            self.flat.push(FlatCard {
                card,
                scope,
                path,
                nodes: resolved,
            });
        }
        Ok(())
    }

    /// Compiles `entity` from the deck's HDL blocks, caching it.
    fn ensure_model(&mut self, entity: &str, span: Span) -> Result<()> {
        if self.models.contains_key(entity) {
            return Ok(());
        }
        let block = self
            .deck
            .hdl_blocks
            .iter()
            .find(|b| declares_entity(&b.text, entity))
            .ok_or_else(|| {
                NetlistError::elab_at(
                    format!(
                        "no `.SUBCKT` definition and no `.HDL` block or `.INCLUDE` \
                         declares entity `{entity}`"
                    ),
                    span,
                )
            })?;
        let model = HdlModel::compile(&block.text, entity, None)
            .map_err(|e| NetlistError::Hdl(e.render(&block.text)))?;
        self.models.insert(entity.to_string(), model);
        Ok(())
    }

    /// The deck being elaborated.
    pub fn deck(&self) -> &Deck {
        self.deck
    }

    /// Evaluates every parameter scope of the flattened hierarchy
    /// under `overrides` (see [`eval_scopes`]).
    fn scope_envs(&self, overrides: &ParamEnv) -> Result<Vec<ParamEnv>> {
        eval_scopes(&self.scopes, overrides)
    }

    /// Every parameter the hierarchy declares under `overrides`,
    /// keyed by its override name: bare names for deck `.PARAM`s,
    /// `path.name` for instance-scope formals and locals — the
    /// universe `.STEP`/`.MC`/`.DC PARAM` cards may address.
    ///
    /// # Errors
    ///
    /// As [`Elaborator::build`]'s parameter evaluation.
    pub fn qualified_param_env(&self, overrides: &ParamEnv) -> Result<ParamEnv> {
        let envs = self.scope_envs(overrides)?;
        let mut out = ParamEnv::new();
        for (scope, env) in self.scopes.iter().zip(&envs) {
            for p in &scope.params {
                if let Some(v) = env.get(&p.name) {
                    out.insert(scope.qualified(&p.name), *v);
                }
            }
        }
        Ok(out)
    }

    /// Whether `key` names a declared parameter: a deck `.PARAM` or a
    /// qualified `path.name` of some instance scope.
    pub fn declares_param(&self, key: &str) -> bool {
        self.scopes
            .iter()
            .any(|s| s.params.iter().any(|p| s.qualified(&p.name) == key))
    }

    /// Whether `name` is the (hierarchical) path of an independent
    /// source in the flattened circuit — the names `.DC` may sweep.
    pub fn has_source(&self, name: &str) -> bool {
        self.flat
            .iter()
            .any(|fc| matches!(fc.card, DeviceCard::Source { .. }) && fc.path == name)
    }

    /// Builds the circuit under `overrides`, optionally forcing one
    /// independent source (by hierarchical path) to a DC level (the
    /// `.DC` source sweep). Returns the circuit and the root (deck
    /// scope) parameter environment.
    ///
    /// # Errors
    ///
    /// Expression, node-nature, and circuit-construction failures, all
    /// attributed to their cards.
    pub fn build(
        &self,
        overrides: &ParamEnv,
        source_dc: Option<(&str, f64)>,
    ) -> Result<(Circuit, ParamEnv)> {
        let mut envs = self.scope_envs(overrides)?;
        let mut ckt = Circuit::new();

        for decl in &self.flat_node_decls {
            for n in &decl.nodes {
                ckt.node(n, decl.nature)
                    .map_err(|e| NetlistError::elab_at(e.to_string(), decl.span))?;
            }
        }

        for fc in &self.flat {
            self.build_device(&mut ckt, fc, &envs[fc.scope], source_dc)?;
        }
        Ok((ckt, envs.swap_remove(0)))
    }

    fn build_device(
        &self,
        ckt: &mut Circuit,
        fc: &FlatCard<'_>,
        env: &ParamEnv,
        source_dc: Option<(&str, f64)>,
    ) -> Result<()> {
        let card = fc.card;
        let name = fc.path.as_str();
        let span = card.span();
        let ev = |e: &NumExpr| e.eval(env);
        // Nature defaulting: an existing node keeps its declared
        // nature (sources and couplers are nature-agnostic — a `V`
        // card on a mechanical node is a velocity source); the card's
        // default nature applies only when it creates the node.
        let node = |ckt: &mut Circuit, name: &str, nature: Nature| match ckt.find_node(name) {
            Some(id) => Ok(id),
            None => ckt
                .node(name, nature)
                .map_err(|e| NetlistError::elab_at(e.to_string(), span)),
        };
        let add = |ckt: &mut Circuit, dev: Box<dyn mems_spice::device::Device>| {
            ckt.add_boxed(dev)
                .map_err(|e| NetlistError::elab_at(e.to_string(), span))
        };
        match card {
            DeviceCard::Passive { kind, value, .. } => {
                let v = ev(value)?;
                let mech = matches!(
                    kind,
                    PassiveKind::Mass | PassiveKind::Spring | PassiveKind::Damper
                );
                let nature = if mech {
                    Nature::MechanicalTranslation
                } else {
                    Nature::Electrical
                };
                let na = node(ckt, &fc.nodes[0], nature)?;
                let nb = node(ckt, &fc.nodes[1], nature)?;
                check_positive(*kind, v, value)?;
                let dev: Box<dyn mems_spice::device::Device> = match kind {
                    PassiveKind::Resistor => Box::new(Resistor::new(name, na, nb, v)),
                    PassiveKind::Capacitor => Box::new(Capacitor::new(name, na, nb, v)),
                    PassiveKind::Inductor => Box::new(Inductor::new(name, na, nb, v)),
                    PassiveKind::Mass => Box::new(Mass::new(name, na, nb, v)),
                    PassiveKind::Spring => Box::new(Spring::new(name, na, nb, v)),
                    PassiveKind::Damper => Box::new(Damper::new(name, na, nb, v)),
                };
                add(ckt, dev)
            }
            DeviceCard::Source { kind, wave, ac, .. } => {
                let na = node(ckt, &fc.nodes[0], Nature::Electrical)?;
                let nb = node(ckt, &fc.nodes[1], Nature::Electrical)?;
                let waveform = match source_dc {
                    Some((target, level)) if target == name => Waveform::Dc(level),
                    _ => self.build_wave(wave, env, span)?,
                };
                let ac_spec = match ac {
                    Some((mag, phase)) => Some(AcSpec {
                        mag: ev(mag)?,
                        phase_deg: phase.as_ref().map_or(Ok(0.0), &ev)?,
                    }),
                    None => None,
                };
                let dev: Box<dyn mems_spice::device::Device> = match kind {
                    SourceKind::Voltage => {
                        let mut s = VoltageSource::new(name, na, nb, waveform);
                        if let Some(spec) = ac_spec {
                            s = s.with_ac(spec);
                        }
                        Box::new(s)
                    }
                    SourceKind::Current => {
                        let mut s = CurrentSource::new(name, na, nb, waveform);
                        if let Some(spec) = ac_spec {
                            s = s.with_ac(spec);
                        }
                        Box::new(s)
                    }
                };
                add(ckt, dev)
            }
            DeviceCard::Controlled { kind, value, .. } => {
                let v = ev(value)?;
                let op = node(ckt, &fc.nodes[0], Nature::Electrical)?;
                let on = node(ckt, &fc.nodes[1], Nature::Electrical)?;
                let cp = node(ckt, &fc.nodes[2], Nature::Electrical)?;
                let cn = node(ckt, &fc.nodes[3], Nature::Electrical)?;
                let dev: Box<dyn mems_spice::device::Device> = match kind {
                    ControlledKind::Vcvs => Box::new(Vcvs::new(name, op, on, cp, cn, v)),
                    ControlledKind::Vccs => Box::new(Vccs::new(name, op, on, cp, cn, v)),
                    ControlledKind::Cccs => Box::new(Cccs::new(name, op, on, cp, cn, v)),
                    ControlledKind::Ccvs => Box::new(Ccvs::new(name, op, on, cp, cn, v)),
                };
                add(ckt, dev)
            }
            DeviceCard::Product { value, .. } => {
                let v = ev(value)?;
                let mut ids = [mems_spice::circuit::NodeId::GROUND; 6];
                for (i, n) in fc.nodes.iter().enumerate() {
                    ids[i] = node(ckt, n, Nature::Electrical)?;
                }
                add(
                    ckt,
                    Box::new(ProductVccs::new(
                        name, ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], v,
                    )),
                )
            }
            DeviceCard::TwoPort { kind, value, .. } => {
                let v = ev(value)?;
                let p1 = node(ckt, &fc.nodes[0], Nature::Electrical)?;
                let n1 = node(ckt, &fc.nodes[1], Nature::Electrical)?;
                let p2 = node(ckt, &fc.nodes[2], Nature::Electrical)?;
                let n2 = node(ckt, &fc.nodes[3], Nature::Electrical)?;
                let dev: Box<dyn mems_spice::device::Device> = match kind {
                    TwoPortKind::Transformer => {
                        Box::new(IdealTransformer::new(name, p1, n1, p2, n2, v))
                    }
                    TwoPortKind::Gyrator => Box::new(Gyrator::new(name, p1, n1, p2, n2, v)),
                };
                add(ckt, dev)
            }
            DeviceCard::Call {
                callee,
                callee_span,
                args,
                ..
            } => {
                let model = self.models.get(callee).ok_or_else(|| {
                    NetlistError::elab_at(
                        format!("entity `{callee}` was not compiled"),
                        *callee_span,
                    )
                })?;
                let pins = &model.compiled().pins;
                if fc.nodes.len() != pins.len() {
                    return Err(NetlistError::elab_at(
                        format!(
                            "entity `{callee}` has {} pins but {} nodes are connected",
                            pins.len(),
                            fc.nodes.len()
                        ),
                        span,
                    ));
                }
                // Strict here: the entity's pin declarations are the
                // ground truth for connected node natures.
                let mut ids = Vec::with_capacity(fc.nodes.len());
                for (n, pin) in fc.nodes.iter().zip(pins) {
                    ids.push(
                        ckt.node(n, pin.nature)
                            .map_err(|e| NetlistError::elab_at(e.to_string(), span))?,
                    );
                }
                let mut bound: Vec<(String, f64)> = Vec::with_capacity(args.len());
                for (gname, gexpr) in args {
                    bound.push((gname.clone(), gexpr.eval(env)?));
                }
                let bound_refs: Vec<(&str, f64)> =
                    bound.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                let dev = HdlDevice::new(name, model, &bound_refs, &ids)
                    .map_err(|e| NetlistError::elab_at(e.to_string(), span))?;
                add(ckt, Box::new(dev))
            }
        }
    }

    /// Re-binds every card-derived parameter of `ckt` in place under
    /// `overrides` — the elaborate-once `set_param` path. The circuit
    /// must have been built by this elaborator (same deck): device
    /// order mirrors card order. Each setter also resets the device's
    /// dynamic state (integration histories, HDL instance state), so
    /// a patched circuit is bit-identical to a freshly built one.
    ///
    /// Returns `Ok(false)` when some device does not expose the
    /// `set_param` hook (callers fall back to [`Elaborator::build`]);
    /// the circuit may be partially patched in that case and must not
    /// be reused.
    ///
    /// # Errors
    ///
    /// The same spanned expression/validation failures as
    /// [`Elaborator::build`] (e.g. a swept value making a resistance
    /// zero).
    pub fn patch(
        &self,
        ckt: &mut Circuit,
        overrides: &ParamEnv,
        source_dc: Option<(&str, f64)>,
    ) -> Result<bool> {
        let envs = self.scope_envs(overrides)?;
        if ckt.devices().len() != self.flat.len() {
            return Ok(false);
        }
        for (i, fc) in self.flat.iter().enumerate() {
            if !self.patch_device(ckt, i, fc, &envs[fc.scope], source_dc)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn patch_device(
        &self,
        ckt: &mut Circuit,
        index: usize,
        fc: &FlatCard<'_>,
        env: &ParamEnv,
        source_dc: Option<(&str, f64)>,
    ) -> Result<bool> {
        /// Downcasts through the `Device::as_any_mut` hook.
        fn cast<T: 'static>(dev: &mut Box<dyn mems_spice::device::Device>) -> Option<&mut T> {
            dev.as_any_mut()?.downcast_mut::<T>()
        }
        let card = fc.card;
        let name = fc.path.as_str();
        let span = card.span();
        let ev = |e: &NumExpr| e.eval(env);
        let dev = &mut ckt.devices_mut()[index];
        match card {
            DeviceCard::Passive { kind, value, .. } => {
                if dev.name() != name {
                    return Ok(false);
                }
                let v = ev(value)?;
                check_positive(*kind, v, value)?;
                let done = match kind {
                    PassiveKind::Resistor => {
                        cast::<Resistor>(dev).map(|d| d.set_resistance(v)).is_some()
                    }
                    PassiveKind::Capacitor => cast::<Capacitor>(dev)
                        .map(|d| d.set_capacitance(v))
                        .is_some(),
                    PassiveKind::Inductor => {
                        cast::<Inductor>(dev).map(|d| d.set_inductance(v)).is_some()
                    }
                    PassiveKind::Mass => cast::<Mass>(dev).map(|d| d.set_mass(v)).is_some(),
                    PassiveKind::Spring => {
                        cast::<Spring>(dev).map(|d| d.set_stiffness(v)).is_some()
                    }
                    PassiveKind::Damper => cast::<Damper>(dev).map(|d| d.set_damping(v)).is_some(),
                };
                Ok(done)
            }
            DeviceCard::Source { kind, wave, ac, .. } => {
                if dev.name() != name {
                    return Ok(false);
                }
                let waveform = match source_dc {
                    Some((target, level)) if target == name => Waveform::Dc(level),
                    _ => self.build_wave(wave, env, span)?,
                };
                let ac_spec = match ac {
                    Some((mag, phase)) => Some(AcSpec {
                        mag: ev(mag)?,
                        phase_deg: phase.as_ref().map_or(Ok(0.0), &ev)?,
                    }),
                    None => None,
                };
                let done = match kind {
                    SourceKind::Voltage => cast::<VoltageSource>(dev)
                        .map(|d| {
                            d.set_wave(waveform);
                            d.set_ac(ac_spec);
                        })
                        .is_some(),
                    SourceKind::Current => cast::<CurrentSource>(dev)
                        .map(|d| {
                            d.set_wave(waveform);
                            d.set_ac(ac_spec);
                        })
                        .is_some(),
                };
                Ok(done)
            }
            DeviceCard::Controlled { kind, value, .. } => {
                if dev.name() != name {
                    return Ok(false);
                }
                let v = ev(value)?;
                let done = match kind {
                    ControlledKind::Vcvs => cast::<Vcvs>(dev).map(|d| d.set_gain(v)).is_some(),
                    ControlledKind::Vccs => cast::<Vccs>(dev).map(|d| d.set_gm(v)).is_some(),
                    ControlledKind::Cccs => cast::<Cccs>(dev).map(|d| d.set_gain(v)).is_some(),
                    ControlledKind::Ccvs => cast::<Ccvs>(dev)
                        .map(|d| d.set_transresistance(v))
                        .is_some(),
                };
                Ok(done)
            }
            DeviceCard::Product { value, .. } => {
                if dev.name() != name {
                    return Ok(false);
                }
                let v = ev(value)?;
                Ok(cast::<ProductVccs>(dev)
                    .map(|d| d.set_coefficient(v))
                    .is_some())
            }
            DeviceCard::TwoPort { kind, value, .. } => {
                if dev.name() != name {
                    return Ok(false);
                }
                let v = ev(value)?;
                let done = match kind {
                    TwoPortKind::Transformer => cast::<IdealTransformer>(dev)
                        .map(|d| d.set_ratio(v))
                        .is_some(),
                    TwoPortKind::Gyrator => {
                        cast::<Gyrator>(dev).map(|d| d.set_conductance(v)).is_some()
                    }
                };
                Ok(done)
            }
            DeviceCard::Call { args, .. } => {
                if dev.name() != name {
                    return Ok(false);
                }
                let mut bound: Vec<(String, f64)> = Vec::with_capacity(args.len());
                for (gname, gexpr) in args {
                    bound.push((gname.clone(), gexpr.eval(env)?));
                }
                let bound_refs: Vec<(&str, f64)> =
                    bound.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                match cast::<HdlDevice>(dev) {
                    Some(d) => {
                        d.set_generics(&bound_refs)
                            .map_err(|e| NetlistError::elab_at(e.to_string(), span))?;
                        Ok(true)
                    }
                    None => Ok(false),
                }
            }
        }
    }

    fn build_wave(
        &self,
        wave: &WaveSpec,
        env: &ParamEnv,
        span: mems_hdl::span::Span,
    ) -> Result<Waveform> {
        let evs =
            |args: &[NumExpr]| -> Result<Vec<f64>> { args.iter().map(|a| a.eval(env)).collect() };
        let need = |args: &[NumExpr], min: usize, max: usize, what: &str| -> Result<()> {
            if args.len() < min || args.len() > max {
                return Err(NetlistError::elab_at(
                    format!("`{what}` takes {min}..={max} arguments, got {}", args.len()),
                    span,
                ));
            }
            Ok(())
        };
        Ok(match wave {
            WaveSpec::Dc(v) => Waveform::Dc(v.eval(env)?),
            WaveSpec::Pulse(args) => {
                need(args, 6, 7, "PULSE")?;
                let v = evs(args)?;
                Waveform::Pulse {
                    v1: v[0],
                    v2: v[1],
                    delay: v[2],
                    rise: v[3],
                    fall: v[4],
                    width: v[5],
                    period: v.get(6).copied().unwrap_or(0.0),
                }
            }
            WaveSpec::Sin(args) => {
                need(args, 3, 5, "SIN")?;
                let v = evs(args)?;
                Waveform::Sin {
                    offset: v[0],
                    ampl: v[1],
                    freq: v[2],
                    delay: v.get(3).copied().unwrap_or(0.0),
                    theta: v.get(4).copied().unwrap_or(0.0),
                }
            }
            WaveSpec::Pwl(args) => {
                if args.len() < 2 || args.len() % 2 != 0 {
                    return Err(NetlistError::elab_at(
                        format!(
                            "`PWL` needs an even number of (time, value) arguments, got {}",
                            args.len()
                        ),
                        span,
                    ));
                }
                let v = evs(args)?;
                let points: Vec<(f64, f64)> = v.chunks(2).map(|p| (p[0], p[1])).collect();
                for w in points.windows(2) {
                    if w[1].0 <= w[0].0 {
                        return Err(NetlistError::elab_at(
                            format!(
                                "`PWL` times must strictly increase ({} then {})",
                                w[0].0, w[1].0
                            ),
                            span,
                        ));
                    }
                }
                Waveform::Pwl(points)
            }
            WaveSpec::Exp(args) => {
                need(args, 6, 6, "EXP")?;
                let v = evs(args)?;
                Waveform::Exp {
                    v1: v[0],
                    v2: v[1],
                    td1: v[2],
                    tau1: v[3],
                    td2: v[4],
                    tau2: v[5],
                }
            }
        })
    }
}

/// The node names a card references, in positional order (the shape
/// [`FlatCard::nodes`] mirrors after hierarchy resolution).
fn card_node_names(card: &DeviceCard) -> Vec<&str> {
    match card {
        DeviceCard::Passive { a, b, .. } | DeviceCard::Source { a, b, .. } => {
            vec![a.as_str(), b.as_str()]
        }
        DeviceCard::Controlled { nodes, .. } | DeviceCard::TwoPort { nodes, .. } => {
            nodes.iter().map(String::as_str).collect()
        }
        DeviceCard::Product { nodes, .. } => nodes.iter().map(String::as_str).collect(),
        DeviceCard::Call { nodes, .. } => nodes.iter().map(String::as_str).collect(),
    }
}

/// Rejects non-physical element values with a spanned diagnostic
/// (instead of the device constructors' panics).
fn check_positive(kind: PassiveKind, v: f64, value: &NumExpr) -> Result<()> {
    let bad = match kind {
        PassiveKind::Resistor => v == 0.0 || !v.is_finite(),
        _ => v <= 0.0 || !v.is_finite(),
    };
    if bad {
        let what = match kind {
            PassiveKind::Resistor => "resistance must be nonzero and finite",
            PassiveKind::Capacitor => "capacitance must be positive",
            PassiveKind::Inductor => "inductance must be positive",
            PassiveKind::Mass => "mass must be positive",
            PassiveKind::Spring => "stiffness must be positive",
            PassiveKind::Damper => "damping must be positive",
        };
        return Err(NetlistError::elab_at(
            format!("{what}, got {v:.6e}"),
            value.span,
        ));
    }
    Ok(())
}

/// Case-insensitively checks whether HDL source text declares
/// `ENTITY <name>` as a whole word.
fn declares_entity(src: &str, name: &str) -> bool {
    let hay = src.to_ascii_lowercase();
    let needle = format!("entity {name}");
    let mut from = 0;
    while let Some(pos) = hay[from..].find(&needle) {
        let end = from + pos + needle.len();
        let boundary = hay[end..]
            .chars()
            .next()
            .is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'));
        if boundary {
            return true;
        }
        from = end;
    }
    false
}

/// Result of one analysis card.
#[derive(Debug, Clone)]
pub enum AnalysisOutcome {
    /// `.OP` operating point.
    Op(OpSolution),
    /// `.DC` sweep: swept variable name, values, per-point solutions.
    Dc {
        /// `v(source)` or `param(name)` — for table headers.
        var: String,
        /// Result with `values` and per-point operating points.
        result: SweepResult,
    },
    /// `.AC` sweep.
    Ac(AcResult),
    /// `.TRAN` waveforms.
    Tran(TranResult),
}

/// Results of every analysis card of a deck, in deck order.
#[derive(Debug)]
pub struct DeckRun {
    /// Deck title.
    pub title: String,
    /// `(card, outcome)` pairs.
    pub outcomes: Vec<(AnalysisCard, AnalysisOutcome)>,
    /// Linear-solver statistics per system the run factored, labeled
    /// `"real"` (the shared Newton/transient workspace) and `"ac"`
    /// (the shared complex system). Counters accumulate over the
    /// [`RunCtx`]'s lifetime, so batch points report running totals.
    pub solver: Vec<(String, SolverStats)>,
}

/// Builds [`SimOptions`] from the deck's `.OPTIONS` cards.
///
/// # Errors
///
/// Unknown option names are spanned parse-stage errors.
pub fn sim_options(deck: &Deck, env: &ParamEnv) -> Result<SimOptions> {
    let mut sim = SimOptions::default();
    for (name, value) in &deck.options {
        // `order=nd|amd|natural|auto` is a keyword option: the value
        // is a bare word, not a numeric expression.
        if name == "order" {
            sim.ordering = fill_ordering(value)?;
            continue;
        }
        // `factor=auto|scalar|super` picks the sparse numeric
        // factorization path; also a keyword option.
        if name == "factor" {
            sim.factor = factor_kind(value)?;
            continue;
        }
        let v = value.eval(env)?;
        match name.as_str() {
            "reltol" => sim.reltol = v,
            "abstol" | "vntol" => sim.abstol_voltage = v,
            "abstol_across" => sim.abstol_across = v,
            "abstol_internal" => sim.abstol_internal = v,
            "maxiter" | "itl1" => sim.max_iter = v as usize,
            "factor_threads" => sim.factor_threads = v.max(0.0) as usize,
            "gmin" => sim.gmin = v,
            "maxstep" => sim.max_step = v,
            // `sparse=1` forces the sparse LU backend, `sparse=0` the
            // dense one; without the option the backend is picked by
            // unknown count.
            "sparse" => {
                sim.matrix = if v != 0.0 {
                    MatrixBackend::Sparse
                } else {
                    MatrixBackend::Dense
                }
            }
            _ => {
                return Err(NetlistError::elab_at(
                    format!("unknown option `{name}`"),
                    value.span,
                ))
            }
        }
    }
    Ok(sim)
}

/// Parses the `order=` option value (`nd`, `amd`, `natural`, or
/// `auto` — the default, which picks ND above
/// [`mems_numerics::ordering::ND_AUTO_THRESHOLD`] unknowns and AMD
/// below).
fn fill_ordering(value: &NumExpr) -> Result<FillOrdering> {
    match &value.node {
        crate::expr::ExprNode::Ident(w) if w == "amd" => Ok(FillOrdering::Amd),
        crate::expr::ExprNode::Ident(w) if w == "nd" => Ok(FillOrdering::Nd),
        crate::expr::ExprNode::Ident(w) if w == "natural" => Ok(FillOrdering::Natural),
        crate::expr::ExprNode::Ident(w) if w == "auto" => Ok(FillOrdering::Auto),
        _ => Err(NetlistError::elab_at(
            "option `order` takes `nd`, `amd`, `natural`, or `auto`",
            value.span,
        )),
    }
}

/// Parses the `factor=` option value (`auto`, `scalar`, or
/// `super`/`supernodal`).
fn factor_kind(value: &NumExpr) -> Result<FactorKind> {
    match &value.node {
        crate::expr::ExprNode::Ident(w) if w == "auto" => Ok(FactorKind::Auto),
        crate::expr::ExprNode::Ident(w) if w == "scalar" => Ok(FactorKind::Scalar),
        crate::expr::ExprNode::Ident(w) if w == "super" || w == "supernodal" => {
            Ok(FactorKind::Supernodal)
        }
        _ => Err(NetlistError::elab_at(
            "option `factor` takes `auto`, `scalar`, or `super`",
            value.span,
        )),
    }
}

/// Fingerprint of a deck's *definitions*: its full (include-spliced)
/// source text plus every HDL block. Two decks with equal
/// fingerprints elaborate to identical topologies, so cached
/// circuits, workspaces, and symbolic factorizations built from one
/// are valid for the other — this is the key of `mems serve`'s
/// artifact cache and of [`RunCtx`]'s own circuit-cache guard.
pub fn deck_fingerprint(deck: &Deck) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    deck.source.hash(&mut h);
    for block in &deck.hdl_blocks {
        block.text.hash(&mut h);
    }
    h.finish()
}

/// Reuse counters a [`RunCtx`] accumulates across
/// [`run_elaborated_ctx`] calls: how often an analysis slot's circuit
/// was re-bound in place versus rebuilt from the parse tree. `mems
/// serve` diffs these around each job chunk to report cache-hit
/// semantics (`circuits_built == 0` ⇒ the job never re-elaborated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Circuits elaborated from the parse tree (cold path).
    pub circuits_built: u64,
    /// Circuits re-bound in place through `set_param` (warm path).
    pub circuits_patched: u64,
}

/// Reusable per-runner state threaded through repeated
/// [`run_elaborated_ctx`] calls — the structure-reuse hook for the
/// `.STEP`/`.MC` batch engine. Every point of a batch elaborates the
/// same topology, so the assembly workspace (and the sparse backend's
/// symbolic factorization living inside it) is shared across points,
/// a deterministic operating-point guess can warm-start each point's
/// Newton solves, and — with `reuse_circuits` (the default) — the
/// elaborated circuits themselves persist across points, re-bound in
/// place through the devices' `set_param` path instead of rebuilt
/// from the parse tree.
pub struct RunCtx {
    /// Shared assembly workspace (lazily sized to the circuit).
    pub ws: Option<Workspace>,
    /// Shared complex system for `.AC` analyses, with the backend,
    /// ordering, factorization kind, and thread budget it was built
    /// for (rebuilt when any of them change).
    #[allow(clippy::type_complexity)]
    ac_sys: Option<(
        Box<dyn SystemMatrix<Complex64>>,
        MatrixBackend,
        FillOrdering,
        FactorKind,
        usize,
    )>,
    /// Newton guess for DC operating points (e.g. the previous batch
    /// point's solved operating point).
    pub op_guess: Option<Vec<f64>>,
    /// Cached circuits, one per analysis-card slot, patched in place
    /// per point.
    ckts: HashMap<usize, Circuit>,
    /// Fingerprint of the deck the cached circuits were built from.
    /// A context reused across *different* decks (the cache is keyed
    /// by analysis-slot index only) must not patch another deck's
    /// circuits — name/kind checks could pass on boilerplate device
    /// names while the node wiring differs.
    deck_fp: Option<u64>,
    /// When `true` (default), circuits are cached across points and
    /// parameter-patched; when `false`, every analysis re-elaborates
    /// the deck (the pre-elaborate-once behavior, kept for
    /// differential testing and benchmarking).
    pub reuse_circuits: bool,
    /// Patch-vs-build counters over the context's lifetime.
    pub stats: RunStats,
}

impl Default for RunCtx {
    fn default() -> Self {
        RunCtx {
            ws: None,
            ac_sys: None,
            op_guess: None,
            ckts: HashMap::new(),
            deck_fp: None,
            reuse_circuits: true,
            stats: RunStats::default(),
        }
    }
}

impl RunCtx {
    /// A context that re-elaborates the deck per point instead of
    /// patching cached circuits.
    pub fn without_reuse() -> Self {
        RunCtx {
            reuse_circuits: false,
            ..RunCtx::default()
        }
    }

    fn workspace(&mut self, sim: &SimOptions) -> &mut Workspace {
        self.ws.get_or_insert_with(|| {
            Workspace::with_solver(0, sim.matrix, sim.ordering, sim.factor, sim.factor_threads)
        })
    }

    /// Whether the context carries reusable artifacts from earlier
    /// runs — cached circuits or an assembly workspace (and with it,
    /// on the sparse backend, the symbolic factorization + ordering).
    /// `mems serve` reports this per checkout as warm/cold cache
    /// evidence.
    pub fn is_warm(&self) -> bool {
        self.ws.is_some() || !self.ckts.is_empty()
    }

    /// Drops cached circuits that belong to a different deck. Called
    /// at the top of every [`run_elaborated_ctx`] with a hash of the
    /// deck's source text.
    fn bind_deck(&mut self, fp: u64) {
        if self.deck_fp != Some(fp) {
            self.ckts.clear();
            self.deck_fp = Some(fp);
        }
    }

    /// Hands out the cached circuit of an analysis slot, if any.
    fn take_circuit(&mut self, slot: usize) -> Option<Circuit> {
        if self.reuse_circuits {
            self.ckts.remove(&slot)
        } else {
            None
        }
    }

    /// Returns a circuit to its slot for the next point.
    fn stash_circuit(&mut self, slot: usize, ckt: Circuit) {
        if self.reuse_circuits {
            self.ckts.insert(slot, ckt);
        }
    }

    /// Linear-solver statistics of the context's live systems (real
    /// workspace + AC system), labeled by domain. Cumulative over the
    /// context's lifetime — callers that want per-chunk attribution
    /// (e.g. `mems serve`'s `/v1/metrics`) snapshot before and after
    /// and diff. Exposed here because consumers of pooled contexts
    /// need the numbers without depending on the solver crate's
    /// `SystemMatrix` trait.
    pub fn solver_snapshot(&self) -> Vec<(&'static str, SolverStats)> {
        let mut out = Vec::new();
        if let Some(ws) = &self.ws {
            out.push(("real", ws.sys.solver_stats()));
        }
        if let Some((sys, ..)) = &self.ac_sys {
            out.push(("ac", sys.solver_stats()));
        }
        out
    }

    /// The shared complex (AC) system matrix, re-targeted to `n`
    /// unknowns under `backend`. Cached structure survives between
    /// calls with matching order and backend — the batch-point reuse
    /// mirror of [`Workspace::ensure`].
    fn ac_system(&mut self, n: usize, sim: &SimOptions) -> &mut dyn SystemMatrix<Complex64> {
        let (backend, ordering) = (sim.matrix, sim.ordering);
        let (factor, threads) = (sim.factor, sim.factor_threads);
        let stale = self.ac_sys.as_ref().is_none_or(|(sys, b, o, f, t)| {
            let sparse = backend.resolve(n) == MatrixBackend::Sparse;
            sys.n() != n
                || b.resolve(n) != backend.resolve(n)
                || (sparse && *o != ordering)
                || (sparse && (f.resolve(n) != factor.resolve(n) || *t != threads))
        });
        if stale {
            self.ac_sys = Some((
                new_system_solver(n, backend, ordering, factor, threads),
                backend,
                ordering,
                factor,
                threads,
            ));
        }
        self.ac_sys.as_mut().expect("just ensured").0.as_mut()
    }
}

/// Runs every analysis card of the deck (no batch) and collects the
/// outcomes.
///
/// # Errors
///
/// Propagates elaboration and simulation failures.
pub fn run_deck(deck: &Deck) -> Result<DeckRun> {
    run_deck_with(deck, &ParamEnv::new())
}

/// [`run_deck`] under parameter overrides (one batch point).
///
/// # Errors
///
/// As [`run_deck`].
pub fn run_deck_with(deck: &Deck, overrides: &ParamEnv) -> Result<DeckRun> {
    let elab = Elaborator::new(deck)?;
    run_elaborated(&elab, overrides)
}

/// Runs the deck's analyses from an existing [`Elaborator`] (the
/// batch engine reuses compiled HDL models across points).
///
/// # Errors
///
/// As [`run_deck`].
pub fn run_elaborated(elab: &Elaborator<'_>, overrides: &ParamEnv) -> Result<DeckRun> {
    run_elaborated_ctx(elab, overrides, &mut RunCtx::default())
}

/// Obtains the circuit for one analysis slot: patches the slot's
/// cached circuit in place when the context reuses circuits and every
/// device supports `set_param`, otherwise re-elaborates.
///
/// # Errors
///
/// Propagates the (identical) expression/validation failures of the
/// patch and build paths.
fn obtain_circuit(
    elab: &Elaborator<'_>,
    ctx: &mut RunCtx,
    slot: usize,
    overrides: &ParamEnv,
    source_dc: Option<(&str, f64)>,
) -> Result<Circuit> {
    if let Some(mut ckt) = ctx.take_circuit(slot) {
        if elab.patch(&mut ckt, overrides, source_dc)? {
            ctx.stats.circuits_patched += 1;
            return Ok(ckt);
        }
    }
    let (ckt, _) = elab.build(overrides, source_dc)?;
    ctx.stats.circuits_built += 1;
    Ok(ckt)
}

/// The one patch-or-build fallback every reuse site shares: patches
/// `prev` in place when given and every device supports `set_param`,
/// otherwise re-elaborates. A partially patched circuit is dropped,
/// never reused.
///
/// # Errors
///
/// The (identical) expression/validation failures of the patch and
/// build paths.
pub(crate) fn patch_or_build(
    elab: &Elaborator<'_>,
    prev: Option<Circuit>,
    overrides: &ParamEnv,
    source_dc: Option<(&str, f64)>,
) -> Result<Circuit> {
    if let Some(mut ckt) = prev {
        if elab.patch(&mut ckt, overrides, source_dc)? {
            return Ok(ckt);
        }
    }
    elab.build(overrides, source_dc).map(|(c, _)| c)
}

/// [`run_elaborated`] with caller-owned reusable state (see
/// [`RunCtx`]).
///
/// # Errors
///
/// As [`run_deck`].
pub fn run_elaborated_ctx(
    elab: &Elaborator<'_>,
    overrides: &ParamEnv,
    ctx: &mut RunCtx,
) -> Result<DeckRun> {
    let deck = elab.deck();
    // The fingerprint covers the definition table: `.SUBCKT` bodies
    // from `.INCLUDE`d fragments are spliced into `deck.source` at
    // parse time, and `.INCLUDE`d HDL entities live in `hdl_blocks` —
    // both are hashed so a context reused across decks never patches
    // circuits built from other definitions.
    ctx.bind_deck(deck_fingerprint(deck));
    let env = param_env(deck, overrides)?;
    let sim = sim_options(deck, &env)?;
    if deck.analyses.is_empty() {
        // No analysis card will ever build the circuit, but invalid
        // device cards must still surface (a zero-valued resistor in
        // a deck without `.OP` is a deck error, not a silent no-op).
        elab.build(overrides, None)?;
    }
    let mut outcomes = Vec::new();
    for (slot, card) in deck.analyses.iter().enumerate() {
        let outcome = match card {
            AnalysisCard::Op { .. } => {
                let mut ckt = obtain_circuit(elab, ctx, slot, overrides, None)?;
                let guess = ctx.op_guess.clone();
                let ws = ctx.workspace(&sim);
                let op = dcop::solve_in(&mut ckt, &sim, guess.as_deref(), ws)?;
                ctx.stash_circuit(slot, ckt);
                AnalysisOutcome::Op(op)
            }
            AnalysisCard::Dc {
                sweep: var,
                start,
                stop,
                step,
                span,
            } => {
                let (v0, v1, dv) = (start.eval(&env)?, stop.eval(&env)?, step.eval(&env)?);
                let values = linear_points(v0, v1, dv)
                    .ok_or_else(|| NetlistError::elab_at("bad `.DC` range", *span))?;
                // The sweep patches one circuit across its values
                // (handed back point to point by
                // `dc_sweep_reuse_in`), seeded from the slot's cached
                // circuit and stashed again afterwards.
                let reuse = ctx.reuse_circuits;
                let mut seed = ctx.take_circuit(slot);
                let (var_name, result, last) = match var {
                    DcSweepVar::Source(src) => {
                        if !elab.has_source(src) {
                            return Err(NetlistError::elab_at(
                                format!("`.DC` sweeps unknown source `{src}`"),
                                *span,
                            ));
                        }
                        let (result, last) = dc_sweep_reuse_in(
                            |v, prev| {
                                let from = if reuse {
                                    prev.or_else(|| seed.take())
                                } else {
                                    None
                                };
                                patch_or_build(elab, from, overrides, Some((src.as_str(), v)))
                                    .map_err(to_spice_build)
                            },
                            &values,
                            &sim,
                            ctx.workspace(&sim),
                        )?;
                        (format!("v({src})"), result, last)
                    }
                    DcSweepVar::Param(p) => {
                        if !elab.declares_param(p) {
                            return Err(NetlistError::elab_at(
                                format!("`.DC PARAM` sweeps undeclared parameter `{p}`"),
                                *span,
                            ));
                        }
                        let (result, last) = dc_sweep_reuse_in(
                            |v, prev| {
                                let mut o = overrides.clone();
                                o.insert(p.clone(), v);
                                let from = if reuse {
                                    prev.or_else(|| seed.take())
                                } else {
                                    None
                                };
                                patch_or_build(elab, from, &o, None).map_err(to_spice_build)
                            },
                            &values,
                            &sim,
                            ctx.workspace(&sim),
                        )?;
                        (format!("param({p})"), result, last)
                    }
                };
                if let Some(ckt) = last {
                    ctx.stash_circuit(slot, ckt);
                }
                AnalysisOutcome::Dc {
                    var: var_name,
                    result,
                }
            }
            AnalysisCard::Ac {
                sweep: spec,
                span: _,
            } => {
                let fs = match spec {
                    AcSweepSpec::Decade { n, fstart, fstop } => FreqSweep::Decade {
                        start: fstart.eval(&env)?,
                        stop: fstop.eval(&env)?,
                        points_per_decade: n.eval(&env)?.round().max(1.0) as usize,
                    },
                    AcSweepSpec::Linear { n, fstart, fstop } => FreqSweep::Linear {
                        start: fstart.eval(&env)?,
                        stop: fstop.eval(&env)?,
                        points: n.eval(&env)?.round().max(2.0) as usize,
                    },
                    AcSweepSpec::List(fs) => {
                        let mut out = Vec::with_capacity(fs.len());
                        for f in fs {
                            out.push(f.eval(&env)?);
                        }
                        FreqSweep::List(out)
                    }
                };
                let mut ckt = obtain_circuit(elab, ctx, slot, overrides, None)?;
                // Same reuse shape as the other analyses: operating
                // point through the shared real workspace (with the
                // warm-start guess), frequency sweep through the
                // shared complex system.
                let freqs = fs.frequencies().map_err(NetlistError::from)?;
                let guess = ctx.op_guess.clone();
                let op = dcop::solve_in(&mut ckt, &sim, guess.as_deref(), ctx.workspace(&sim))?;
                let sys = ctx.ac_system(op.layout.n_unknowns, &sim);
                let ac = run_ac_with_op_in(&mut ckt, &freqs, &op, sys)?;
                ctx.stash_circuit(slot, ckt);
                AnalysisOutcome::Ac(ac)
            }
            AnalysisCard::Tran {
                tstep,
                tstop,
                fixed,
                span,
            } => {
                let (h, t1) = (tstep.eval(&env)?, tstop.eval(&env)?);
                if !(h > 0.0 && t1 > 0.0 && h < t1) {
                    return Err(NetlistError::elab_at(
                        format!("bad `.TRAN` times (tstep {h:.3e}, tstop {t1:.3e})"),
                        *span,
                    ));
                }
                let opts = if *fixed {
                    TranOptions::fixed_step(t1, h)
                } else {
                    // `tstep` is both the initial and the maximum step
                    // (SPICE's `tmax` defaulting), so deck authors
                    // control output resolution directly.
                    let mut o = TranOptions::new(t1);
                    o.h_init = Some(h);
                    o.h_max = Some(h);
                    o
                };
                let mut ckt = obtain_circuit(elab, ctx, slot, overrides, None)?;
                let guess = ctx.op_guess.clone();
                let ws = ctx.workspace(&sim);
                let tr = run_tran_in(&mut ckt, &opts, &sim, guess.as_deref(), ws)?;
                ctx.stash_circuit(slot, ckt);
                AnalysisOutcome::Tran(tr)
            }
        };
        outcomes.push((card.clone(), outcome));
    }
    let mut solver = Vec::new();
    if let Some(ws) = &ctx.ws {
        let st = ws.sys.solver_stats();
        if st.factors + st.refactors > 0 {
            solver.push(("real".to_string(), st));
        }
    }
    if let Some((sys, ..)) = &ctx.ac_sys {
        let st = sys.solver_stats();
        if st.factors + st.refactors > 0 {
            solver.push(("ac".to_string(), st));
        }
    }
    Ok(DeckRun {
        title: deck.title.clone(),
        outcomes,
        solver,
    })
}

/// Maps elaboration failures inside a sweep closure into the
/// simulator's error type (the closure must return `SpiceError`).
fn to_spice_build(e: NetlistError) -> mems_spice::SpiceError {
    mems_spice::SpiceError::Build(e.to_string())
}

/// Inclusive linear range with sign-checked step.
pub(crate) fn linear_points(start: f64, stop: f64, step: f64) -> Option<Vec<f64>> {
    if step == 0.0 || !step.is_finite() || !start.is_finite() || !stop.is_finite() {
        return None;
    }
    let step = if (stop - start).signum() == step.signum() || start == stop {
        step
    } else {
        -step
    };
    let n = ((stop - start) / step).round() as i64;
    if !(0..=1_000_000).contains(&n) {
        return None;
    }
    Some((0..=n).map(|i| start + step * i as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_artifacts_cross_threads() {
        // `mems serve` keeps owned decks and pooled warm `RunCtx`s
        // (circuits + symbolic factorizations) behind a shared cache
        // and hands them to worker threads; this must stay Send.
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Deck>();
        assert_sync::<Deck>();
        assert_send::<RunCtx>();
    }

    fn divider_deck() -> Deck {
        Deck::parse(
            "divider\n\
             .param vin=6 rtop=1k\n\
             Vs in 0 {vin}\n\
             R1 in out {rtop}\n\
             R2 out 0 2k\n\
             .op\n",
        )
        .unwrap()
    }

    #[test]
    fn elaborates_and_runs_op() {
        let deck = divider_deck();
        let run = run_deck(&deck).unwrap();
        assert_eq!(run.outcomes.len(), 1);
        match &run.outcomes[0].1 {
            AnalysisOutcome::Op(op) => {
                let v = op.by_label("v(out)").unwrap();
                assert!((v - 4.0).abs() < 1e-6, "v(out) = {v}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overrides_redefine_params() {
        let deck = divider_deck();
        let mut o = ParamEnv::new();
        o.insert("vin".into(), 12.0);
        let run = run_deck_with(&deck, &o).unwrap();
        match &run.outcomes[0].1 {
            AnalysisOutcome::Op(op) => {
                assert!((op.by_label("v(out)").unwrap() - 8.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dc_source_sweep_runs() {
        let deck =
            Deck::parse("sweep\nVs in 0 1\nR1 in out 1k\nR2 out 0 1k\n.dc vs 0 4 1\n").unwrap();
        let run = run_deck(&deck).unwrap();
        match &run.outcomes[0].1 {
            AnalysisOutcome::Dc { var, result } => {
                assert_eq!(var, "v(vs)");
                assert_eq!(result.values, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
                let out = result.trace("v(out)").unwrap();
                assert!((out[4] - 2.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mechanical_sugar_defaults_natures() {
        let deck = Deck::parse(
            "resonator\n\
             Is 0 vel PWL(0 0 1m 1u)\n\
             .node mechanical1 vel\n\
             Mm vel 0 1e-4\n\
             Kk vel 0 200\n\
             Dd vel 0 40m\n\
             .tran 0.1m 50m\n",
        )
        .unwrap();
        let run = run_deck(&deck).unwrap();
        match &run.outcomes[0].1 {
            AnalysisOutcome::Tran(tr) => {
                let x = tr.integrated_trace("v(vel)", 0.0).unwrap();
                // 1 µN / (200 N/m) = 5 nm static deflection.
                let tail = x.last().copied().unwrap();
                assert!((tail - 5e-9).abs() < 0.1e-9, "x(end) = {tail:e}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hdl_pin_nature_conflicts_are_caught() {
        // `tip` is declared electrical, but the entity's c/dd pins
        // are mechanical1 — X pins enforce the entity's natures.
        let deck = Deck::parse(
            "t\n\
             .node electrical tip\n\
             .hdl\n\
             ENTITY et IS\n\
              GENERIC (g : analog := 1.0);\n\
              PIN (a, b : electrical; c, dd : mechanical1);\n\
             END ENTITY et;\n\
             ARCHITECTURE a OF et IS\n\
             BEGIN\n\
               RELATION\n\
                 PROCEDURAL FOR dc, ac, transient =>\n\
                   [a, b].i %= g * [a, b].v;\n\
               END RELATION;\n\
             END ARCHITECTURE a;\n\
             .endhdl\n\
             Vs in 0 1\n\
             X1 in 0 tip 0 et\n\
             .op\n",
        )
        .unwrap();
        let err = run_deck(&deck).unwrap_err();
        assert!(
            err.to_string().contains("already exists with nature"),
            "{err}"
        );
    }

    #[test]
    fn unknown_entity_is_spanned() {
        let deck = Deck::parse("t\nX1 a 0 b 0 ghost\n.op\n").unwrap();
        let err = run_deck(&deck).unwrap_err();
        let r = err.render(&deck.source);
        assert!(r.contains("no `.HDL` block"), "{r}");
        assert!(r.contains("ghost"), "{r}");
    }

    #[test]
    fn entity_scan_respects_word_boundaries() {
        assert!(declares_entity("ENTITY relay IS", "relay"));
        assert!(!declares_entity("ENTITY relay2 IS", "relay"));
        assert!(declares_entity(
            "entity a is\nend;\nENTITY relay IS",
            "relay"
        ));
    }

    #[test]
    fn zero_valued_elements_are_rejected_with_span() {
        let src = "t\nC1 a 0 0\n.op\n";
        let deck = Deck::parse(src).unwrap();
        let err = run_deck(&deck).unwrap_err();
        let r = err.render(src);
        assert!(r.contains("capacitance must be positive"), "{r}");
        assert!(r.contains("line 2"), "{r}");
    }

    /// Every card kind the elaborator can build must also be
    /// patchable — a single unpatchable device silently downgrades
    /// the whole deck to rebuild-per-point (this is the regression
    /// test for the VCVS `as_any_mut` gap).
    #[test]
    fn every_card_kind_is_patchable() {
        let deck = Deck::parse(
            "all kinds\n\
             .param g=2 r=1k\n\
             .hdl\n\
             ENTITY e1 IS\n\
              GENERIC (k : analog := 1.0);\n\
              PIN (a, b : electrical);\n\
             END ENTITY e1;\n\
             ARCHITECTURE a OF e1 IS\n\
             BEGIN\n\
               RELATION\n\
                 PROCEDURAL FOR dc, ac, transient =>\n\
                   [a, b].i %= k * [a, b].v;\n\
               END RELATION;\n\
             END ARCHITECTURE a;\n\
             .endhdl\n\
             Vs in 0 SIN(0 1 1k) AC 1 0\n\
             Is in 0 PULSE(0 1m 0 1u 1u 1m 2m)\n\
             R1 in out {r}\n\
             C1 out 0 1n\n\
             L1 out 0 1m\n\
             E1 e1o 0 in 0 {g}\n\
             G1 g1o 0 in 0 {g}\n\
             F1 f1o 0 in 0 {g}\n\
             H1 h1o 0 in 0 {g}\n\
             B1 b1o 0 in 0 out 0 {g}\n\
             T1 e1o 0 t1o 0 2\n\
             Y1 g1o 0 y1o 0 0.5\n\
             Rl1 t1o 0 1k\n\
             Rl2 y1o 0 1k\n\
             Rl3 e1o 0 1k\n\
             Rl4 g1o 0 1k\n\
             Rl5 f1o 0 1k\n\
             Rl6 h1o 0 1k\n\
             Rl7 b1o 0 1k\n\
             Mm vel 0 1e-4\n\
             Kk vel 0 200\n\
             Dd vel 0 40m\n\
             X1 in 0 e1\n\
             .op\n",
        )
        .unwrap();
        let elab = Elaborator::new(&deck).unwrap();
        let (mut ckt, _) = elab.build(&ParamEnv::new(), None).unwrap();
        let mut over = ParamEnv::new();
        over.insert("g".into(), 3.0);
        over.insert("r".into(), 2.0e3);
        assert!(
            elab.patch(&mut ckt, &over, None).unwrap(),
            "every device kind must take the set_param path"
        );
        // The re-bound values actually landed in the devices.
        let e1 = ckt.device_index("e1").unwrap();
        let vcvs = ckt.devices_mut()[e1]
            .as_any_mut()
            .and_then(|d| d.downcast_mut::<Vcvs>())
            .expect("E card builds a Vcvs");
        assert_eq!(vcvs.gain(), 3.0);
        let r1 = ckt.device_index("r1").unwrap();
        let res = ckt.devices_mut()[r1]
            .as_any_mut()
            .and_then(|d| d.downcast_mut::<Resistor>())
            .expect("R card builds a Resistor");
        assert_eq!(res.resistance(), 2.0e3);
    }

    /// A deck with no analysis cards still validates its devices
    /// (`run_elaborated_ctx` only builds circuits per analysis card,
    /// so the empty case needs an explicit validation build).
    #[test]
    fn deck_without_analyses_still_validates_devices() {
        let src = "t\nVs in 0 5\nR1 in out 0\n";
        let deck = Deck::parse(src).unwrap();
        let err = run_deck(&deck).unwrap_err();
        assert!(
            err.to_string().contains("resistance must be nonzero"),
            "{err}"
        );
        // A valid zero-analysis deck still runs (empty outcome list).
        let ok = Deck::parse("t\nVs in 0 5\nR1 in 0 1k\n").unwrap();
        assert!(run_deck(&ok).unwrap().outcomes.is_empty());
    }

    // -----------------------------------------------------------
    // Hierarchical (.SUBCKT) elaboration
    // -----------------------------------------------------------

    /// Two-level divider: `half` divides by two, `quarter` chains two
    /// `half`s through a private internal node.
    const QUARTER_DECK: &str = "\
quarter
.param vin=8
.subckt half in out PARAMS: r=1k
R1 in out {r}
R2 out 0 {r}
.ends half
.subckt quarter in out
Xa in mid half
Xb mid out half r=2k
.ends quarter
Vs in 0 {vin}
Xq in tap quarter
Rl tap 0 1e9
.op
";

    #[test]
    fn nested_subckts_flatten_with_hierarchical_names() {
        let deck = Deck::parse(QUARTER_DECK).unwrap();
        let elab = Elaborator::new(&deck).unwrap();
        let (ckt, _) = elab.build(&ParamEnv::new(), None).unwrap();
        // Flattened device paths.
        for dev in ["vs", "xq.xa.r1", "xq.xa.r2", "xq.xb.r1", "xq.xb.r2", "rl"] {
            assert!(ckt.device_index(dev).is_some(), "missing `{dev}`");
        }
        // The inner node of `quarter` is private and hierarchical;
        // ports map onto the caller's nodes.
        assert!(ckt.find_node("xq.mid").is_some());
        assert!(ckt.find_node("tap").is_some());
        assert!(ckt.find_node("xq.out").is_none(), "port must not leak");
        let run = run_deck(&deck).unwrap();
        match &run.outcomes[0].1 {
            AnalysisOutcome::Op(op) => {
                // Stage b (2k+2k) loads stage a's midpoint:
                // v(mid) = 8·(1k∥4k)/(1k + 1k∥4k) = 32/9,
                // v(tap) = v(mid)/2 = 16/9.
                let v = op.by_label("v(tap)").unwrap();
                assert!((v - 16.0 / 9.0).abs() < 1e-4, "v(tap) = {v}");
                let mid = op.by_label("v(xq.mid)").unwrap();
                assert!((mid - 32.0 / 9.0).abs() < 1e-4, "v(xq.mid) = {mid}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hierarchical_overrides_rebind_instance_params() {
        let deck = Deck::parse(QUARTER_DECK).unwrap();
        // Override the *inner* instance's formal through its path:
        // xq.xb gets r=6k top / 6k bottom — still a half divider, but
        // prove the override lands by instead overriding one leg of
        // xq.xa via its local scope? Formals are per instance: set
        // xq.xb.r and check nothing else moved.
        let mut over = ParamEnv::new();
        over.insert("xq.xb.r".into(), 6.0e3);
        let run = run_deck_with(&deck, &over).unwrap();
        match &run.outcomes[0].1 {
            AnalysisOutcome::Op(op) => {
                // Stage b now loads mid with 12k:
                // v(mid) = 8·(1k∥12k)/(1k + 1k∥12k) = 3.84,
                // v(tap) = v(mid)/2 = 1.92.
                assert!((op.by_label("v(xq.mid)").unwrap() - 3.84).abs() < 1e-4);
                assert!((op.by_label("v(tap)").unwrap() - 1.92).abs() < 1e-4);
            }
            other => panic!("{other:?}"),
        }
        // An override on a *different* instance path must not leak.
        let elab = Elaborator::new(&deck).unwrap();
        let q = elab.qualified_param_env(&over).unwrap();
        assert_eq!(q.get("xq.xb.r"), Some(&6.0e3));
        assert_eq!(q.get("xq.xa.r"), Some(&1.0e3));
        assert_eq!(q.get("vin"), Some(&8.0));
        assert!(elab.declares_param("xq.xa.r"));
        assert!(!elab.declares_param("xq.xc.r"));
    }

    #[test]
    fn hierarchical_patch_matches_build() {
        let deck = Deck::parse(QUARTER_DECK).unwrap();
        let elab = Elaborator::new(&deck).unwrap();
        let (mut ckt, _) = elab.build(&ParamEnv::new(), None).unwrap();
        let mut over = ParamEnv::new();
        over.insert("xq.xa.r".into(), 3.0e3);
        assert!(
            elab.patch(&mut ckt, &over, None).unwrap(),
            "hierarchical decks take the set_param path"
        );
        let i = ckt.device_index("xq.xa.r1").unwrap();
        let r = ckt.devices_mut()[i]
            .as_any_mut()
            .and_then(|d| d.downcast_mut::<Resistor>())
            .unwrap();
        assert_eq!(r.resistance(), 3.0e3);
        // Untouched sibling instance keeps its default.
        let i = ckt.device_index("xq.xb.r1").unwrap();
        let r = ckt.devices_mut()[i]
            .as_any_mut()
            .and_then(|d| d.downcast_mut::<Resistor>())
            .unwrap();
        assert_eq!(r.resistance(), 2.0e3);
    }

    #[test]
    fn inner_params_shadow_outer_and_defaults_see_outer() {
        let deck = Deck::parse(
            "shadow\n\
             .param r=1k scale=3\n\
             .subckt cell a b PARAMS: r={500*scale}\n\
             .param rr={r*2}\n\
             R1 a b {rr}\n\
             .ends\n\
             Vs in 0 1\n\
             X1 in 0 cell\n\
             X2 in 0 cell r=100\n\
             .op\n",
        )
        .unwrap();
        let elab = Elaborator::new(&deck).unwrap();
        let q = elab.qualified_param_env(&ParamEnv::new()).unwrap();
        // Default evaluated in the instance scope sees the outer
        // `scale`; the formal shadows the global `r` for the body.
        assert_eq!(q.get("x1.r"), Some(&1500.0));
        assert_eq!(q.get("x1.rr"), Some(&3000.0));
        // Call-site args win over defaults.
        assert_eq!(q.get("x2.r"), Some(&100.0));
        assert_eq!(q.get("x2.rr"), Some(&200.0));
        assert_eq!(q.get("r"), Some(&1000.0));
    }

    #[test]
    fn subckt_diagnostics_have_spans() {
        // Cycle.
        let src =
            "t\n.subckt a p q\nXi p q b\n.ends\n.subckt b p q\nXj p q a\n.ends\nX1 in 0 a\n.op\n";
        let deck = Deck::parse(src).unwrap();
        let err = Elaborator::new(&deck).err().expect("cycle detected");
        assert!(err.to_string().contains("recursive subcircuit"), "{err}");
        assert!(err.span().is_some());

        // Port arity.
        let src = "t\n.subckt a p q\nR1 p q 1k\n.ends\nX1 in mid out a\n.op\n";
        let deck = Deck::parse(src).unwrap();
        let err = Elaborator::new(&deck).err().expect("arity checked");
        assert!(
            err.to_string()
                .contains("has 2 ports but 3 nodes are connected"),
            "{err}"
        );

        // Unknown parameter override.
        let src = "t\n.subckt a p q PARAMS: r=1\nR1 p q {r}\n.ends\nX1 in 0 a bogus=2\n.op\n";
        let deck = Deck::parse(src).unwrap();
        let err = Elaborator::new(&deck).err().expect("unknown arg checked");
        assert!(err.to_string().contains("no parameter `bogus`"), "{err}");

        // Formal with neither value nor default.
        let src = "t\n.subckt a p q PARAMS: r\nR1 p q {r}\n.ends\nX1 in 0 a\n.op\n";
        let deck = Deck::parse(src).unwrap();
        let err = run_deck(&deck).unwrap_err();
        assert!(err.to_string().contains("no value and no default"), "{err}");

        // Unknown callee keeps the entity wording.
        let src = "t\nX1 a 0 ghost\n.op\n";
        let deck = Deck::parse(src).unwrap();
        let err = run_deck(&deck).unwrap_err();
        assert!(err.to_string().contains("no `.SUBCKT` definition"), "{err}");
    }

    #[test]
    fn hierarchical_dc_param_sweep_and_source_sweep() {
        let deck = Deck::parse(
            "hdc\n\
             .subckt div a b PARAMS: rbot=1k\n\
             Rt a b 1k\n\
             Rb b 0 {rbot}\n\
             .ends\n\
             Vs in 0 6\n\
             X1 in out div\n\
             .dc param x1.rbot 1k 3k 1k\n",
        )
        .unwrap();
        let run = run_deck(&deck).unwrap();
        match &run.outcomes[0].1 {
            AnalysisOutcome::Dc { var, result } => {
                assert_eq!(var, "param(x1.rbot)");
                let out = result.trace("v(out)").unwrap();
                let expect: Vec<f64> = [1.0e3, 2.0e3, 3.0e3]
                    .iter()
                    .map(|r| 6.0 * r / (1.0e3 + r))
                    .collect();
                for (a, b) in out.iter().zip(&expect) {
                    assert!((a - b).abs() < 1e-6, "{a} vs {b}");
                }
            }
            other => panic!("{other:?}"),
        }
        // A source inside a subcircuit is addressable by path.
        let deck = Deck::parse(
            "hsrc\n\
             .subckt src p\nVs p 0 1\n.ends\n\
             X1 in src\n\
             R1 in 0 1k\n\
             .dc x1.vs 0 2 1\n",
        )
        .unwrap();
        let run = run_deck(&deck).unwrap();
        match &run.outcomes[0].1 {
            AnalysisOutcome::Dc { var, result } => {
                assert_eq!(var, "v(x1.vs)");
                let out = result.trace("v(in)").unwrap();
                assert_eq!(out.len(), 3);
                assert!((out[2] - 2.0).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
    }

    /// A context reused across *different* decks must not patch the
    /// other deck's circuits, even when device names/kinds coincide.
    #[test]
    fn runctx_does_not_cross_patch_between_decks() {
        // Same device names and kinds, different wiring: deck A is a
        // divider (v(out) = vin/2), deck B ties R2 across the source
        // instead (v(out) = vin).
        let deck_a =
            Deck::parse("a\n.param vin=6\nVs in 0 {vin}\nR1 in out 1k\nR2 out 0 1k\n.op\n")
                .unwrap();
        let deck_b =
            Deck::parse("b\n.param vin=6\nVs in 0 {vin}\nR1 in out 1k\nR2 in out 1k\n.op\n")
                .unwrap();
        let mut ctx = RunCtx::default();
        let ea = Elaborator::new(&deck_a).unwrap();
        let eb = Elaborator::new(&deck_b).unwrap();
        let ra = run_elaborated_ctx(&ea, &ParamEnv::new(), &mut ctx).unwrap();
        let rb = run_elaborated_ctx(&eb, &ParamEnv::new(), &mut ctx).unwrap();
        let v = |run: &DeckRun| match &run.outcomes[0].1 {
            AnalysisOutcome::Op(op) => op.by_label("v(out)").unwrap(),
            other => panic!("{other:?}"),
        };
        assert!((v(&ra) - 3.0).abs() < 1e-6, "divider: {}", v(&ra));
        assert!((v(&rb) - 6.0).abs() < 1e-6, "direct tie: {}", v(&rb));
    }
}
