//! Error type of the deck frontend, following the `mems-hdl` span
//! idiom: parse-stage errors carry byte spans into the deck text and
//! render with a caret excerpt.

use mems_hdl::span::{excerpt, Span};
use std::fmt;

/// Errors produced while lexing, parsing, elaborating, or running a
/// deck.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// Syntax error in the deck text.
    Parse {
        /// What went wrong.
        message: String,
        /// Where in the deck source.
        span: Span,
    },
    /// Elaboration error (unknown entity, bad node nature, parameter
    /// evaluation failure, …). Carries a span when the failing card is
    /// known.
    Elab {
        /// What went wrong.
        message: String,
        /// Where in the deck source, when attributable.
        span: Option<Span>,
    },
    /// An embedded HDL-A model failed to compile; the message already
    /// includes the HDL compiler's own rendered excerpt.
    Hdl(String),
    /// The simulator rejected the elaborated circuit or failed to
    /// converge.
    Spice(mems_spice::SpiceError),
    /// An `.INCLUDE`d deck fragment failed to parse; the message
    /// already includes a rendered excerpt of the fragment.
    Include(String),
    /// An `.INCLUDE` file could not be read.
    Io(String),
}

impl NetlistError {
    /// Creates a parse error.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        NetlistError::Parse {
            message: message.into(),
            span,
        }
    }

    /// Creates an elaboration error attached to a card.
    pub fn elab_at(message: impl Into<String>, span: Span) -> Self {
        NetlistError::Elab {
            message: message.into(),
            span: Some(span),
        }
    }

    /// The same error with its span (when any) shifted `delta` bytes
    /// right — for diagnostics raised inside spliced include text.
    pub fn offset(self, delta: usize) -> Self {
        match self {
            NetlistError::Parse { message, span } => NetlistError::Parse {
                message,
                span: span.offset(delta),
            },
            NetlistError::Elab { message, span } => NetlistError::Elab {
                message,
                span: span.map(|s| s.offset(delta)),
            },
            other => other,
        }
    }

    /// The deck-source span, when the error has one.
    pub fn span(&self) -> Option<Span> {
        match self {
            NetlistError::Parse { span, .. } => Some(*span),
            NetlistError::Elab { span, .. } => *span,
            _ => None,
        }
    }

    /// Formats the error with a one-line source excerpt and caret.
    pub fn render(&self, src: &str) -> String {
        match self.span() {
            Some(span) => format!("{self}\n{}", excerpt(src, span)),
            None => self.to_string(),
        }
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Parse { message, .. } => write!(f, "deck parse error: {message}"),
            NetlistError::Elab { message, .. } => write!(f, "deck elaboration error: {message}"),
            NetlistError::Hdl(m) => write!(f, "hdl error: {m}"),
            NetlistError::Spice(e) => write!(f, "simulation error: {e}"),
            NetlistError::Include(m) => write!(f, "include error: {m}"),
            NetlistError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for NetlistError {}

impl From<mems_spice::SpiceError> for NetlistError {
    fn from(e: mems_spice::SpiceError) -> Self {
        NetlistError::Spice(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NetlistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_caret() {
        let src = "title\nR1 a b oops\n";
        let pos = src.find("oops").unwrap();
        let e = NetlistError::parse("bad value", Span::new(pos, pos + 4));
        let r = e.render(src);
        assert!(r.contains("deck parse error: bad value"));
        assert!(r.contains("^^^^"));
        assert!(r.contains("line 2"));
    }

    #[test]
    fn spanless_errors_render_plainly() {
        let e = NetlistError::Io("missing file".into());
        assert_eq!(e.render("src"), "io error: missing file");
        assert!(e.span().is_none());
    }
}
