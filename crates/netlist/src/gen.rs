//! Generated meshed workloads.
//!
//! The shipped example decks are paper-scale (a few dozen unknowns);
//! the solver-stack work (sparse LU, symbolic reuse, fill-reducing
//! ordering) only shows its character on *meshed* topologies. This
//! module generates a parameterized N×M grid of electromechanical
//! cells out of the existing `.SUBCKT` machinery: every grid edge is
//! a `gcell` instance — an R‖C electrical link whose branch is
//! gyrator-coupled to a private spring/mass/damper resonator — so the
//! MNA pattern is a 5-point electrical stencil with a mechanical
//! velocity node and a spring-force branch hanging off every edge
//! (`n ≈ 5·rows·cols`). A corner is
//! driven, the opposite corner carries a quadratic sink (so operating
//! points stay nonlinear and cost several Newton iterations) plus a
//! load.
//!
//! Used by the `batch_ordering` bench (natural vs AMD fill/factor at
//! n ≈ 100/400/1600), the backend-agreement tests (dense ≡ sparse ≡
//! sparse+AMD), and as the source of `examples/decks/grid_cells.cir`.

use std::fmt::Write as _;

/// Knobs for [`grid_deck_with`].
#[derive(Debug, Clone)]
pub struct GridDeckOptions {
    /// Body of the `.OPTIONS` card (empty = no card). The default
    /// forces the sparse backend so the ordering actually engages.
    pub options: String,
    /// Add an `.AC` decade sweep (and give the drive an `AC 1` spec).
    pub ac: bool,
    /// Drive with a pulse and add a short `.TRAN` card.
    pub tran: bool,
    /// Add a `.STEP` over the cell resistance with this many points
    /// (`0` = no `.STEP`).
    pub step_points: usize,
}

impl Default for GridDeckOptions {
    fn default() -> Self {
        GridDeckOptions {
            options: "sparse=1".to_string(),
            ac: false,
            tran: false,
            step_points: 0,
        }
    }
}

/// [`grid_deck_with`] under the default options (`.OP` only, sparse
/// backend forced).
pub fn grid_deck(rows: usize, cols: usize) -> String {
    grid_deck_with(rows, cols, &GridDeckOptions::default())
}

/// Unknown-count estimate for a `rows × cols` grid deck: the
/// electrical grid nodes, one mechanical velocity node plus one
/// spring-force branch per edge cell, and the drive branch.
pub fn grid_unknowns(rows: usize, cols: usize) -> usize {
    let edges = rows * (cols - 1) + (rows - 1) * cols;
    rows * cols + 2 * edges + 1
}

/// Generates the grid deck text (parse it with
/// [`crate::Deck::parse`]).
///
/// # Panics
///
/// Panics when `rows` or `cols` is zero or the grid has a single
/// node (no edges to place cells on).
pub fn grid_deck_with(rows: usize, cols: usize, opts: &GridDeckOptions) -> String {
    assert!(
        rows >= 1 && cols >= 1 && rows * cols >= 2,
        "degenerate grid"
    );
    let mut d = String::new();
    let node = |r: usize, c: usize| format!("n{r}_{c}");
    let corner = node(rows - 1, cols - 1);
    let _ = writeln!(
        d,
        "generated {rows}x{cols} electromechanical cell grid (~{} unknowns)",
        grid_unknowns(rows, cols)
    );
    let _ = writeln!(d, ".param rcell=1k ccell=10n gm=2e-4");
    // One cell per grid edge: R‖C link + gyrator-coupled suspension.
    let _ = writeln!(d, ".subckt gcell a b PARAMS: r={{rcell}}");
    let _ = writeln!(d, "Rc a b {{r}}");
    let _ = writeln!(d, "Cc a b {{ccell}}");
    let _ = writeln!(d, "Mm vel 0 1e-5");
    let _ = writeln!(d, "Kk vel 0 50");
    let _ = writeln!(d, "Dd vel 0 2e-3");
    let _ = writeln!(d, "Gxm vel 0 a b {{gm}}");
    let _ = writeln!(d, "Gmx a b vel 0 {{0-gm}}");
    let _ = writeln!(d, ".ends gcell");
    if opts.tran {
        let _ = writeln!(
            d,
            "Vs {} 0 PULSE(0 5 0.1m 0.2m 0.2m 5m){}",
            node(0, 0),
            ac_spec(opts)
        );
    } else {
        let _ = writeln!(d, "Vs {} 0 5{}", node(0, 0), ac_spec(opts));
    }
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                let _ = writeln!(d, "Xh{r}_{c} {} {} gcell", node(r, c), node(r, c + 1));
            }
            if r + 1 < rows {
                let _ = writeln!(d, "Xv{r}_{c} {} {} gcell", node(r, c), node(r + 1, c));
            }
        }
    }
    // Quadratic sink keeps every operating point nonlinear.
    let _ = writeln!(d, "Bq {corner} 0 {corner} 0 {corner} 0 1e-4");
    let _ = writeln!(d, "Rl {corner} 0 1k");
    let _ = writeln!(d, ".op");
    let _ = writeln!(d, ".print op v({corner})");
    if opts.ac {
        let _ = writeln!(d, ".ac dec 3 10 10k");
        let _ = writeln!(d, ".print ac v({corner})");
    }
    if opts.tran {
        let _ = writeln!(d, ".tran 0.2m 4m");
        let _ = writeln!(d, ".print tran v({corner})");
    }
    if opts.step_points > 1 {
        let (lo, hi) = (800usize, 1200usize);
        let step = (hi - lo) / (opts.step_points - 1);
        let _ = writeln!(
            d,
            ".step param rcell {lo} {} {}",
            lo + step * (opts.step_points - 1),
            step.max(1)
        );
    }
    if !opts.options.is_empty() {
        let _ = writeln!(d, ".options {}", opts.options);
    }
    let _ = writeln!(d, ".end");
    d
}

fn ac_spec(opts: &GridDeckOptions) -> &'static str {
    if opts.ac {
        " AC 1"
    } else {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_deck, AnalysisOutcome, Deck};

    #[test]
    fn generated_deck_parses_and_solves() {
        let src = grid_deck(4, 4);
        let deck = Deck::parse(&src).expect("grid deck parses");
        let run = run_deck(&deck).expect("grid deck solves");
        match &run.outcomes[0].1 {
            AnalysisOutcome::Op(op) => {
                let v = op.by_label("v(n3_3)").expect("corner trace");
                assert!(v.is_finite() && v > 0.0 && v < 5.0, "v(corner) = {v}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_estimate_matches_elaboration() {
        let src = grid_deck(4, 5);
        let deck = Deck::parse(&src).unwrap();
        let elab = crate::Elaborator::new(&deck).unwrap();
        let (mut ckt, _) = elab.build(&Default::default(), None).unwrap();
        assert_eq!(ckt.layout().n_unknowns, grid_unknowns(4, 5));
    }

    #[test]
    fn optional_cards_appear() {
        let src = grid_deck_with(
            3,
            3,
            &GridDeckOptions {
                options: "sparse=1 order=natural".into(),
                ac: true,
                tran: false,
                step_points: 5,
            },
        );
        assert!(src.contains(".ac dec"));
        assert!(src.contains("AC 1"));
        assert!(src.contains(".step param rcell"));
        assert!(src.contains(".options sparse=1 order=natural"));
        let deck = Deck::parse(&src).unwrap();
        assert_eq!(deck.analyses.len(), 2);
        assert!(deck.step.is_some());
    }
}
