//! Generated meshed workloads.
//!
//! The shipped example decks are paper-scale (a few dozen unknowns);
//! the solver-stack work (sparse LU, symbolic reuse, fill-reducing
//! ordering) only shows its character on *meshed* topologies. This
//! module generates a parameterized N×M grid of electromechanical
//! cells out of the existing `.SUBCKT` machinery: every grid edge is
//! a `gcell` instance — an R‖C electrical link whose branch is
//! gyrator-coupled to a private spring/mass/damper resonator — so the
//! MNA pattern is a 5-point electrical stencil with a mechanical
//! velocity node and a spring-force branch hanging off every edge
//! (`n ≈ 5·rows·cols`). A corner is
//! driven, the opposite corner carries a quadratic sink (so operating
//! points stay nonlinear and cost several Newton iterations) plus a
//! load.
//!
//! Used by the `batch_ordering` bench (natural vs AMD fill/factor at
//! n ≈ 100/400/1600), the backend-agreement tests (dense ≡ sparse ≡
//! sparse+AMD), and as the source of `examples/decks/grid_cells.cir`.

use std::fmt::Write as _;

/// Knobs for [`grid_deck_with`].
#[derive(Debug, Clone)]
pub struct GridDeckOptions {
    /// Body of the `.OPTIONS` card (empty = no card). The default
    /// forces the sparse backend so the ordering actually engages.
    pub options: String,
    /// Add an `.AC` decade sweep (and give the drive an `AC 1` spec).
    pub ac: bool,
    /// Drive with a pulse and add a short `.TRAN` card.
    pub tran: bool,
    /// Add a `.STEP` over the cell resistance with this many points
    /// (`0` = no `.STEP`).
    pub step_points: usize,
}

impl Default for GridDeckOptions {
    fn default() -> Self {
        GridDeckOptions {
            options: "sparse=1".to_string(),
            ac: false,
            tran: false,
            step_points: 0,
        }
    }
}

/// [`grid_deck_with`] under the default options (`.OP` only, sparse
/// backend forced).
pub fn grid_deck(rows: usize, cols: usize) -> String {
    grid_deck_with(rows, cols, &GridDeckOptions::default())
}

/// Unknown-count estimate for a `rows × cols` grid deck: the
/// electrical grid nodes, one mechanical velocity node plus one
/// spring-force branch per edge cell, and the drive branch.
pub fn grid_unknowns(rows: usize, cols: usize) -> usize {
    let edges = rows * (cols - 1) + (rows - 1) * cols;
    rows * cols + 2 * edges + 1
}

/// Generates the grid deck text (parse it with
/// [`crate::Deck::parse`]).
///
/// # Panics
///
/// Panics when `rows` or `cols` is zero or the grid has a single
/// node (no edges to place cells on).
pub fn grid_deck_with(rows: usize, cols: usize, opts: &GridDeckOptions) -> String {
    assert!(
        rows >= 1 && cols >= 1 && rows * cols >= 2,
        "degenerate grid"
    );
    let mut d = String::new();
    let node = |r: usize, c: usize| format!("n{r}_{c}");
    let corner = node(rows - 1, cols - 1);
    let _ = writeln!(
        d,
        "generated {rows}x{cols} electromechanical cell grid (~{} unknowns)",
        grid_unknowns(rows, cols)
    );
    let _ = writeln!(d, ".param rcell=1k ccell=10n gm=2e-4");
    // One cell per grid edge: R‖C link + gyrator-coupled suspension.
    let _ = writeln!(d, ".subckt gcell a b PARAMS: r={{rcell}}");
    let _ = writeln!(d, "Rc a b {{r}}");
    let _ = writeln!(d, "Cc a b {{ccell}}");
    let _ = writeln!(d, "Mm vel 0 1e-5");
    let _ = writeln!(d, "Kk vel 0 50");
    let _ = writeln!(d, "Dd vel 0 2e-3");
    let _ = writeln!(d, "Gxm vel 0 a b {{gm}}");
    let _ = writeln!(d, "Gmx a b vel 0 {{0-gm}}");
    let _ = writeln!(d, ".ends gcell");
    if opts.tran {
        let _ = writeln!(
            d,
            "Vs {} 0 PULSE(0 5 0.1m 0.2m 0.2m 5m){}",
            node(0, 0),
            ac_spec(opts)
        );
    } else {
        let _ = writeln!(d, "Vs {} 0 5{}", node(0, 0), ac_spec(opts));
    }
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                let _ = writeln!(d, "Xh{r}_{c} {} {} gcell", node(r, c), node(r, c + 1));
            }
            if r + 1 < rows {
                let _ = writeln!(d, "Xv{r}_{c} {} {} gcell", node(r, c), node(r + 1, c));
            }
        }
    }
    // Quadratic sink keeps every operating point nonlinear.
    let _ = writeln!(d, "Bq {corner} 0 {corner} 0 {corner} 0 1e-4");
    let _ = writeln!(d, "Rl {corner} 0 1k");
    let _ = writeln!(d, ".op");
    let _ = writeln!(d, ".print op v({corner})");
    if opts.ac {
        let _ = writeln!(d, ".ac dec 3 10 10k");
        let _ = writeln!(d, ".print ac v({corner})");
    }
    if opts.tran {
        let _ = writeln!(d, ".tran 0.2m 4m");
        let _ = writeln!(d, ".print tran v({corner})");
    }
    if opts.step_points > 1 {
        let (lo, hi) = (800usize, 1200usize);
        let step = (hi - lo) / (opts.step_points - 1);
        let _ = writeln!(
            d,
            ".step param rcell {lo} {} {}",
            lo + step * (opts.step_points - 1),
            step.max(1)
        );
    }
    if !opts.options.is_empty() {
        let _ = writeln!(d, ".options {}", opts.options);
    }
    let _ = writeln!(d, ".end");
    d
}

fn ac_spec(opts: &GridDeckOptions) -> &'static str {
    if opts.ac {
        " AC 1"
    } else {
        ""
    }
}

/// Unknown-count estimate for an `nx × ny × nz` 3-D grid deck (see
/// [`grid_unknowns`]; the 3-D stencil has edges along all three axes).
pub fn grid3d_unknowns(nx: usize, ny: usize, nz: usize) -> usize {
    let edges = nx.saturating_sub(1) * ny * nz
        + nx * ny.saturating_sub(1) * nz
        + nx * ny * nz.saturating_sub(1);
    nx * ny * nz + 2 * edges + 1
}

/// [`grid3d_deck_with`] under the default options (`.OP` only, sparse
/// backend forced) on an `g × g × g` cube.
pub fn grid3d_deck(g: usize) -> String {
    grid3d_deck_with(g, g, g, &GridDeckOptions::default())
}

/// Generates an `nx × ny × nz` 3-D electromechanical cell grid: the
/// same `gcell` on every edge of a 7-point stencil, so the MNA
/// pattern is the 3-D analogue of [`grid_deck_with`]'s
/// (`n ≈ 7·nx·ny·nz`). 3-D stencils fill dramatically more than 2-D
/// ones under factorization, which is what pushes the meshed tier
/// towards n ≈ 10⁴–10⁵.
///
/// # Panics
///
/// Panics on degenerate grids (fewer than two nodes).
pub fn grid3d_deck_with(nx: usize, ny: usize, nz: usize, opts: &GridDeckOptions) -> String {
    assert!(
        nx >= 1 && ny >= 1 && nz >= 1 && nx * ny * nz >= 2,
        "degenerate grid"
    );
    let node = |x: usize, y: usize, z: usize| format!("n{x}_{y}_{z}");
    let mut edges = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((node(x, y, z), node(x + 1, y, z)));
                }
                if y + 1 < ny {
                    edges.push((node(x, y, z), node(x, y + 1, z)));
                }
                if z + 1 < nz {
                    edges.push((node(x, y, z), node(x, y, z + 1)));
                }
            }
        }
    }
    let title = format!(
        "generated {nx}x{ny}x{nz} electromechanical cell grid (~{} unknowns)",
        grid3d_unknowns(nx, ny, nz)
    );
    edge_list_deck(
        &title,
        &node(0, 0, 0),
        &node(nx - 1, ny - 1, nz - 1),
        &edges,
        opts,
    )
}

/// Unknown-count estimate for [`mesh_deck_with`]: the mesh nodes, one
/// mechanical velocity node plus one spring-force branch per edge
/// cell, and the drive branch.
pub fn mesh_unknowns(n_nodes: usize, n_edges: usize) -> usize {
    n_nodes + 2 * n_edges + 1
}

/// Generates a deck from an arbitrary node/edge graph — the import
/// path for FE meshes (`crates/fem`'s structured meshes, or anything
/// else that can enumerate its edges). Every edge becomes a `gcell`
/// instance between `m<i>` nodes; node 0 is driven and node
/// `n_nodes - 1` carries the quadratic sink + load. The caller
/// supplies each undirected edge once.
///
/// # Panics
///
/// Panics when the graph has fewer than two nodes, no edges, or an
/// edge endpoint out of range.
pub fn mesh_deck_with(n_nodes: usize, edges: &[(usize, usize)], opts: &GridDeckOptions) -> String {
    assert!(n_nodes >= 2 && !edges.is_empty(), "degenerate mesh");
    let named: Vec<(String, String)> = edges
        .iter()
        .map(|&(a, b)| {
            assert!(a < n_nodes && b < n_nodes && a != b, "bad edge ({a},{b})");
            (format!("m{a}"), format!("m{b}"))
        })
        .collect();
    let title = format!(
        "generated mesh-import deck: {n_nodes} nodes, {} edges (~{} unknowns)",
        edges.len(),
        mesh_unknowns(n_nodes, edges.len())
    );
    edge_list_deck(&title, "m0", &format!("m{}", n_nodes - 1), &named, opts)
}

/// The shared writer behind [`grid3d_deck_with`] and
/// [`mesh_deck_with`]: one `gcell` per named edge, drive at `drive`,
/// quadratic sink + load at `sink`.
fn edge_list_deck(
    title: &str,
    drive: &str,
    sink: &str,
    edges: &[(String, String)],
    opts: &GridDeckOptions,
) -> String {
    let mut d = String::new();
    let _ = writeln!(d, "{title}");
    let _ = writeln!(d, ".param rcell=1k ccell=10n gm=2e-4");
    let _ = writeln!(d, ".subckt gcell a b PARAMS: r={{rcell}}");
    let _ = writeln!(d, "Rc a b {{r}}");
    let _ = writeln!(d, "Cc a b {{ccell}}");
    let _ = writeln!(d, "Mm vel 0 1e-5");
    let _ = writeln!(d, "Kk vel 0 50");
    let _ = writeln!(d, "Dd vel 0 2e-3");
    let _ = writeln!(d, "Gxm vel 0 a b {{gm}}");
    let _ = writeln!(d, "Gmx a b vel 0 {{0-gm}}");
    let _ = writeln!(d, ".ends gcell");
    if opts.tran {
        let _ = writeln!(
            d,
            "Vs {drive} 0 PULSE(0 5 0.1m 0.2m 0.2m 5m){}",
            ac_spec(opts)
        );
    } else {
        let _ = writeln!(d, "Vs {drive} 0 5{}", ac_spec(opts));
    }
    for (k, (a, b)) in edges.iter().enumerate() {
        let _ = writeln!(d, "Xe{k} {a} {b} gcell");
    }
    let _ = writeln!(d, "Bq {sink} 0 {sink} 0 {sink} 0 1e-4");
    let _ = writeln!(d, "Rl {sink} 0 1k");
    let _ = writeln!(d, ".op");
    let _ = writeln!(d, ".print op v({sink})");
    if opts.ac {
        let _ = writeln!(d, ".ac dec 3 10 10k");
        let _ = writeln!(d, ".print ac v({sink})");
    }
    if opts.tran {
        let _ = writeln!(d, ".tran 0.2m 4m");
        let _ = writeln!(d, ".print tran v({sink})");
    }
    if opts.step_points > 1 {
        let (lo, hi) = (800usize, 1200usize);
        let step = (hi - lo) / (opts.step_points - 1);
        let _ = writeln!(
            d,
            ".step param rcell {lo} {} {}",
            lo + step * (opts.step_points - 1),
            step.max(1)
        );
    }
    if !opts.options.is_empty() {
        let _ = writeln!(d, ".options {}", opts.options);
    }
    let _ = writeln!(d, ".end");
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_deck, AnalysisOutcome, Deck};

    #[test]
    fn generated_deck_parses_and_solves() {
        let src = grid_deck(4, 4);
        let deck = Deck::parse(&src).expect("grid deck parses");
        let run = run_deck(&deck).expect("grid deck solves");
        match &run.outcomes[0].1 {
            AnalysisOutcome::Op(op) => {
                let v = op.by_label("v(n3_3)").expect("corner trace");
                assert!(v.is_finite() && v > 0.0 && v < 5.0, "v(corner) = {v}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_estimate_matches_elaboration() {
        let src = grid_deck(4, 5);
        let deck = Deck::parse(&src).unwrap();
        let elab = crate::Elaborator::new(&deck).unwrap();
        let (mut ckt, _) = elab.build(&Default::default(), None).unwrap();
        assert_eq!(ckt.layout().n_unknowns, grid_unknowns(4, 5));
    }

    #[test]
    fn grid3d_deck_parses_solves_and_counts() {
        let src = grid3d_deck_with(3, 3, 2, &GridDeckOptions::default());
        let deck = Deck::parse(&src).expect("3-D grid deck parses");
        let elab = crate::Elaborator::new(&deck).unwrap();
        let (mut ckt, _) = elab.build(&Default::default(), None).unwrap();
        assert_eq!(ckt.layout().n_unknowns, grid3d_unknowns(3, 3, 2));
        let run = run_deck(&deck).expect("3-D grid deck solves");
        match &run.outcomes[0].1 {
            AnalysisOutcome::Op(op) => {
                let v = op.by_label("v(n2_2_1)").expect("corner trace");
                assert!(v.is_finite() && v > 0.0 && v < 5.0, "v(corner) = {v}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mesh_deck_from_edge_list_solves() {
        // A 5-node wheel: hub 0 spoked to a 4-cycle rim.
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 1),
        ];
        let src = mesh_deck_with(5, &edges, &GridDeckOptions::default());
        let deck = Deck::parse(&src).expect("mesh deck parses");
        let elab = crate::Elaborator::new(&deck).unwrap();
        let (mut ckt, _) = elab.build(&Default::default(), None).unwrap();
        assert_eq!(ckt.layout().n_unknowns, mesh_unknowns(5, edges.len()));
        let run = run_deck(&deck).expect("mesh deck solves");
        match &run.outcomes[0].1 {
            AnalysisOutcome::Op(op) => {
                let v = op.by_label("v(m4)").expect("sink trace");
                assert!(v.is_finite() && v > 0.0 && v < 5.0, "v(m4) = {v}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn optional_cards_appear() {
        let src = grid_deck_with(
            3,
            3,
            &GridDeckOptions {
                options: "sparse=1 order=natural".into(),
                ac: true,
                tran: false,
                step_points: 5,
            },
        );
        assert!(src.contains(".ac dec"));
        assert!(src.contains("AC 1"));
        assert!(src.contains(".step param rcell"));
        assert!(src.contains(".options sparse=1 order=natural"));
        let deck = Deck::parse(&src).unwrap();
        assert_eq!(deck.analyses.len(), 2);
        assert!(deck.step.is_some());
    }
}
