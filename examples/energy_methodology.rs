//! The paper's 4-step energy recipe, mechanized: for each of the four
//! transducers of Fig. 2, express the internal (co-)energy, derive it
//! symbolically with respect to each port state, and emit a complete
//! HDL-A model — regenerating Listing 1 and its three siblings.
//!
//! ```sh
//! cargo run --example energy_methodology
//! ```

use mems::core::{
    ElectricalStyle, ElectrodynamicVoiceCoil, ElectromagneticGap, ParallelPlateElectrostatic,
    TransverseElectrostatic,
};
use mems::hdl::print::print_expr;
use mems::hdl::HdlModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let a = TransverseElectrostatic::table4();
    let b = ParallelPlateElectrostatic::example();
    let c = ElectromagneticGap::example();
    let d = ElectrodynamicVoiceCoil::example();

    let models = [
        ("a) transverse electrostatic", a.energy_model()),
        ("b) parallel electrostatic", b.energy_model()),
        ("c) electromagnetic", c.energy_model()),
        ("d) electrodynamic", d.energy_model()),
    ];

    for (label, energy_model) in models {
        println!("=== {label} ===");
        println!("co-energy W* = {}", print_expr(&energy_model.coenergy));
        let derived = energy_model.derive()?;
        println!(
            "∂W*/∂{}  (charge / flux linkage) = {}",
            energy_model.electrical_symbol,
            print_expr(&derived.state_conjugate)
        );
        println!(
            "∂W*/∂x  (force, Table 3)        = {}",
            print_expr(&derived.force)
        );
        let src = energy_model.to_hdl_source(ElectricalStyle::PaperStyle)?;
        println!("\ngenerated HDL-A model:\n{src}");
        // Prove the generated text is a valid model.
        let compiled =
            HdlModel::compile(&src, &energy_model.entity, None).map_err(|e| e.render(&src))?;
        println!(
            "→ compiles: {} pins, {} unknowns, {} integ/{} ddt sites\n",
            compiled.compiled().pins.len(),
            compiled.compiled().n_unknowns,
            compiled.compiled().n_integ_sites,
            compiled.compiled().n_ddt_sites,
        );
    }
    println!(
        "Note: the paper's Listing 1 writes the electrical flow as C(x)·ddt(V)\n\
         (PaperStyle above); pass ElectricalStyle::Full to include the motional\n\
         term ddt(C(x)·V) that full energy conservation requires."
    );
    Ok(())
}
