//! Regenerates `examples/decks/grid_cells.cir` /
//! `examples/decks/grid3d_cells.cir` (or any other size of the meshed
//! scale-tier decks) from the grid generators:
//!
//! ```sh
//! cargo run --example gen_grid_deck -- 4 4 > examples/decks/grid_cells.cir
//! cargo run --example gen_grid_deck -- 18 19       # the ~1600-unknown tier
//! cargo run --example gen_grid_deck -- --3d 3 3 3 > examples/decks/grid3d_cells.cir
//! cargo run --example gen_grid_deck -- --3d 10    # cube, the ~7000-unknown tier
//! ```

use mems::netlist::gen::{grid3d_deck_with, grid_deck_with, GridDeckOptions};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let three_d = args.first().is_some_and(|a| a == "--3d");
    if three_d {
        args.remove(0);
    }
    let dims: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let opts = GridDeckOptions {
        options: "sparse=1".into(),
        ac: true,
        tran: false,
        step_points: 5,
    };
    if three_d {
        let nx = dims.first().copied().unwrap_or(3).max(1);
        let ny = dims.get(1).copied().unwrap_or(nx).max(1);
        let nz = dims.get(2).copied().unwrap_or(ny).max(2);
        print!("{}", grid3d_deck_with(nx, ny, nz, &opts));
    } else {
        let rows = dims.first().copied().unwrap_or(4).max(1);
        let cols = dims.get(1).copied().unwrap_or(4).max(2);
        print!("{}", grid_deck_with(rows, cols, &opts));
    }
}
