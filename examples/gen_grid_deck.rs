//! Regenerates `examples/decks/grid_cells.cir` (or any other size of
//! the meshed scale-tier deck) from the grid generator:
//!
//! ```sh
//! cargo run --example gen_grid_deck -- 4 4 > examples/decks/grid_cells.cir
//! cargo run --example gen_grid_deck -- 18 19   # the ~1600-unknown tier
//! ```

use mems::netlist::gen::{grid_deck_with, GridDeckOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4).max(1);
    let cols: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4).max(2);
    print!(
        "{}",
        grid_deck_with(
            rows,
            cols,
            &GridDeckOptions {
                options: "sparse=1".into(),
                ac: true,
                tran: false,
                step_points: 5,
            },
        )
    );
}
