//! Figure 6 workflow: PXT extracting transducer characteristics from
//! finite-element field solutions, generating an HDL-A model, and
//! verifying it against the analytic device.
//!
//! ```sh
//! cargo run --release --example pxt_extraction
//! ```

use mems::core::experiments::fig6;
use mems::core::experiments::harmonic;
use mems::pxt::recipes::{capacitance_vs_displacement, force_vs_voltage_displacement, PlateGapDut};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig. 6: electrostatic force from the FE field solution ==\n");
    let r = fig6::run()?;
    println!(
        "FE (Maxwell stress) force at 10 V, x = 0:  {:.6e} N",
        r.force_fe
    );
    println!(
        "analytic Table 3 force at the same point:  {:.6e} N",
        r.force_analytic
    );
    println!(
        "relative error:                            {:.3e}",
        r.force_rel_error
    );
    println!("(fringe field not modeled, as in the paper)\n");

    println!("== static sweeps (\"iterating the variation of boundary conditions\") ==\n");
    let dut = PlateGapDut::table4();
    let xs: Vec<f64> = (0..7).map(|i| -3e-5 + 1e-5 * i as f64).collect();
    let cap = capacitance_vs_displacement(&dut, &xs)?;
    println!("displacement [m]   capacitance [F]");
    for (x, c) in cap.xs.iter().zip(&cap.ys) {
        println!("{x:>13.3e}   {c:.6e}");
    }
    let force = force_vs_voltage_displacement(&dut, &[5.0, 10.0, 15.0], &[-1e-5, 0.0, 1e-5])?;
    println!("\nforce grid F(V, x) [N]:");
    print!("{:>8}", "V\\x");
    for x in &force.ys {
        print!("{x:>14.1e}");
    }
    println!();
    for (i, v) in force.xs.iter().enumerate() {
        print!("{v:>8.1}");
        for j in 0..force.ys.len() {
            print!("{:>14.4e}", force.zs[i * force.ys.len() + j]);
        }
        println!();
    }

    println!(
        "\n== generated HDL-A model (polynomial C(x), fit err {:.2e}) ==\n",
        r.cap_fit_error
    );
    println!("{}", r.generated_source);
    println!(
        "round-trip force error of the generated model vs the analytic device: {:.3e}\n",
        r.roundtrip_error
    );

    println!("== harmonic workflow: beam FE response → rational fit → data-flow model ==\n");
    let h = harmonic::run()?;
    println!("cantilever first mode:          {:.1} Hz", h.f1);
    println!("rational fit error:             {:.3e}", h.fit_error);
    println!(
        "AC round-trip error (simulator): {:.3e}",
        h.ac_roundtrip_error
    );
    println!("\ngenerated data-flow model:\n{}", h.generated_source);
    Ok(())
}
