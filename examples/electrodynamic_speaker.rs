//! Domain example: a miniature electrodynamic loudspeaker — the
//! Fig. 2d voice-coil transducer driving a suspended diaphragm —
//! analyzed in AC (frequency response) and transient (tone burst).
//!
//! The voice-coil model is generated from its co-energy with the
//! `Full` electrical style, so the back-EMF `B·l·ẋ` that the paper's
//! Table 3 omits is included; the AC sweep shows the resulting
//! electrical damping of the mechanical resonance.
//!
//! ```sh
//! cargo run --release --example electrodynamic_speaker
//! ```

use mems::core::{ElectricalStyle, ElectrodynamicVoiceCoil};
use mems::hdl::HdlModel;
use mems::spice::analysis::ac::{run as run_ac, FreqSweep};
use mems::spice::analysis::transient::{run as run_tran, TranOptions};
use mems::spice::circuit::Circuit;
use mems::spice::devices::{AcSpec, Damper, HdlDevice, Mass, Resistor, Spring, VoltageSource};
use mems::spice::output::ascii_plot;
use mems::spice::solver::SimOptions;
use mems::spice::wave::Waveform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Coil: 50 turns, 5 mm radius, 0.8 T radial field, 7.2 Ω wire.
    let coil = ElectrodynamicVoiceCoil::example();
    println!("motor constant B·l = {:.3} N/A", coil.bl());
    let src = coil.hdl_source(ElectricalStyle::Full)?;
    let model = HdlModel::compile(&src, "dyntran", None).map_err(|e| e.render(&src))?;

    // Diaphragm: 0.4 g, suspension 600 N/m (f0 ≈ 195 Hz), light
    // mechanical damping (most damping will be electrical).
    let (m, k, alpha) = (0.4e-3_f64, 600.0_f64, 0.05_f64);
    let f0 = (k / m).sqrt() / (2.0 * std::f64::consts::PI);
    println!("mechanical resonance f0 ≈ {f0:.1} Hz\n");

    let build = |drive: Waveform, ac: Option<AcSpec>| -> Result<Circuit, mems::spice::SpiceError> {
        let mut ckt = Circuit::new();
        let vin = ckt.enode("vin")?;
        let coil_node = ckt.enode("coil")?;
        let cone = ckt.mnode("cone")?;
        let gnd = ckt.ground();
        let mut vs = VoltageSource::new("vs", vin, gnd, drive);
        if let Some(spec) = ac {
            vs = vs.with_ac(spec);
        }
        ckt.add(vs)?;
        ckt.add(Resistor::new("rcoil", vin, coil_node, 7.2))?;
        ckt.add(HdlDevice::new(
            "vc",
            &model,
            &[],
            &[coil_node, gnd, cone, gnd],
        )?)?;
        ckt.add(Mass::new("mcone", cone, gnd, m))?;
        ckt.add(Spring::new("ksusp", cone, gnd, k))?;
        ckt.add(Damper::new("dsusp", cone, gnd, alpha))?;
        Ok(ckt)
    };

    // --- AC: cone velocity per volt across 20 Hz – 2 kHz.
    let mut ckt = build(Waveform::Dc(0.0), Some(AcSpec::unit()))?;
    let ac = run_ac(
        &mut ckt,
        &FreqSweep::Decade {
            start: 20.0,
            stop: 2000.0,
            points_per_decade: 30,
        },
        &SimOptions::default(),
    )?;
    let vel_mag = ac.magnitude("v(cone)").expect("cone velocity");
    let log_mag: Vec<f64> = vel_mag.iter().map(|v| v.max(1e-12).log10()).collect();
    let log_f: Vec<f64> = ac.freqs.iter().map(|f| f.log10()).collect();
    println!(
        "{}",
        ascii_plot(
            "cone velocity magnitude [log10 m/s per V] vs log10(f)",
            &log_f,
            &[("|v(cone)|", &log_mag)],
            14,
            72
        )
    );
    let peak_idx = vel_mag
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    println!(
        "velocity peak at {:.1} Hz (electrically damped resonance)\n",
        ac.freqs[peak_idx]
    );

    // --- Transient: 300 Hz tone burst, watch the cone displacement.
    let mut ckt = build(
        Waveform::Sin {
            offset: 0.0,
            ampl: 2.0,
            freq: 300.0,
            delay: 1e-3,
            theta: 0.0,
        },
        None,
    )?;
    let res = run_tran(&mut ckt, &TranOptions::new(20e-3), &SimOptions::default())?;
    let x: Vec<f64> = res
        .trace("i(ksusp,0)")
        .expect("suspension force")
        .iter()
        .map(|f| f / k)
        .collect();
    println!(
        "{}",
        ascii_plot(
            "cone displacement [m], 2 V / 300 Hz burst",
            &res.time,
            &[("x", &x)],
            12,
            72
        )
    );
    let peak = x.iter().fold(0.0f64, |mx, v| mx.max(v.abs()));
    println!("peak excursion {peak:.3e} m");
    Ok(())
}
