//! Figure 5 reproduction: the behavioral HDL-A transducer versus the
//! linearized equivalent circuit, for 5 / 10 / 15 V pulses, plus the
//! paper-style single-timeline plot with all three pulses.
//!
//! ```sh
//! cargo run --release --example fig5_comparison
//! ```

use mems::core::experiments::fig5;
use mems::core::LinearizedKind;
use mems::core::{ElectricalStyle, TransducerResonatorSystem, TransducerVariant};
use mems::spice::output::ascii_plot;
use mems::spice::solver::SimOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig. 5: per-level settled-displacement comparison ==\n");
    let result = fig5::run(&fig5::Fig5Options::default())?;
    println!("{}", result.render());
    println!(
        "paper: \"The displacements converge perfectly for a quasi-static load of 10 V\n\
         (center of lower graph), which was the linearization point. For a lower\n\
         exciting voltage (5 V), the linear model overshoots, and undershoots\n\
         for a greater voltage (15 V).\"\n"
    );

    println!("== Paper-style single timeline (5, 10, 15 V pulse train) ==");
    let sys = TransducerResonatorSystem::table4(fig5::paper_timeline_drive());
    let sim = SimOptions::default();
    let nl = sys.simulate(
        TransducerVariant::Behavioral(ElectricalStyle::PaperStyle),
        0.18,
        &sim,
    )?;
    let lin = sys.simulate(
        TransducerVariant::Linearized(LinearizedKind::Secant),
        0.18,
        &sim,
    )?;
    println!(
        "{}",
        ascii_plot(
            "exciting voltage [V] (upper plot of Fig. 5)",
            &nl.time,
            &[("v", &nl.v)],
            8,
            76
        )
    );
    // Resample both onto a common grid for overlay.
    let grid = 400;
    let resample = |t: &[f64], y: &[f64]| -> Vec<f64> {
        let t0 = t[0];
        let t1 = *t.last().unwrap();
        (0..grid)
            .map(|i| {
                let tt = t0 + (t1 - t0) * i as f64 / (grid - 1) as f64;
                let j = t.partition_point(|v| *v < tt).clamp(1, t.len() - 1);
                let frac = (tt - t[j - 1]) / (t[j] - t[j - 1]).max(1e-30);
                y[j - 1] + (y[j] - y[j - 1]) * frac.clamp(0.0, 1.0)
            })
            .collect()
    };
    let ts: Vec<f64> = (0..grid)
        .map(|i| 0.18 * i as f64 / (grid - 1) as f64)
        .collect();
    let x_nl = resample(&nl.time, &nl.x);
    let x_lin = resample(&lin.time, &lin.x);
    println!(
        "{}",
        ascii_plot(
            "displacement [m]: * = HDL-A behavioral (D), + = linearized (DT)",
            &ts,
            &[("behavioral", &x_nl), ("linearized", &x_lin)],
            18,
            76
        )
    );

    // CSV for external plotting.
    let mut csv = String::from("time,x_behavioral,x_linearized\n");
    for i in 0..grid {
        csv.push_str(&format!("{:.6e},{:.6e},{:.6e}\n", ts[i], x_nl[i], x_lin[i]));
    }
    let path = std::env::temp_dir().join("fig5_comparison.csv");
    std::fs::write(&path, csv)?;
    println!("CSV written to {}", path.display());
    Ok(())
}
