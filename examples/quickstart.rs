//! Quickstart: compile the paper's Listing 1 verbatim, couple the
//! transducer to the Table 4 resonator, run a transient, and print
//! the displacement response.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mems::hdl::HdlModel;
use mems::spice::analysis::transient::{run, TranOptions};
use mems::spice::circuit::Circuit;
use mems::spice::devices::{Damper, HdlDevice, Mass, Spring, VoltageSource};
use mems::spice::output::ascii_plot;
use mems::spice::solver::SimOptions;
use mems::spice::wave::Waveform;

/// Listing 1 of the paper, verbatim.
const LISTING1: &str = r#"
ENTITY eletran IS
 GENERIC (A, d, er : analog);
 PIN (a, b : electrical; c, d : mechanical1);
END ENTITY eletran;
ARCHITECTURE a OF eletran IS
VARIABLE e0, x : analog;
STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, d].tv;
      x := integ(S);
      [a, b].i %= e0*er*A/(d + x)*ddt(V);
      [c, d].f %= -e0*er*A*V*V/(2.0*(d+x)*(d+x));
  END RELATION;
END ARCHITECTURE a;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Listing 1: compiling the HDL-A transducer model ==");
    let model = HdlModel::compile(LISTING1, "eletran", None).map_err(|e| e.render(LISTING1))?;
    println!(
        "entity `{}`, {} pins, {} ddt site(s), {} integ site(s)\n",
        model.compiled().name,
        model.compiled().pins.len(),
        model.compiled().n_ddt_sites,
        model.compiled().n_integ_sites,
    );

    println!("== Fig. 3 system: transducer + resonator (Table 4) ==");
    let mut ckt = Circuit::new();
    let drive = ckt.enode("drive")?;
    let vel = ckt.mnode("vel")?;
    let gnd = ckt.ground();
    // 10 V pulse with the paper's "finite rise and fall time".
    ckt.add(VoltageSource::new(
        "vsrc",
        drive,
        gnd,
        Waveform::Pulse {
            v1: 0.0,
            v2: 10.0,
            delay: 2e-3,
            rise: 5e-3,
            fall: 5e-3,
            width: 50e-3,
            period: 0.0,
        },
    ))?;
    ckt.add(HdlDevice::new(
        "xducer",
        &model,
        &[("a", 1.0e-4), ("d", 0.15e-3), ("er", 1.0)],
        &[drive, gnd, vel, gnd],
    )?)?;
    ckt.add(Mass::new("m1", vel, gnd, 1.0e-4))?;
    ckt.add(Spring::new("k1", vel, gnd, 200.0))?;
    ckt.add(Damper::new("d1", vel, gnd, 40e-3))?;

    let result = run(&mut ckt, &TranOptions::new(90e-3), &SimOptions::default())?;
    println!(
        "transient: {} accepted steps, {} Newton iterations, {} rejected\n",
        result.time.len(),
        result.total_newton_iterations,
        result.rejected_steps
    );

    // Displacement = spring force / k (the spring branch current under
    // the force-current analogy).
    let x: Vec<f64> = result
        .trace("i(k1,0)")
        .expect("spring force trace")
        .iter()
        .map(|f| f / 200.0)
        .collect();
    let v = result.node_trace("drive").expect("drive trace");

    println!(
        "{}",
        ascii_plot("drive voltage [V]", &result.time, &[("v(t)", &v)], 10, 72)
    );
    println!(
        "{}",
        ascii_plot("displacement [m]", &result.time, &[("x(t)", &x)], 14, 72)
    );

    // Average over the flat pulse top (40–55 ms), past the ring-up.
    let top: Vec<f64> = result
        .time
        .iter()
        .zip(&x)
        .filter(|(t, _)| (40e-3..55e-3).contains(*t))
        .map(|(_, xi)| *xi)
        .collect();
    let settled = top.iter().sum::<f64>() / top.len() as f64;
    println!("settled displacement during pulse ≈ {settled:.4e} m");
    println!("paper's Table 4 static displacement: 1.0e-8 m");
    Ok(())
}
