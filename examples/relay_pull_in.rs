//! Domain example: electrostatic pull-in of a micro-relay — the
//! large-signal instability that *only* the non-linear behavioral
//! model captures (a linearized equivalent circuit has no pull-in at
//! all), plus the paper's run-time boundary-condition checking
//! (`ASSERT … REPORT`).
//!
//! A gap-closing electrostatic actuator on a spring pulls in when the
//! bias exceeds `V_pi = √(8·k·d³/(27·ε0·A))`; beyond `x = d/3` no
//! stable equilibrium exists and the plates snap together.
//!
//! ```sh
//! cargo run --release --example relay_pull_in
//! ```

use mems::hdl::HdlModel;
use mems::spice::analysis::transient::{run, TranOptions};
use mems::spice::circuit::Circuit;
use mems::spice::devices::{Damper, HdlDevice, Mass, Spring, VoltageSource};
use mems::spice::solver::SimOptions;
use mems::spice::wave::Waveform;
use mems::spice::SpiceError;

/// Gap-closing electrostatic actuator with a travel guard: the
/// displacement x *closes* the gap (capacitance ε0·A/(d − x)), and the
/// model asserts the plates never touch — the paper's "validity of
/// boundary conditions may be verified in these models during
/// run-time".
const RELAY_MODEL: &str = r#"
ENTITY relay IS
  GENERIC (area, d : analog; er : analog := 1.0);
  PIN (a, b : electrical; c, dd : mechanical1);
END ENTITY relay;
ARCHITECTURE a OF relay IS
CONSTANT e0 : analog := 8.8542e-12;
VARIABLE x, g : analog;
STATE v, s : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      v := [a, b].v;
      s := [c, dd].tv;
      x := integ(s);
      g := d - x;
      ASSERT g > 0.02 * d REPORT "pull-in: contact closed";
      [a, b].i %= e0*er*area/g * ddt(v);
      -- Gap-closing force: drives x positive so the gap g = d - x
      -- shrinks (a negative through contribution pushes the external
      -- node positive, as in Listing 1).
      [c, dd].f %= -e0*er*area*v*v/(2.0*g*g);
  END RELATION;
END ARCHITECTURE a;
"#;

const AREA: f64 = 4e-8; // 200 µm × 200 µm plate
const GAP: f64 = 2e-6; // 2 µm gap
const K: f64 = 5.0; // 5 N/m suspension
const M: f64 = 2e-10; // 0.2 µg proof mass
const ALPHA: f64 = 2e-6; // light damping

fn pull_in_voltage() -> f64 {
    (8.0 * K * GAP.powi(3) / (27.0 * 8.8542e-12 * AREA)).sqrt()
}

fn run_at(level: f64, model: &HdlModel) -> Result<(f64, Option<String>), SpiceError> {
    let mut ckt = Circuit::new();
    let drive = ckt.enode("drive")?;
    let tip = ckt.mnode("tip")?;
    let gnd = ckt.ground();
    ckt.add(VoltageSource::new(
        "vs",
        drive,
        gnd,
        Waveform::Pwl(vec![(0.0, 0.0), (50e-6, level)]),
    ))?;
    ckt.add(HdlDevice::new(
        "x1",
        model,
        &[("area", AREA), ("d", GAP)],
        &[drive, gnd, tip, gnd],
    )?)?;
    ckt.add(Mass::new("m1", tip, gnd, M))?;
    ckt.add(Spring::new("k1", tip, gnd, K))?;
    ckt.add(Damper::new("d1", tip, gnd, ALPHA))?;
    match run(&mut ckt, &TranOptions::new(1.5e-3), &SimOptions::default()) {
        Ok(res) => {
            let x: Vec<f64> = res
                .trace("i(k1,0)")
                .expect("spring trace")
                .iter()
                .map(|f| f / K)
                .collect();
            Ok((mems::numerics::stats::settled_value(&x, 0.1), None))
        }
        Err(SpiceError::Device { detail, .. }) if detail.contains("pull-in") => {
            Ok((GAP, Some(detail)))
        }
        Err(SpiceError::StepUnderflow { .. }) => {
            // The snap-through stiffens beyond the solver's step floor:
            // mechanically, the contact has closed.
            Ok((GAP, Some("step underflow during snap-through".into())))
        }
        Err(e) => Err(e),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let v_pi = pull_in_voltage();
    println!("analytic pull-in voltage V_pi = {v_pi:.3} V");
    println!("analytic pull-in travel d/3 = {:.3e} m\n", GAP / 3.0);
    let model = HdlModel::compile(RELAY_MODEL, "relay", None).map_err(|e| e.render(RELAY_MODEL))?;

    println!("bias [V]   settled x [m]      state");
    let mut first_collapsed: Option<f64> = None;
    for frac in [0.5, 0.8, 0.9, 0.95, 1.02, 1.1] {
        let level = v_pi * frac;
        let (x, note) = run_at(level, &model)?;
        match note {
            None => {
                println!(
                    "{level:>7.3}    {x:>12.4e}     stable (x/d = {:.3})",
                    x / GAP
                );
            }
            Some(msg) => {
                println!("{level:>7.3}    {:>12}     PULLED IN ({msg})", "-");
                first_collapsed.get_or_insert(frac);
            }
        }
    }
    let collapsed_at = first_collapsed.expect("a bias above V_pi must pull in");
    println!(
        "\nnon-linear model pulls in between {:.0}% and {:.0}% of the analytic V_pi;",
        95,
        collapsed_at * 100.0
    );
    println!(
        "a linearized equivalent circuit (constant Γ, C0) never pulls in — the\n\
         large-signal validity the paper demonstrates with Fig. 5 is what makes\n\
         this failure mode visible at all."
    );
    Ok(())
}
