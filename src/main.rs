//! `mems` — the command-line driver for the SPICE-deck frontend.
//!
//! ```sh
//! mems check deck.cir              # parse + elaborate, report problems
//! mems check deck.cir --json       # machine-readable diagnostics
//! mems run deck.cir                # run the deck's analyses, print tables
//! mems run deck.cir --csv out.csv  # CSV instead ("-" = stdout)
//! mems run deck.cir --json         # machine-readable report on stdout
//! mems plot deck.cir --probe x1.mid    # terminal ASCII plots
//! mems sweep deck.cir --threads 8  # run the .STEP/.MC batch in parallel
//! mems sweep deck.cir --json pts.json  # per-point metrics + failure logs
//! mems serve --port 8787           # long-lived simulation service
//! ```

use mems_netlist::{report, run_deck, BatchOptions, CancelToken, Deck, FsResolver, NetlistError};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
mems — SPICE-deck frontend for the MEMS transducer tool chain

USAGE:
    mems <COMMAND> <deck.cir> [OPTIONS]
    mems serve [OPTIONS]

COMMANDS:
    check    Parse and elaborate the deck; report diagnostics and a summary
    run      Run the deck's analysis cards (.OP/.DC/.AC/.TRAN)
    plot     Run the deck and render terminal ASCII plots of the traces
    sweep    Run the deck's .STEP/.MC batch across worker threads
    serve    Run the HTTP/1.1 + JSON simulation service (artifact cache,
             fair-share scheduler; Ctrl-C drains gracefully)

OPTIONS:
    --csv [FILE]     Emit CSV instead of tables (FILE defaults to `-` = stdout)
    --json [FILE]    Emit a machine-readable JSON report (diagnostics for
                     `check`; per-point metrics and failure logs for `sweep`;
                     FILE defaults to `-`; mutually exclusive with --csv)
    --probe TRACE    Trace to plot (repeatable; `v(x1.mid)`, `i(kk,0)`, or a
                     bare — possibly hierarchical — node path like `x1.mid`;
                     default: the deck's .PRINT selection)
    --rows N         Plot height in rows (default 16)
    --cols N         Plot width in columns (default 72)
    --threads N      Worker threads for `sweep` (default: all cores)
    --order KIND     Sparse fill-reducing ordering: `auto` (default;
                     nested dissection at scale, AMD below), `nd`,
                     `amd`, or `natural`; overrides the deck's
                     `.options order=`
    --factor KIND    Sparse numeric factorization: `auto` (default;
                     supernodal at scale), `scalar`, or `super`;
                     overrides the deck's `.options factor=`
    --factor-threads N  Worker threads for the supernodal factorization
                     (default 0 = auto; `MEMS_FACTOR_THREADS` wins)
    --log-x          Plot `.AC` magnitude over log10(frequency)
    --db             Plot `.AC` magnitude in dB (20·log10)
    --reelaborate    Rebuild the circuit per batch point instead of the
                     default elaborate-once in-place parameter patching

SERVE OPTIONS:
    --host ADDR      Bind address (default 127.0.0.1)
    --port N         Bind port (default 8787; 0 picks an ephemeral port)
    --workers N      Simulation worker threads (default: all cores)
    --chunk N        Points per scheduler chunk (default 8)
    --queue-cap N    Max active jobs before submissions answer 429 (default 64)
    --job-cap N      Max terminal jobs kept queryable in the registry;
                     oldest-finished evict beyond this (default 256)
    --cache-cap N    Max decks resident in the artifact cache (default 32)
    --max-conns N    Max simultaneous connections; excess answers 503
                     (default 256)
    --read-timeout S Per-connection socket read timeout in seconds;
                     idle/stalled peers are dropped (default 30)
    --include-dir D  Resolve deck .INCLUDEs under D (default: refuse includes)
    --data-dir D     Durable job store: journal job metadata and spill
                     finished results under D so jobs survive restarts
                     and --job-cap eviction (default: memory only)
    --spill-cap-bytes N  Max bytes of spilled results kept on disk;
                     oldest stored jobs evict beyond this (default 256 MiB)
    --client-quota N Max active jobs per client; over-quota submissions
                     answer 429 (default: unlimited)
    --check-only     Lint service: only /v1/check and /v1/health answer
    -h, --help       Show this help
    -V, --version    Show the version
";

struct Args {
    command: String,
    deck_path: PathBuf,
    csv: Option<String>,
    json: Option<String>,
    probes: Vec<String>,
    rows: usize,
    cols: usize,
    threads: usize,
    reelaborate: bool,
    order: Option<String>,
    factor: Option<String>,
    factor_threads: Option<usize>,
    log_x: bool,
    db: bool,
    serve: mems_serve::ServeConfig,
}

/// Takes an option's optional value: the next token is consumed as
/// the output file unless it is another option (`-` alone means
/// stdout, the default).
fn optional_value<'a>(it: &mut std::iter::Peekable<impl Iterator<Item = &'a String>>) -> String {
    let next_is_value = it.peek().is_some_and(|n| !n.starts_with('-') || *n == "-");
    if next_is_value {
        it.next().expect("peeked").clone()
    } else {
        "-".to_string()
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut command = None;
    let mut deck_path = None;
    let mut csv = None;
    let mut json = None;
    let mut probes = Vec::new();
    let mut rows = 16usize;
    let mut cols = 72usize;
    let mut threads = 0usize;
    let mut reelaborate = false;
    let mut order = None;
    let mut factor = None;
    let mut factor_threads = None;
    let mut log_x = false;
    let mut db = false;
    let mut serve = mems_serve::ServeConfig {
        port: 8787,
        ..mems_serve::ServeConfig::default()
    };
    let mut it = argv.iter().peekable();
    while let Some(arg) = it.next() {
        let count = |it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
                     what: &str|
         -> Result<usize, String> {
            let v = it.next().ok_or_else(|| format!("{what} needs a value"))?;
            let n: usize = v.parse().map_err(|_| format!("bad {what} value `{v}`"))?;
            if n == 0 {
                return Err(format!("{what} must be at least 1"));
            }
            Ok(n)
        };
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "-V" | "--version" => return Err(format!("mems {}", env!("CARGO_PKG_VERSION"))),
            "--csv" => csv = Some(optional_value(&mut it)),
            "--json" => json = Some(optional_value(&mut it)),
            "--reelaborate" => reelaborate = true,
            "--log-x" => log_x = true,
            "--db" => db = true,
            "--order" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--order needs `nd`, `amd`, `natural`, or `auto`".to_string())?
                    .to_ascii_lowercase();
                if !matches!(v.as_str(), "nd" | "amd" | "natural" | "auto") {
                    return Err(format!(
                        "bad --order value `{v}` (nd, amd, natural, or auto)"
                    ));
                }
                order = Some(v);
            }
            "--factor" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--factor needs `auto`, `scalar`, or `super`".to_string())?
                    .to_ascii_lowercase();
                if !matches!(v.as_str(), "auto" | "scalar" | "super" | "supernodal") {
                    return Err(format!("bad --factor value `{v}` (auto, scalar, or super)"));
                }
                factor = Some(v);
            }
            "--factor-threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--factor-threads needs a value".to_string())?;
                factor_threads = Some(
                    v.parse()
                        .map_err(|_| format!("bad --factor-threads value `{v}`"))?,
                );
            }
            "--probe" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--probe needs a trace or node name".to_string())?;
                probes.push(v.clone());
            }
            "--rows" => rows = count(&mut it, "--rows")?,
            "--cols" => cols = count(&mut it, "--cols")?,
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--threads needs a value".to_string())?;
                threads = v
                    .parse()
                    .map_err(|_| format!("bad --threads value `{v}`"))?;
            }
            "--host" => {
                serve.host = it
                    .next()
                    .ok_or_else(|| "--host needs an address".to_string())?
                    .clone();
            }
            "--port" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--port needs a value".to_string())?;
                serve.port = v.parse().map_err(|_| format!("bad --port value `{v}`"))?;
            }
            "--workers" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--workers needs a value".to_string())?;
                serve.workers = v
                    .parse()
                    .map_err(|_| format!("bad --workers value `{v}`"))?;
            }
            "--chunk" => serve.chunk_size = count(&mut it, "--chunk")?,
            "--queue-cap" => serve.queue_cap = count(&mut it, "--queue-cap")?,
            "--job-cap" => serve.job_cap = count(&mut it, "--job-cap")?,
            "--cache-cap" => serve.cache_cap = count(&mut it, "--cache-cap")?,
            "--max-conns" => serve.max_conns = count(&mut it, "--max-conns")?,
            "--read-timeout" => {
                serve.read_timeout =
                    std::time::Duration::from_secs(count(&mut it, "--read-timeout")? as u64);
            }
            "--include-dir" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--include-dir needs a directory".to_string())?;
                serve.include_dir = Some(PathBuf::from(v));
            }
            "--data-dir" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--data-dir needs a directory".to_string())?;
                serve.data_dir = Some(PathBuf::from(v));
            }
            "--spill-cap-bytes" => {
                serve.spill_cap_bytes = count(&mut it, "--spill-cap-bytes")? as u64;
            }
            "--client-quota" => serve.client_quota = count(&mut it, "--client-quota")?,
            "--check-only" => serve.check_only = true,
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown option `{other}`"));
            }
            other => {
                if command.is_none() {
                    command = Some(other.to_string());
                } else if deck_path.is_none() {
                    deck_path = Some(PathBuf::from(other));
                } else {
                    return Err(format!("unexpected argument `{other}`"));
                }
            }
        }
    }
    let command = command.ok_or_else(|| "missing command".to_string())?;
    if !matches!(
        command.as_str(),
        "check" | "run" | "plot" | "sweep" | "serve"
    ) {
        return Err(format!("unknown command `{command}`"));
    }
    let deck_path = if command == "serve" {
        deck_path.unwrap_or_default()
    } else {
        deck_path.ok_or_else(|| "missing deck file".to_string())?
    };
    if csv.is_some() && json.is_some() {
        return Err("--csv and --json are mutually exclusive".to_string());
    }
    Ok(Args {
        command,
        deck_path,
        csv,
        json,
        probes,
        rows,
        cols,
        threads,
        reelaborate,
        order,
        factor,
        factor_threads,
        log_x,
        db,
        serve,
    })
}

/// SIGINT plumbing without a signal crate: a raw `signal(2)` FFI
/// registration flips a flag; a watcher thread turns the flag into a
/// cooperative action (batch cancel or server drain). After the first
/// Ctrl-C the default disposition is restored, so a second one kills
/// a stuck process the usual way.
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIPPED: AtomicBool = AtomicBool::new(false);
    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_: i32) {
        TRIPPED.store(true, Ordering::SeqCst);
    }

    /// Installs the handler and spawns the watcher; `action` runs
    /// once, on the first Ctrl-C.
    pub fn watch(action: impl FnOnce() + Send + 'static) {
        let handler = on_signal as extern "C" fn(i32);
        unsafe { signal(SIGINT, handler as usize) };
        std::thread::spawn(move || {
            while !TRIPPED.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            unsafe { signal(SIGINT, SIG_DFL) };
            action();
        });
    }
}

#[cfg(not(unix))]
mod sigint {
    /// No signal wiring off Unix; Ctrl-C keeps its default behavior.
    pub fn watch(_action: impl FnOnce() + Send + 'static) {}
}

fn load_deck(path: &Path) -> Result<Deck, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    let base = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
    let mut resolver = FsResolver { base };
    Deck::parse_with_includes(&src, &mut resolver).map_err(|e| e.render(&src))
}

fn emit(csv_target: &str, content: &str) -> Result<(), String> {
    if csv_target == "-" {
        print!("{content}");
        Ok(())
    } else {
        std::fs::write(csv_target, content).map_err(|e| format!("cannot write `{csv_target}`: {e}"))
    }
}

/// `mems check --json`: machine-readable diagnostics (the same
/// format `mems serve`'s `/v1/check` endpoint emits), plus a summary
/// on success. Parses its own file so parse failures land in the
/// JSON diagnostics instead of the human excerpt renderer.
fn cmd_check_json(path: &Path) -> Result<(), String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    let base = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
    let mut resolver = FsResolver { base };
    let outcome = (|| -> Result<String, NetlistError> {
        let deck = Deck::parse_with_includes(&src, &mut resolver)?;
        let elab = mems_netlist::Elaborator::new(&deck)?;
        let points = match mems_netlist::batch_points_with(&elab) {
            Ok(points) => points.len(),
            Err(NetlistError::Elab { span: None, .. }) => 0,
            Err(e) => return Err(e),
        };
        let (mut ckt, _) = elab.build(&Default::default(), None)?;
        let layout = ckt.layout();
        Ok(format!(
            concat!(
                "{{\"ok\":true,\"deck\":\"{}\",\"nodes\":{},\"devices\":{},",
                "\"unknowns\":{},\"batch_points\":{},\"diagnostics\":[]}}"
            ),
            report::json_escape(&deck.title),
            layout.n_nodes - 1,
            ckt.devices().len(),
            layout.n_unknowns,
            points,
        ))
    })();
    match outcome {
        Ok(body) => {
            println!("{body}");
            Ok(())
        }
        Err(e) => {
            println!(
                "{{\"ok\":false,\"diagnostics\":{}}}",
                report::diagnostics_json(&src, &[report::Diagnostic::from_error(&e)])
            );
            // The JSON on stdout is the report; fail without a
            // second, human-format rendering on stderr.
            Err(String::new())
        }
    }
}

fn cmd_check(deck: &Deck) -> Result<(), String> {
    let elab = mems_netlist::Elaborator::new(deck).map_err(|e| e.render(&deck.source))?;
    let (mut ckt, env) = elab
        .build(&Default::default(), None)
        .map_err(|e| e.render(&deck.source))?;
    let layout = ckt.layout();
    println!("deck:      {}", deck.title);
    println!("nodes:     {} (+ ground)", layout.n_nodes - 1);
    println!("devices:   {}", ckt.devices().len());
    println!("unknowns:  {}", layout.n_unknowns);
    if !env.is_empty() {
        let mut names: Vec<_> = env.iter().collect();
        names.sort_by(|a, b| a.0.cmp(b.0));
        println!(
            "params:    {}",
            names
                .iter()
                .map(|(k, v)| format!("{k}={v:.6e}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    println!(
        "analyses:  {}",
        deck.analyses
            .iter()
            .map(|a| format!(".{}", a.kind_name()))
            .collect::<Vec<_>>()
            .join(" ")
    );
    match mems_netlist::batch_points_with(&elab) {
        Ok(points) => println!("batch:     {} points", points.len()),
        Err(NetlistError::Elab { span: None, .. }) => println!("batch:     (no .STEP/.MC)"),
        Err(e) => return Err(e.render(&deck.source)),
    }
    println!("ok");
    Ok(())
}

fn cmd_run(deck: &Deck, csv: Option<&str>, json: Option<&str>) -> Result<(), String> {
    let run = run_deck(deck).map_err(|e| e.render(&deck.source))?;
    match (json, csv) {
        (Some(target), _) => emit(target, &report::run_json(deck, &run)),
        (None, Some(target)) => {
            let mut out = String::new();
            for (i, (card, outcome)) in run.outcomes.iter().enumerate() {
                if run.outcomes.len() > 1 {
                    out.push_str(&format!("# analysis {} (.{})\n", i, card.kind_name()));
                }
                out.push_str(&report::outcome_csv(deck, outcome));
            }
            emit(target, &out)
        }
        (None, None) => {
            print!("{}", report::run_report(deck, &run));
            Ok(())
        }
    }
}

fn cmd_plot(deck: &Deck, probes: &[String], opts: &report::PlotOptions) -> Result<(), String> {
    let run = run_deck(deck).map_err(|e| e.render(&deck.source))?;
    if run.outcomes.is_empty() {
        return Err("deck declares no analyses to plot".to_string());
    }
    let rendered = report::run_plot(deck, &run, probes, opts)?;
    print!("{rendered}");
    Ok(())
}

fn cmd_sweep(
    deck: &Deck,
    csv: Option<&str>,
    json: Option<&str>,
    threads: usize,
    reelaborate: bool,
) -> Result<(), String> {
    // Ctrl-C stops the batch at the next point boundary; the partial
    // batch still reports (unvisited points carry cancelled errors).
    let cancel = CancelToken::new();
    sigint::watch({
        let cancel = cancel.clone();
        move || {
            eprintln!("interrupt: stopping at the next point boundary (Ctrl-C again to kill)");
            cancel.cancel();
        }
    });
    let result = mems_netlist::run_batch(
        deck,
        &BatchOptions {
            threads,
            reelaborate,
            cancel: Some(cancel),
        },
    )
    .map_err(|e| e.render(&deck.source))?;
    if result.cancelled {
        eprintln!(
            "cancelled: {}/{} points simulated",
            result.ok_count(),
            result.points.len()
        );
    }
    match (json, csv) {
        (Some(target), _) => emit(target, &report::batch_json(&result)),
        (None, Some(target)) => emit(target, &report::batch_csv(&result)),
        (None, None) => {
            print!("{}", report::batch_report(&result));
            Ok(())
        }
    }
}

/// `mems serve`: run the daemon until a drain (Ctrl-C or
/// `POST /v1/shutdown`) completes.
fn cmd_serve(config: mems_serve::ServeConfig) -> Result<(), String> {
    let server =
        mems_serve::Server::start(config.clone()).map_err(|e| format!("cannot bind: {e}"))?;
    println!(
        "mems serve listening on http://{}{}",
        server.addr(),
        if config.check_only {
            " (check-only)"
        } else {
            ""
        }
    );
    let handle = server.handle();
    sigint::watch(move || {
        eprintln!("interrupt: draining (Ctrl-C again to kill)");
        handle.shutdown();
    });
    server.join();
    println!("mems serve drained");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) if msg.starts_with("mems ") => {
            println!("{msg}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // `serve` needs no deck; `check --json` parses its own so parse
    // errors land in the machine-readable diagnostics.
    if args.command == "serve" {
        return match cmd_serve(args.serve) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    if args.command == "check" && args.json.is_some() {
        return match cmd_check_json(&args.deck_path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                if !msg.is_empty() {
                    eprintln!("{msg}");
                }
                ExitCode::FAILURE
            }
        };
    }
    let mut deck = match load_deck(&args.deck_path) {
        Ok(d) => d,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // CLI solver flags are appended after the deck's own `.OPTIONS`,
    // so the CLI wins (options apply in order).
    if let Some(order) = &args.order {
        deck.options.push((
            "order".to_string(),
            mems_netlist::expr::NumExpr {
                node: mems_netlist::expr::ExprNode::Ident(order.clone()),
                span: mems_hdl::span::Span::new(0, 0),
            },
        ));
    }
    if let Some(factor) = &args.factor {
        deck.options.push((
            "factor".to_string(),
            mems_netlist::expr::NumExpr {
                node: mems_netlist::expr::ExprNode::Ident(factor.clone()),
                span: mems_hdl::span::Span::new(0, 0),
            },
        ));
    }
    if let Some(t) = args.factor_threads {
        deck.options.push((
            "factor_threads".to_string(),
            mems_netlist::expr::NumExpr {
                node: mems_netlist::expr::ExprNode::Num(t as f64),
                span: mems_hdl::span::Span::new(0, 0),
            },
        ));
    }
    let outcome = match args.command.as_str() {
        "check" => cmd_check(&deck),
        "run" => cmd_run(&deck, args.csv.as_deref(), args.json.as_deref()),
        "plot" => cmd_plot(
            &deck,
            &args.probes,
            &report::PlotOptions {
                rows: args.rows,
                cols: args.cols,
                log_x: args.log_x,
                db: args.db,
            },
        ),
        "sweep" => cmd_sweep(
            &deck,
            args.csv.as_deref(),
            args.json.as_deref(),
            args.threads,
            args.reelaborate,
        ),
        _ => unreachable!("validated in parse_args"),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
