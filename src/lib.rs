//! # mems — facade crate
//!
//! Re-exports the full tool chain reproducing Romanowicz et al.,
//! *Modeling and Simulation of Electromechanical Transducers in
//! Microsystems using an Analog Hardware Description Language*
//! (ED&TC / DATE 1997):
//!
//! - [`numerics`] — linear algebra, automatic differentiation, fitting;
//! - [`hdl`] — the analog hardware description language (HDL-A subset);
//! - [`spice`] — the multi-nature SPICE-class MNA simulator;
//! - [`fem`] — the finite-element substrate (electrostatics + beams);
//! - [`pxt`] — parameter extraction and HDL model generation;
//! - [`core`] — the paper's methodology: energy-based transducer
//!   models, linearized equivalents, and the experiment suite;
//! - [`netlist`] — the SPICE-deck frontend and `.STEP`/`.MC` batch
//!   engine behind the `mems` CLI (`mems run deck.cir`).
//!
//! # Quickstart
//!
//! ```
//! use mems::core::experiments::fig5;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let result = fig5::run(&fig5::Fig5Options::fast())?;
//! // At the 10 V linearization point the linear and behavioral models agree.
//! let row = result.row(10.0).unwrap();
//! assert!(row.static_rel_err() < 0.02);
//! # Ok(())
//! # }
//! ```
pub use mems_core as core;
pub use mems_fem as fem;
pub use mems_hdl as hdl;
pub use mems_netlist as netlist;
pub use mems_numerics as numerics;
pub use mems_pxt as pxt;
pub use mems_spice as spice;
