#!/usr/bin/env bash
# serve-smoke.sh — end-to-end smoke of `mems serve` over real HTTP.
#
# Starts the daemon on an ephemeral port, then asserts the protocol's
# load-bearing promises with curl + jq:
#   1. a deck submission runs to completion and its streamed points
#      match `mems sweep --json` byte-for-byte;
#   2. results arrive as a chunked transfer-coded stream, and the
#      de-chunked body matches the CLI byte-for-byte;
#   3. the second identical submission hits the fingerprint cache
#      (cache.hit, parse_us == 0, circuits_built == 0, warm checkout);
#   4. cancellation stops a running .MC batch short of completion;
#   5. /v1/metrics serves Prometheus text format whose counters
#      reflect the traffic above;
#   6. POST /v1/shutdown drains gracefully and the process exits 0;
#   7. a server SIGKILLed with --data-dir set, restarted on the same
#      directory, still serves the finished sweep's results
#      byte-for-byte and recovers the mid-flight batch as
#      failed/interrupted with its durable prefix intact.
#
# Usage: tools/serve-smoke.sh [path-to-mems-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

MEMS=${1:-target/release/mems}
[ -x "$MEMS" ] || { echo "error: $MEMS not built (cargo build --release)" >&2; exit 1; }
command -v jq >/dev/null || { echo "error: jq is required" >&2; exit 1; }

WORK=$(mktemp -d)
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$MEMS" serve --port 0 --workers 2 >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

# Wait for the bind line and extract the ephemeral port.
for _ in $(seq 1 100); do
  PORT=$(sed -n 's|.*listening on http://[0-9.]*:\([0-9]*\).*|\1|p' "$WORK/serve.log")
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { echo "error: serve did not bind"; cat "$WORK/serve.log"; exit 1; }
BASE="http://127.0.0.1:$PORT"
echo "== mems serve up on $BASE"

wait_done() { # job-id -> final status document
  local id=$1 doc state
  for _ in $(seq 1 600); do
    doc=$(curl -sf "$BASE/v1/jobs/$id")
    state=$(jq -r .state <<<"$doc")
    if [ "$state" = done ] || [ "$state" = cancelled ]; then
      echo "$doc"
      return 0
    fi
    sleep 0.1
  done
  echo "error: job $id never finished: $doc" >&2
  return 1
}

echo "== 1. submit eletran deck (plain run) + resonator .STEP sweep"
ELETRAN=$(curl -sf -X POST --data-binary @examples/decks/eletran_transient.cir "$BASE/v1/jobs")
jq -e '.cache.hit == false' <<<"$ELETRAN" >/dev/null
wait_done "$(jq -r .id <<<"$ELETRAN")" | jq -e '.state == "done" and .completed == 1' >/dev/null

SWEEP1=$(curl -sf -X POST --data-binary @examples/decks/resonator_step.cir "$BASE/v1/jobs")
ID1=$(jq -r .id <<<"$SWEEP1")
wait_done "$ID1" | jq -e '.state == "done"' >/dev/null

echo "== 2. streamed results are chunked and match mems sweep --json byte-for-byte"
# The stream is chunked transfer-coded (curl de-chunks transparently).
curl -sfi "$BASE/v1/jobs/$ID1/results?from=0" -o "$WORK/results.http"
grep -qi '^transfer-encoding: chunked' "$WORK/results.http"
curl -sf "$BASE/v1/jobs/$ID1/results?from=0" | jq -c .points[] >"$WORK/served.jsonl"
"$MEMS" sweep examples/decks/resonator_step.cir --threads 2 --json - \
  | jq -c .points[] >"$WORK/cli.jsonl"
cmp "$WORK/served.jsonl" "$WORK/cli.jsonl"

echo "== 2b. second identical submission hits the fingerprint cache"
SWEEP2=$(curl -sf -X POST --data-binary @examples/decks/resonator_step.cir "$BASE/v1/jobs")
jq -e '.cache.hit == true and .timing.parse_us == 0' <<<"$SWEEP2" >/dev/null
DONE2=$(wait_done "$(jq -r .id <<<"$SWEEP2")")
jq -e '.cache.circuits_built == 0 and .cache.warm_checkout == true' <<<"$DONE2" >/dev/null
curl -sf "$BASE/v1/jobs/$(jq -r .id <<<"$SWEEP2")/results?from=0" \
  | jq -c .points[] | cmp - "$WORK/cli.jsonl"

echo "== 3. cancellation stops a running .MC batch"
cat >"$WORK/mc.cir" <<'EOF'
smoke mc resonator
.param k=200 m=1e-4 alpha=40e-3
Is 0 vel PWL(0 0 0.1m 1u)
Mm1 vel 0 {m}
Kk1 vel 0 {k}
Dd1 vel 0 {alpha}
.tran 0.02m 100m
.print tran v(vel)
.mc 400 seed=7 k tol=0.05 dist=gauss
EOF
MC=$(curl -sf -X POST --data-binary @"$WORK/mc.cir" "$BASE/v1/jobs")
MCID=$(jq -r .id <<<"$MC")
for _ in $(seq 1 300); do
  [ "$(curl -sf "$BASE/v1/jobs/$MCID" | jq .completed)" -gt 0 ] && break
  sleep 0.05
done
curl -sf -X DELETE "$BASE/v1/jobs/$MCID" >/dev/null
wait_done "$MCID" \
  | jq -e '.state == "cancelled" and .completed < 400 and (.completed + .skipped) == 400' >/dev/null

echo "== 4. /v1/metrics serves Prometheus text format with live counters"
curl -sfi "$BASE/v1/metrics" -o "$WORK/metrics.http"
grep -qi '^content-type: text/plain; version=0.0.4' "$WORK/metrics.http"
curl -sf "$BASE/v1/metrics" >"$WORK/metrics.txt"
metric() { # fully-labeled series name -> value
  awk -v s="$1" '$1 == s { print $2 }' "$WORK/metrics.txt"
}
grep -q '^# TYPE mems_serve_jobs_total counter' "$WORK/metrics.txt"
grep -q '^# TYPE mems_serve_chunk_seconds histogram' "$WORK/metrics.txt"
# 4 submissions: eletran, sweep ×2, the cancelled .MC batch.
[ "$(metric mems_serve_jobs_submitted_total)" = 4 ]
[ "$(metric 'mems_serve_jobs_total{state="done"}')" = 3 ]
[ "$(metric 'mems_serve_jobs_total{state="cancelled"}')" = 1 ]
[ "$(metric 'mems_serve_cache_events_total{event="hit"}')" = 1 ]
[ "$(metric 'mems_serve_cache_events_total{event="miss"}')" = 3 ]
[ "$(metric 'mems_serve_points_total{outcome="skipped"}')" -gt 0 ]
[ "$(metric mems_serve_chunk_seconds_count)" -gt 0 ]
# The solver rollups saw real factorizations.
awk '/^mems_serve_solver_factors_total/ { sum += $2 } END { exit !(sum > 0) }' "$WORK/metrics.txt"

echo "== 5. graceful shutdown drains"
curl -sf "$BASE/v1/health" | jq -e '.ok and .cache.hits >= 1' >/dev/null
curl -sf -X POST "$BASE/v1/shutdown" | jq -e .draining >/dev/null
wait "$SERVE_PID"
SERVE_PID=
grep -q "mems serve drained" "$WORK/serve.log"

echo "== 6. restart recovery: --data-dir survives SIGKILL"
# A fresh instance (fresh data-dir, fresh counters) so sections 1-5's
# exact metric assertions stay untouched.
DATA="$WORK/data"
start_durable() { # logfile -> sets SERVE_PID and BASE
  "$MEMS" serve --port 0 --workers 2 --data-dir "$DATA" >"$1" 2>&1 &
  SERVE_PID=$!
  local port=
  for _ in $(seq 1 100); do
    port=$(sed -n 's|.*listening on http://[0-9.]*:\([0-9]*\).*|\1|p' "$1")
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || { echo "error: durable serve did not bind"; cat "$1"; exit 1; }
  BASE="http://127.0.0.1:$port"
}
start_durable "$WORK/serve-durable.log"

# One sweep run to completion, one big .MC batch killed mid-flight.
DS=$(curl -sf -X POST --data-binary @examples/decks/resonator_step.cir "$BASE/v1/jobs")
DSID=$(jq -r .id <<<"$DS")
wait_done "$DSID" | jq -e '.state == "done"' >/dev/null
DMC=$(curl -sf -X POST --data-binary @"$WORK/mc.cir" "$BASE/v1/jobs")
DMCID=$(jq -r .id <<<"$DMC")
for _ in $(seq 1 300); do
  [ "$(curl -sf "$BASE/v1/jobs/$DMCID" | jq .completed)" -gt 0 ] && break
  sleep 0.05
done
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=

start_durable "$WORK/serve-recovered.log"
# The finished sweep is queryable from spill and its de-chunked
# results still match the CLI byte-for-byte.
curl -sf "$BASE/v1/jobs/$DSID" \
  | jq -e '.state == "done" and .stored == true and .completed == 5' >/dev/null
curl -sf "$BASE/v1/jobs/$DSID/results?from=0" \
  | jq -c .points[] | cmp - "$WORK/cli.jsonl"
# The killed-mid-flight batch recovered as failed/interrupted, its
# durably written prefix retrievable.
curl -sf "$BASE/v1/jobs/$DMCID" \
  | jq -e '.state == "failed" and .reason == "interrupted" and .completed >= 1' >/dev/null
curl -sf "$BASE/v1/jobs/$DMCID/results" | jq -e '.state == "failed"' >/dev/null
curl -sf "$BASE/v1/metrics" \
  | awk '$1 == "mems_serve_store_replayed_jobs_total" { ok = ($2 >= 2) } END { exit !ok }'
curl -sf "$BASE/v1/health" | jq -e '.store.enabled and (.store.degraded | not)' >/dev/null
curl -sf -X POST "$BASE/v1/shutdown" | jq -e .draining >/dev/null
wait "$SERVE_PID"
SERVE_PID=

echo "== serve smoke OK"
