#!/usr/bin/env bash
# Perf-trajectory snapshot: runs the key benches in quick mode and
# writes a JSON object of named medians (seconds/iteration) so future
# PRs can diff perf numbers instead of quoting them in prose.
#
#   tools/bench-summary.sh [OUT.json]      # default: BENCH_9.json
#
# Relies on the criterion shim's MEMS_BENCH_QUICK / MEMS_BENCH_JSONL
# hooks (crates/criterion). Quick mode uses 3 samples per benchmark —
# good for trend lines, not for microbenchmark publication.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_9.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

MEMS_BENCH_QUICK=1 MEMS_BENCH_JSONL="$tmp" \
  cargo bench -p mems-bench \
    --bench hdl_eval \
    --bench batch_sweep \
    --bench batch_ordering \
    --bench serve_roundtrip \
    1>&2

{
  echo '{'
  awk 'NR > 1 { printf ",\n" } { printf "  %s", $0 } END { printf "\n" }' "$tmp"
  echo '}'
} > "$out"
echo "wrote $out ($(grep -c ':' "$out") entries)" 1>&2
