//! Integration test: the HDL behavioral transducer's AC small-signal
//! response (exact `jω` linearization of the dual-number evaluator)
//! agrees with the Tilmans-style linearized equivalent circuit built
//! from native primitives — at the bias point they are the same
//! two-port by construction.

use mems::core::{LinearizedKind, MechanicalResonator, TransverseElectrostatic};
use mems::hdl::HdlModel;
use mems::numerics::Complex64;
use mems::spice::analysis::ac::{run as run_ac, FreqSweep};
use mems::spice::circuit::Circuit;
use mems::spice::devices::{AcSpec, CurrentSource, Gyrator, HdlDevice, VoltageSource};
use mems::spice::solver::SimOptions;
use mems::spice::wave::Waveform;

/// Gap-referenced model biased *at* the operating displacement: the
/// rest gap generic is set to `d + x0` so the AC linearization of the
/// HDL model and the native equivalent circuit share the same bias.
fn hdl_ac_response(freqs: &[f64]) -> Vec<Complex64> {
    let t = TransverseElectrostatic::table4();
    let x0 = t.static_displacement(10.0, 200.0).unwrap();
    let src = t
        .hdl_source(mems::core::ElectricalStyle::PaperStyle)
        .unwrap();
    let model = HdlModel::compile(&src, "eletran", None).unwrap();
    let mut ckt = Circuit::new();
    let drive = ckt.enode("drive").unwrap();
    let vel = ckt.mnode("vel").unwrap();
    let gnd = ckt.ground();
    ckt.add(VoltageSource::new("vsrc", drive, gnd, Waveform::Dc(10.0)).with_ac(AcSpec::unit()))
        .unwrap();
    ckt.add(HdlDevice::new("x1", &model, &[("d", t.gap + x0)], &[drive, gnd, vel, gnd]).unwrap())
        .unwrap();
    MechanicalResonator::table4()
        .build(&mut ckt, "res", vel)
        .unwrap();
    let ac = run_ac(
        &mut ckt,
        &FreqSweep::List(freqs.to_vec()),
        &SimOptions::default(),
    )
    .unwrap();
    ac.phasors("v(vel)").unwrap()
}

fn native_ac_response(freqs: &[f64]) -> Vec<Complex64> {
    let t = TransverseElectrostatic::table4();
    let x0 = t.static_displacement(10.0, 200.0).unwrap();
    let lin = t.linearized(10.0, x0, LinearizedKind::TangentBias);
    let mut ckt = Circuit::new();
    let drive = ckt.enode("drive").unwrap();
    let vel = ckt.mnode("vel").unwrap();
    let gnd = ckt.ground();
    ckt.add(VoltageSource::new("vsrc", drive, gnd, Waveform::Dc(10.0)).with_ac(AcSpec::unit()))
        .unwrap();
    // The AC small-signal equivalent: C0 + gyrator Γ_tan + spring k_e,
    // all referenced to the bias (the DC pieces don't affect AC).
    ckt.add(mems::spice::devices::Capacitor::new(
        "c0", drive, gnd, lin.c0,
    ))
    .unwrap();
    ckt.add(Gyrator::new("gy", drive, gnd, vel, gnd, lin.gamma_tangent))
        .unwrap();
    ckt.add(mems::spice::devices::Spring::new("ke", vel, gnd, lin.k_e))
        .unwrap();
    // Keep the DC operating point identical (not that AC cares).
    ckt.add(CurrentSource::new("f0", gnd, vel, Waveform::Dc(-lin.f0)))
        .unwrap();
    MechanicalResonator::table4()
        .build(&mut ckt, "res", vel)
        .unwrap();
    let ac = run_ac(
        &mut ckt,
        &FreqSweep::List(freqs.to_vec()),
        &SimOptions::default(),
    )
    .unwrap();
    ac.phasors("v(vel)").unwrap()
}

#[test]
fn hdl_small_signal_equals_native_linearized_two_port() {
    // Sweep through the mechanical resonance (~225 Hz).
    let freqs: Vec<f64> = vec![10.0, 50.0, 150.0, 225.0, 300.0, 1000.0, 10000.0];
    let hdl = hdl_ac_response(&freqs);
    let native = native_ac_response(&freqs);
    let scale = hdl.iter().map(|z| z.abs()).fold(0.0, f64::max);
    for ((f, a), b) in freqs.iter().zip(&hdl).zip(&native) {
        let err = (*a - *b).abs() / scale;
        assert!(
            err < 1e-6,
            "at {f} Hz: HDL {a} vs native {b} (rel {err:.2e})"
        );
    }
}

#[test]
fn velocity_response_peaks_at_resonance() {
    let freqs: Vec<f64> = (1..=60).map(|i| i as f64 * 10.0).collect();
    let hdl = hdl_ac_response(&freqs);
    let mags: Vec<f64> = hdl.iter().map(|z| z.abs()).collect();
    let (peak_idx, _) = mags
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
        .unwrap();
    let f_peak = freqs[peak_idx];
    // Velocity resonance of the RLC (FI analogy) sits at f0 ≈ 225 Hz.
    assert!(
        (200.0..=250.0).contains(&f_peak),
        "velocity peak at {f_peak} Hz"
    );
}
