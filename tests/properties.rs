//! Cross-crate property-based tests (proptest): invariants of the
//! numerical substrate, the HDL front end, and the transducer
//! physics under randomized inputs.

use mems::core::TransverseElectrostatic;
use mems::hdl::parser::{parse, parse_expr};
use mems::hdl::print::{print_expr, print_module};
use mems::hdl::symbolic::{diff, eval_closed, simplify};
use mems::numerics::dense::DenseMatrix;
use mems::numerics::lu::LuFactors;
use mems::numerics::poly::{polyfit, Polynomial};
use mems::numerics::pwl::Pwl1;
use proptest::prelude::*;

proptest! {
    /// LU solve round-trips A·x = b for random well-conditioned
    /// matrices (diagonally dominant by construction).
    #[test]
    fn lu_solves_diagonally_dominant_systems(
        seed in proptest::collection::vec(-1.0f64..1.0, 16),
        b in proptest::collection::vec(-10.0f64..10.0, 4),
    ) {
        let a = DenseMatrix::from_fn(4, 4, |i, j| {
            let v = seed[i * 4 + j];
            if i == j { v + 8.0 } else { v }
        });
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (axi, bi) in ax.iter().zip(&b) {
            prop_assert!((axi - bi).abs() < 1e-9);
        }
    }

    /// Polynomial fit of exact polynomial data reproduces it anywhere
    /// in the fitted range.
    #[test]
    fn polyfit_interpolates_exact_data(
        c0 in -2.0f64..2.0,
        c1 in -2.0f64..2.0,
        c2 in -2.0f64..2.0,
        probe in 0.0f64..1.0,
    ) {
        let p = Polynomial::new(vec![c0, c1, c2]);
        let xs: Vec<f64> = (0..12).map(|i| i as f64 / 11.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| p.eval(*x)).collect();
        let fit = polyfit(&xs, &ys, 2).unwrap();
        prop_assert!((fit.eval(probe) - p.eval(probe)).abs() < 1e-9);
    }

    /// PWL tables are exact at breakpoints and within the convex hull
    /// of neighbouring values between them.
    #[test]
    fn pwl_interpolation_is_bounded(
        ys in proptest::collection::vec(-5.0f64..5.0, 6),
        t in 0.0f64..1.0,
    ) {
        let xs: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let table = Pwl1::new(xs, ys.clone()).unwrap();
        for (i, y) in ys.iter().enumerate() {
            prop_assert!((table.eval(i as f64) - y).abs() < 1e-12);
        }
        // Between breakpoints 2 and 3.
        let v = table.eval(2.0 + t);
        let lo = ys[2].min(ys[3]) - 1e-12;
        let hi = ys[2].max(ys[3]) + 1e-12;
        prop_assert!((lo..=hi).contains(&v));
    }

    /// The HDL expression pretty-printer round-trips through the
    /// parser (print ∘ parse = identity up to spans).
    #[test]
    fn expr_print_parse_round_trip(
        a in 1.0f64..100.0,
        b in 1.0f64..100.0,
        pick in 0usize..6,
    ) {
        let src = match pick {
            0 => format!("{a} + x * {b}"),
            1 => format!("-({a} - x) / ({b} + x)"),
            2 => format!("sin({a} * x) * cos(x / {b})"),
            3 => format!("x ** 2.0 + sqrt({a})"),
            4 => format!("[p, q].v * {a} - {b}"),
            _ => format!("max(x, {a}) + min(x, {b})"),
        };
        let e1 = parse_expr(&src).unwrap();
        let printed = print_expr(&e1);
        let e2 = parse_expr(&printed).unwrap();
        prop_assert!(e1.structurally_eq(&e2), "{src} → {printed}");
    }

    /// Symbolic differentiation agrees with central finite differences
    /// on random rational expressions.
    #[test]
    fn symbolic_diff_matches_finite_difference(
        c in 0.5f64..3.0,
        x0 in 0.5f64..2.0,
    ) {
        let src = format!("{c} * x * x / ({c} + x) + sqrt(x)");
        let e = parse_expr(&src).unwrap();
        let d = simplify(&diff(&e, "x").unwrap());
        let f = |x: f64| eval_closed(&e, &[("x", x)]).unwrap();
        let h = 1e-6;
        let fd = (f(x0 + h) - f(x0 - h)) / (2.0 * h);
        let sym = eval_closed(&d, &[("x", x0)]).unwrap();
        prop_assert!((fd - sym).abs() < 1e-4 * fd.abs().max(1.0));
    }

    /// Transducer physics invariants: the electrostatic force is
    /// strictly attractive, monotone in |v| and in the gap.
    #[test]
    fn transverse_force_invariants(
        v in 0.1f64..50.0,
        x in 0.0f64..1.0e-4,
    ) {
        let t = TransverseElectrostatic::table4();
        let f = t.force(v, x);
        prop_assert!(f < 0.0, "force must be attractive");
        // Symmetric in voltage sign.
        prop_assert!((t.force(-v, x) - f).abs() < f.abs() * 1e-12);
        // Larger gap → weaker attraction.
        prop_assert!(t.force(v, x + 1e-5).abs() < f.abs());
        // Larger voltage → stronger attraction.
        prop_assert!(t.force(v * 1.1, x).abs() > f.abs());
        // Consistent with the energy derivative (finite difference).
        let h = 1e-9;
        let dw = (t.coenergy(v, x + h) - t.coenergy(v, x - h)) / (2.0 * h);
        prop_assert!((dw - f).abs() < f.abs() * 1e-4);
    }

    /// The generated HDL source of the energy methodology always
    /// parses back and preserves the entity interface.
    #[test]
    fn generated_models_always_parse(
        area in 1e-6f64..1e-3,
        gap in 1e-5f64..1e-3,
    ) {
        let t = TransverseElectrostatic { area, gap, eps_r: 1.0 };
        let src = t.hdl_source(mems::core::ElectricalStyle::PaperStyle).unwrap();
        let module = parse(&src).unwrap();
        prop_assert_eq!(module.entities.len(), 1);
        prop_assert_eq!(module.entities[0].pins.len(), 4);
        // Idempotent print.
        let printed = print_module(&module);
        let module2 = parse(&printed).unwrap();
        prop_assert_eq!(print_module(&module2), printed);
    }
}
