//! Dense vs sparse backend agreement: the two [`SystemMatrix`]
//! implementations must be interchangeable on real workloads.
//!
//! The deck option `sparse=0/1` forces the backend, so each test runs
//! the identical deck through both linear-algebra paths and compares
//! the physics to tight tolerances (the backends factor in different
//! orders, so bit-equality is not expected — 1e-10 relative is).

use mems::netlist::{run_deck, AnalysisOutcome, Deck};
use mems::numerics::sparse_lu::{CscMatrix, SparseLu};
use mems::numerics::NumericsError;
use mems::spice::analysis::dcop;
use mems::spice::circuit::Circuit;
use mems::spice::devices::Resistor;
use mems::spice::solver::SimOptions;
use mems::spice::system::{DenseSystem, SparseSystem, SystemMatrix};
use mems::spice::{MatrixBackend, SpiceError};

fn load_deck(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/decks")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Injects a `.options sparse=…` line after the title line.
fn with_backend(src: &str, sparse: bool) -> String {
    let mut lines: Vec<&str> = src.lines().collect();
    let opt = if sparse {
        ".options sparse=1"
    } else {
        ".options sparse=0"
    };
    lines.insert(1, opt);
    lines.join("\n")
}

fn run_variant(src: &str, sparse: bool) -> Vec<(String, AnalysisOutcome)> {
    let src = with_backend(src, sparse);
    let deck = Deck::parse(&src).unwrap_or_else(|e| panic!("{}", e.render(&src)));
    let run = run_deck(&deck).unwrap_or_else(|e| panic!("{}", e.render(&src)));
    run.outcomes
        .into_iter()
        .map(|(card, outcome)| (card.kind_name().to_string(), outcome))
        .collect()
}

/// Asserts two traces agree to `rel` relative to the trace scale.
fn assert_traces_agree(label: &str, a: &[f64], b: &[f64], rel: f64) {
    assert_eq!(a.len(), b.len(), "{label}: trace lengths differ");
    let scale = a
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(f64::MIN_POSITIVE);
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= rel * scale,
            "{label}[{i}]: dense {x:e} vs sparse {y:e} (scale {scale:e})"
        );
    }
}

#[test]
fn eletran_deck_backends_agree() {
    // Fixed-step transient so both backends take the identical step
    // sequence; the adaptive controller's accept/reject decisions
    // could otherwise diverge on last-bit differences.
    let src = load_deck("eletran_transient.cir").replace(".TRAN 0.2m 90m", ".TRAN 0.2m 30m fixed");
    assert!(src.contains("fixed"), "replacement failed: deck changed?");
    let dense = run_variant(&src, false);
    let sparse = run_variant(&src, true);
    assert_eq!(dense.len(), sparse.len());
    for ((_, d), (_, s)) in dense.iter().zip(&sparse) {
        match (d, s) {
            (AnalysisOutcome::Tran(td), AnalysisOutcome::Tran(ts)) => {
                assert_traces_agree("time", &td.time, &ts.time, 1e-12);
                for label in ["v(vel)", "i(kk1,0)", "v(drive)"] {
                    let a = td.trace(label).unwrap_or_else(|| panic!("{label} missing"));
                    let b = ts.trace(label).unwrap_or_else(|| panic!("{label} missing"));
                    assert_traces_agree(label, &a, &b, 1e-10);
                }
            }
            other => panic!("unexpected outcome pair {other:?}"),
        }
    }
}

#[test]
fn relay_pull_in_sweep_backends_agree() {
    let src = load_deck("relay_pull_in.cir");
    let dense = run_variant(&src, false);
    let sparse = run_variant(&src, true);
    for ((_, d), (_, s)) in dense.iter().zip(&sparse) {
        match (d, s) {
            (AnalysisOutcome::Dc { result: rd, .. }, AnalysisOutcome::Dc { result: rs, .. }) => {
                assert_eq!(rd.values, rs.values);
                // Plate displacement is the relay's internal unknown —
                // the stiff quantity that would expose factorization
                // differences first.
                for label in ["i(xrelay,0)", "v(drive)"] {
                    let a = rd.trace(label).unwrap_or_else(|| panic!("{label} missing"));
                    let b = rs.trace(label).unwrap_or_else(|| panic!("{label} missing"));
                    assert_traces_agree(label, &a, &b, 1e-10);
                }
            }
            other => panic!("unexpected outcome pair {other:?}"),
        }
    }
}

#[test]
fn speaker_ac_backends_agree() {
    // Complex (AC) assembly goes through the same SystemMatrix
    // abstraction — check it too.
    let src = load_deck("speaker_ac.cir");
    let dense = run_variant(&src, false);
    let sparse = run_variant(&src, true);
    for ((_, d), (_, s)) in dense.iter().zip(&sparse) {
        match (d, s) {
            (AnalysisOutcome::Ac(ad), AnalysisOutcome::Ac(as_)) => {
                assert_eq!(ad.freqs, as_.freqs);
                for label in &ad.labels {
                    let (Some(md), Some(ms)) = (ad.magnitude(label), as_.magnitude(label)) else {
                        continue;
                    };
                    assert_traces_agree(label, &md, &ms, 1e-10);
                }
            }
            other => panic!("unexpected outcome pair {other:?}"),
        }
    }
}

#[test]
fn randomly_stamped_spd_system_agrees() {
    // A pseudo-random symmetric positive-definite system stamped
    // through both backends must solve to the same vector.
    let n = 120;
    let mut lcg = 0x12345678u64;
    let mut rand = move || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((lcg >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    // B with ~5 entries per row; A = Bᵀ·B + n·I is SPD.
    let mut b_entries: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        b_entries.push((i, i, 2.0 + rand()));
        for _ in 0..4 {
            let j = ((rand().abs() * n as f64) as usize).min(n - 1);
            b_entries.push((i, j, rand()));
        }
    }
    let mut a = vec![vec![0.0f64; n]; n];
    for &(i, j, v) in &b_entries {
        for &(i2, j2, v2) in &b_entries {
            if i == i2 {
                a[j][j2] += v * v2;
            }
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += n as f64;
    }
    let rhs: Vec<f64> = (0..n).map(|_| rand()).collect();

    let mut dense = DenseSystem::<f64>::new(n);
    let mut sparse = SparseSystem::<f64>::new(n);
    for (i, row) in a.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                dense.add(i, j, v);
                sparse.add(i, j, v);
            }
        }
    }
    dense.factor().unwrap();
    sparse.factor().unwrap();
    let xd = dense.solve(&rhs).unwrap();
    let xs = sparse.solve(&rhs).unwrap();
    assert_traces_agree("spd solve", &xd, &xs, 1e-12);

    // Re-stamp with perturbed values: the sparse side replays its
    // symbolic factorization (numeric-only refactor) and must still
    // agree with a from-scratch dense factorization.
    assert!(sparse.has_symbolic());
    dense.clear();
    sparse.clear();
    for (i, row) in a.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                let v = v * 1.25 + if i == j { 1.0 } else { 0.0 };
                dense.add(i, j, v);
                sparse.add(i, j, v);
            }
        }
    }
    assert!(sparse.has_symbolic(), "clear must keep the pattern");
    dense.factor().unwrap();
    sparse.factor().unwrap();
    let xd = dense.solve(&rhs).unwrap();
    let xs = sparse.solve(&rhs).unwrap();
    assert_traces_agree("spd refactor solve", &xd, &xs, 1e-12);
}

#[test]
fn singular_circuit_errors_on_both_backends() {
    for backend in [MatrixBackend::Dense, MatrixBackend::Sparse] {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let b = c.enode("b").unwrap();
        let g = c.ground();
        c.add(Resistor::new("r1", a, g, 1e3)).unwrap();
        let _ = b; // floating node
        let mut opts = SimOptions {
            gmin: 0.0, // no leak: the floating node is singular
            ..SimOptions::default()
        };
        opts.matrix = backend;
        let err = dcop::solve(&mut c, &opts);
        match err {
            Err(SpiceError::NoConvergence { detail, .. }) => {
                assert!(
                    detail.contains("singular"),
                    "{backend:?}: expected a singular-system detail, got {detail}"
                );
            }
            other => panic!("{backend:?}: expected failure, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------
// Fill-reducing ordering: AMD-permuted elimination must be a pure
// perf lever — identical physics on every shipped deck and on the
// generated meshed tier.
// ---------------------------------------------------------------

/// Runs a deck with explicit backend/order options forced on. Options
/// apply in source order with later entries winning, so the forced
/// line goes *last* (before any `.end`, which stops parsing) — a
/// deck-local `.options sparse=1` (e.g. `grid_cells.cir`) must not
/// override the variant under test.
fn run_ordered(src: &str, opts: &str) -> Vec<(String, AnalysisOutcome)> {
    let mut lines: Vec<&str> = src.lines().collect();
    let opt = format!(".options {opts}");
    let end = lines
        .iter()
        .position(|l| l.trim().eq_ignore_ascii_case(".end"))
        .unwrap_or(lines.len());
    lines.insert(end, &opt);
    let src = lines.join("\n");
    let deck = {
        let mut resolver = mems::netlist::FsResolver {
            base: std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/decks"),
        };
        Deck::parse_with_includes(&src, &mut resolver)
            .unwrap_or_else(|e| panic!("{}", e.render(&src)))
    };
    let run = run_deck(&deck).unwrap_or_else(|e| panic!("{}", e.render(&src)));
    run.outcomes
        .into_iter()
        .map(|(card, outcome)| (card.kind_name().to_string(), outcome))
        .collect()
}

/// Compares two runs of the same deck outcome-by-outcome to `rel`.
fn assert_outcomes_agree(
    what: &str,
    a: &[(String, AnalysisOutcome)],
    b: &[(String, AnalysisOutcome)],
    rel: f64,
) {
    assert_eq!(a.len(), b.len(), "{what}: outcome counts differ");
    for ((ka, oa), (kb, ob)) in a.iter().zip(b) {
        assert_eq!(ka, kb, "{what}: analysis kinds differ");
        match (oa, ob) {
            (AnalysisOutcome::Op(pa), AnalysisOutcome::Op(pb)) => {
                assert_traces_agree(&format!("{what}/op"), &pa.x, &pb.x, rel);
            }
            (AnalysisOutcome::Dc { result: ra, .. }, AnalysisOutcome::Dc { result: rb, .. }) => {
                assert_eq!(ra.values, rb.values, "{what}: sweep grids differ");
                for (pa, pb) in ra.points.iter().zip(&rb.points) {
                    assert_traces_agree(&format!("{what}/dc"), &pa.x, &pb.x, rel);
                }
            }
            (AnalysisOutcome::Ac(aa), AnalysisOutcome::Ac(ab)) => {
                assert_eq!(aa.freqs, ab.freqs, "{what}: frequency grids differ");
                for label in &aa.labels {
                    let (Some(ma), Some(mb)) = (aa.magnitude(label), ab.magnitude(label)) else {
                        continue;
                    };
                    assert_traces_agree(&format!("{what}/ac {label}"), &ma, &mb, rel);
                }
            }
            (AnalysisOutcome::Tran(ta), AnalysisOutcome::Tran(tb)) => {
                assert_traces_agree(&format!("{what}/time"), &ta.time, &tb.time, 1e-12);
                for label in &ta.labels {
                    let (Some(xa), Some(xb)) = (ta.trace(label), tb.trace(label)) else {
                        continue;
                    };
                    assert_traces_agree(&format!("{what}/tran {label}"), &xa, &xb, rel);
                }
            }
            other => panic!("{what}: unexpected outcome pair {other:?}"),
        }
    }
}

/// Every shipped deck: forced-sparse AMD ≡ forced-sparse ND ≡
/// forced-sparse natural ≡ dense to ≤ 1e-10. Adaptive `.TRAN` cards
/// are pinned to fixed stepping so all variants walk the identical
/// time grid.
#[test]
fn shipped_decks_agree_across_orderings_and_dense() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/decks");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/decks exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "cir") {
            continue;
        }
        seen += 1;
        let raw = std::fs::read_to_string(&path).unwrap();
        // Pin adaptive transients to a fixed grid (and shorten the
        // long ones: agreement, not physics, is under test here).
        let src: String = raw
            .lines()
            .map(|l| {
                let low = l.trim_start().to_ascii_lowercase();
                if low.starts_with(".tran") && !low.contains("fixed") {
                    format!("{l} fixed")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let amd = run_ordered(&src, "sparse=1 order=amd");
        let nd = run_ordered(&src, "sparse=1 order=nd");
        let natural = run_ordered(&src, "sparse=1 order=natural");
        let dense = run_ordered(&src, "sparse=0");
        assert_outcomes_agree(&format!("{name}: amd vs natural"), &amd, &natural, 1e-10);
        assert_outcomes_agree(&format!("{name}: nd vs natural"), &nd, &natural, 1e-10);
        assert_outcomes_agree(&format!("{name}: amd vs dense"), &amd, &dense, 1e-10);
    }
    assert!(seen >= 6, "expected the shipped decks, found {seen}");
}

/// Every shipped deck through the supernodal engine: forcing
/// `factor=super` (with a 2-thread request) must reproduce the scalar
/// engine and the dense backend field-by-field to ≤ 1e-10. Decks
/// whose Jacobians trip the static-pivot drift guard exercise the
/// scalar fallback inside the same run — either way the physics must
/// not move.
#[test]
fn shipped_decks_agree_supernodal_vs_scalar() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/decks");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/decks exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "cir") {
            continue;
        }
        seen += 1;
        let raw = std::fs::read_to_string(&path).unwrap();
        let src: String = raw
            .lines()
            .map(|l| {
                let low = l.trim_start().to_ascii_lowercase();
                if low.starts_with(".tran") && !low.contains("fixed") {
                    format!("{l} fixed")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let snl = run_ordered(&src, "sparse=1 order=amd factor=super factor_threads=2");
        let scalar = run_ordered(&src, "sparse=1 order=amd factor=scalar");
        let dense = run_ordered(&src, "sparse=0");
        assert_outcomes_agree(&format!("{name}: super vs scalar"), &snl, &scalar, 1e-10);
        assert_outcomes_agree(&format!("{name}: super vs dense"), &snl, &dense, 1e-10);
    }
    assert!(seen >= 6, "expected the shipped decks, found {seen}");
}

/// The meshed scale tier: a generated grid deck (~340 unknowns, well
/// past the dense comfort zone) through dense, sparse-natural,
/// sparse-AMD, and sparse-ND — `.OP` and `.AC` agree to 1e-10.
#[test]
fn grid_deck_orderings_agree() {
    let src = mems::netlist::gen::grid_deck_with(
        8,
        9,
        &mems::netlist::gen::GridDeckOptions {
            options: String::new(), // injected per variant below
            ac: true,
            tran: false,
            step_points: 0,
        },
    );
    let amd = run_ordered(&src, "sparse=1 order=amd");
    let nd = run_ordered(&src, "sparse=1 order=nd");
    let natural = run_ordered(&src, "sparse=1 order=natural");
    let dense = run_ordered(&src, "sparse=0");
    assert_outcomes_agree("grid: amd vs natural", &amd, &natural, 1e-10);
    assert_outcomes_agree("grid: nd vs natural", &nd, &natural, 1e-10);
    assert_outcomes_agree("grid: amd vs dense", &amd, &dense, 1e-10);
}

/// Ordering composes with the elaborate-once `.STEP` batch engine:
/// AMD vs natural per-point metrics agree to 1e-10 on the grid deck,
/// across thread counts.
#[test]
fn grid_step_batch_orderings_agree() {
    use mems::netlist::{run_batch, BatchOptions};
    let mk = |order: &str| {
        let src = mems::netlist::gen::grid_deck_with(
            6,
            6,
            &mems::netlist::gen::GridDeckOptions {
                options: format!("sparse=1 order={order}"),
                ac: false,
                tran: false,
                step_points: 5,
            },
        );
        Deck::parse(&src).unwrap()
    };
    let amd = run_batch(&mk("amd"), &BatchOptions::with_threads(2)).unwrap();
    let natural = run_batch(&mk("natural"), &BatchOptions::with_threads(1)).unwrap();
    assert_eq!(amd.ok_count(), 5);
    assert_eq!(natural.ok_count(), 5);
    for (a, b) in amd.points.iter().zip(&natural.points) {
        let (ma, mb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        for (x, y) in ma.iter().zip(mb) {
            assert_eq!(x.name, y.name);
            let scale = x.value.abs().max(y.value.abs()).max(f64::MIN_POSITIVE);
            assert!(
                (x.value - y.value).abs() <= 1e-10 * scale,
                "{}: {} vs {}",
                x.name,
                x.value,
                y.value
            );
        }
    }
}

#[test]
fn singular_sparse_lu_reports_column() {
    // Rank-1 2×2 matrix: the sparse LU itself must flag singularity.
    let csc = CscMatrix::from_triplets(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)]);
    match SparseLu::<f64>::factor(&csc.view()) {
        Err(NumericsError::Singular { index }) => assert_eq!(index, 1),
        other => panic!("expected singular, got {other:?}"),
    }
}

/// The elaborate-once `set_param` path composes with the forced-sparse
/// backend: a single-worker `.STEP` batch (fixed point order ⇒ a
/// deterministic pivot-replay sequence) is bit-identical whether each
/// point patches the cached circuit or re-elaborates the deck.
#[test]
fn sparse_batch_patching_matches_reelaboration() {
    use mems::netlist::{run_batch, BatchOptions};
    use std::fmt::Write as _;
    // A 60-section nonlinear ladder, well past the sparse threshold.
    let mut src =
        String::from("sparse ladder step\n.options sparse=1\n.param rload=1k\nVs n0 0 5\n");
    for i in 1..=60 {
        let _ = writeln!(src, "R{i} n{} n{i} 100", i - 1);
    }
    let _ = writeln!(src, "Bq n60 0 n60 0 n60 0 1e-4");
    let _ = writeln!(src, "Rl n60 0 {{rload}}");
    src.push_str(".op\n.print op v(n60)\n.step param rload 500 2000 250\n");
    let deck = Deck::parse(&src).unwrap();

    let patched = run_batch(&deck, &BatchOptions::with_threads(1)).unwrap();
    let rebuilt = run_batch(
        &deck,
        &BatchOptions {
            threads: 1,
            reelaborate: true,
            cancel: None,
        },
    )
    .unwrap();
    assert_eq!(patched.ok_count(), 7);
    for (a, b) in patched.points.iter().zip(&rebuilt.points) {
        let (ma, mb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        for (x, y) in ma.iter().zip(mb) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.value.to_bits(), y.value.to_bits(), "{}", x.name);
        }
    }
}
