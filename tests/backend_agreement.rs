//! Dense vs sparse backend agreement: the two [`SystemMatrix`]
//! implementations must be interchangeable on real workloads.
//!
//! The deck option `sparse=0/1` forces the backend, so each test runs
//! the identical deck through both linear-algebra paths and compares
//! the physics to tight tolerances (the backends factor in different
//! orders, so bit-equality is not expected — 1e-10 relative is).

use mems::netlist::{run_deck, AnalysisOutcome, Deck};
use mems::numerics::sparse_lu::{CscMatrix, SparseLu};
use mems::numerics::NumericsError;
use mems::spice::analysis::dcop;
use mems::spice::circuit::Circuit;
use mems::spice::devices::Resistor;
use mems::spice::solver::SimOptions;
use mems::spice::system::{DenseSystem, SparseSystem, SystemMatrix};
use mems::spice::{MatrixBackend, SpiceError};

fn load_deck(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/decks")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Injects a `.options sparse=…` line after the title line.
fn with_backend(src: &str, sparse: bool) -> String {
    let mut lines: Vec<&str> = src.lines().collect();
    let opt = if sparse {
        ".options sparse=1"
    } else {
        ".options sparse=0"
    };
    lines.insert(1, opt);
    lines.join("\n")
}

fn run_variant(src: &str, sparse: bool) -> Vec<(String, AnalysisOutcome)> {
    let src = with_backend(src, sparse);
    let deck = Deck::parse(&src).unwrap_or_else(|e| panic!("{}", e.render(&src)));
    let run = run_deck(&deck).unwrap_or_else(|e| panic!("{}", e.render(&src)));
    run.outcomes
        .into_iter()
        .map(|(card, outcome)| (card.kind_name().to_string(), outcome))
        .collect()
}

/// Asserts two traces agree to `rel` relative to the trace scale.
fn assert_traces_agree(label: &str, a: &[f64], b: &[f64], rel: f64) {
    assert_eq!(a.len(), b.len(), "{label}: trace lengths differ");
    let scale = a
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(f64::MIN_POSITIVE);
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= rel * scale,
            "{label}[{i}]: dense {x:e} vs sparse {y:e} (scale {scale:e})"
        );
    }
}

#[test]
fn eletran_deck_backends_agree() {
    // Fixed-step transient so both backends take the identical step
    // sequence; the adaptive controller's accept/reject decisions
    // could otherwise diverge on last-bit differences.
    let src = load_deck("eletran_transient.cir").replace(".TRAN 0.2m 90m", ".TRAN 0.2m 30m fixed");
    assert!(src.contains("fixed"), "replacement failed: deck changed?");
    let dense = run_variant(&src, false);
    let sparse = run_variant(&src, true);
    assert_eq!(dense.len(), sparse.len());
    for ((_, d), (_, s)) in dense.iter().zip(&sparse) {
        match (d, s) {
            (AnalysisOutcome::Tran(td), AnalysisOutcome::Tran(ts)) => {
                assert_traces_agree("time", &td.time, &ts.time, 1e-12);
                for label in ["v(vel)", "i(kk1,0)", "v(drive)"] {
                    let a = td.trace(label).unwrap_or_else(|| panic!("{label} missing"));
                    let b = ts.trace(label).unwrap_or_else(|| panic!("{label} missing"));
                    assert_traces_agree(label, &a, &b, 1e-10);
                }
            }
            other => panic!("unexpected outcome pair {other:?}"),
        }
    }
}

#[test]
fn relay_pull_in_sweep_backends_agree() {
    let src = load_deck("relay_pull_in.cir");
    let dense = run_variant(&src, false);
    let sparse = run_variant(&src, true);
    for ((_, d), (_, s)) in dense.iter().zip(&sparse) {
        match (d, s) {
            (AnalysisOutcome::Dc { result: rd, .. }, AnalysisOutcome::Dc { result: rs, .. }) => {
                assert_eq!(rd.values, rs.values);
                // Plate displacement is the relay's internal unknown —
                // the stiff quantity that would expose factorization
                // differences first.
                for label in ["i(xrelay,0)", "v(drive)"] {
                    let a = rd.trace(label).unwrap_or_else(|| panic!("{label} missing"));
                    let b = rs.trace(label).unwrap_or_else(|| panic!("{label} missing"));
                    assert_traces_agree(label, &a, &b, 1e-10);
                }
            }
            other => panic!("unexpected outcome pair {other:?}"),
        }
    }
}

#[test]
fn speaker_ac_backends_agree() {
    // Complex (AC) assembly goes through the same SystemMatrix
    // abstraction — check it too.
    let src = load_deck("speaker_ac.cir");
    let dense = run_variant(&src, false);
    let sparse = run_variant(&src, true);
    for ((_, d), (_, s)) in dense.iter().zip(&sparse) {
        match (d, s) {
            (AnalysisOutcome::Ac(ad), AnalysisOutcome::Ac(as_)) => {
                assert_eq!(ad.freqs, as_.freqs);
                for label in &ad.labels {
                    let (Some(md), Some(ms)) = (ad.magnitude(label), as_.magnitude(label)) else {
                        continue;
                    };
                    assert_traces_agree(label, &md, &ms, 1e-10);
                }
            }
            other => panic!("unexpected outcome pair {other:?}"),
        }
    }
}

#[test]
fn randomly_stamped_spd_system_agrees() {
    // A pseudo-random symmetric positive-definite system stamped
    // through both backends must solve to the same vector.
    let n = 120;
    let mut lcg = 0x12345678u64;
    let mut rand = move || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((lcg >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    // B with ~5 entries per row; A = Bᵀ·B + n·I is SPD.
    let mut b_entries: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        b_entries.push((i, i, 2.0 + rand()));
        for _ in 0..4 {
            let j = ((rand().abs() * n as f64) as usize).min(n - 1);
            b_entries.push((i, j, rand()));
        }
    }
    let mut a = vec![vec![0.0f64; n]; n];
    for &(i, j, v) in &b_entries {
        for &(i2, j2, v2) in &b_entries {
            if i == i2 {
                a[j][j2] += v * v2;
            }
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += n as f64;
    }
    let rhs: Vec<f64> = (0..n).map(|_| rand()).collect();

    let mut dense = DenseSystem::<f64>::new(n);
    let mut sparse = SparseSystem::<f64>::new(n);
    for (i, row) in a.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                dense.add(i, j, v);
                sparse.add(i, j, v);
            }
        }
    }
    dense.factor().unwrap();
    sparse.factor().unwrap();
    let xd = dense.solve(&rhs).unwrap();
    let xs = sparse.solve(&rhs).unwrap();
    assert_traces_agree("spd solve", &xd, &xs, 1e-12);

    // Re-stamp with perturbed values: the sparse side replays its
    // symbolic factorization (numeric-only refactor) and must still
    // agree with a from-scratch dense factorization.
    assert!(sparse.has_symbolic());
    dense.clear();
    sparse.clear();
    for (i, row) in a.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                let v = v * 1.25 + if i == j { 1.0 } else { 0.0 };
                dense.add(i, j, v);
                sparse.add(i, j, v);
            }
        }
    }
    assert!(sparse.has_symbolic(), "clear must keep the pattern");
    dense.factor().unwrap();
    sparse.factor().unwrap();
    let xd = dense.solve(&rhs).unwrap();
    let xs = sparse.solve(&rhs).unwrap();
    assert_traces_agree("spd refactor solve", &xd, &xs, 1e-12);
}

#[test]
fn singular_circuit_errors_on_both_backends() {
    for backend in [MatrixBackend::Dense, MatrixBackend::Sparse] {
        let mut c = Circuit::new();
        let a = c.enode("a").unwrap();
        let b = c.enode("b").unwrap();
        let g = c.ground();
        c.add(Resistor::new("r1", a, g, 1e3)).unwrap();
        let _ = b; // floating node
        let mut opts = SimOptions {
            gmin: 0.0, // no leak: the floating node is singular
            ..SimOptions::default()
        };
        opts.matrix = backend;
        let err = dcop::solve(&mut c, &opts);
        match err {
            Err(SpiceError::NoConvergence { detail, .. }) => {
                assert!(
                    detail.contains("singular"),
                    "{backend:?}: expected a singular-system detail, got {detail}"
                );
            }
            other => panic!("{backend:?}: expected failure, got {other:?}"),
        }
    }
}

#[test]
fn singular_sparse_lu_reports_column() {
    // Rank-1 2×2 matrix: the sparse LU itself must flag singularity.
    let csc = CscMatrix::from_triplets(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)]);
    match SparseLu::<f64>::factor(&csc.view()) {
        Err(NumericsError::Singular { index }) => assert_eq!(index, 1),
        other => panic!("expected singular, got {other:?}"),
    }
}

/// The elaborate-once `set_param` path composes with the forced-sparse
/// backend: a single-worker `.STEP` batch (fixed point order ⇒ a
/// deterministic pivot-replay sequence) is bit-identical whether each
/// point patches the cached circuit or re-elaborates the deck.
#[test]
fn sparse_batch_patching_matches_reelaboration() {
    use mems::netlist::{run_batch, BatchOptions};
    use std::fmt::Write as _;
    // A 60-section nonlinear ladder, well past the sparse threshold.
    let mut src =
        String::from("sparse ladder step\n.options sparse=1\n.param rload=1k\nVs n0 0 5\n");
    for i in 1..=60 {
        let _ = writeln!(src, "R{i} n{} n{i} 100", i - 1);
    }
    let _ = writeln!(src, "Bq n60 0 n60 0 n60 0 1e-4");
    let _ = writeln!(src, "Rl n60 0 {{rload}}");
    src.push_str(".op\n.print op v(n60)\n.step param rload 500 2000 250\n");
    let deck = Deck::parse(&src).unwrap();

    let patched = run_batch(&deck, &BatchOptions::with_threads(1)).unwrap();
    let rebuilt = run_batch(
        &deck,
        &BatchOptions {
            threads: 1,
            reelaborate: true,
        },
    )
    .unwrap();
    assert_eq!(patched.ok_count(), 7);
    for (a, b) in patched.points.iter().zip(&rebuilt.points) {
        let (ma, mb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        for (x, y) in ma.iter().zip(mb) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.value.to_bits(), y.value.to_bits(), "{}", x.name);
        }
    }
}
