//! Integration test: the Figure 5 experiment end-to-end through the
//! facade crate — HDL front end, behavioral device, multi-nature
//! transient solver, linearized equivalent circuit.

use mems::core::experiments::fig5::{run, Fig5Options};
use mems::core::{ElectricalStyle, LinearizedKind};

#[test]
fn headline_shape_match_overshoot_undershoot() {
    let result = run(&Fig5Options::default()).unwrap();
    let r5 = result.row(5.0).unwrap();
    let r10 = result.row(10.0).unwrap();
    let r15 = result.row(15.0).unwrap();

    // "converge perfectly for a quasi-static load of 10 V".
    assert!(
        r10.static_rel_err() < 0.01,
        "10 V: {}",
        r10.static_rel_err()
    );
    // Secant linearization: settled ratio V0/V exactly (force ∝ V vs V²).
    assert!((r5.linear_over_nonlinear() - 2.0).abs() < 0.05);
    assert!((r15.linear_over_nonlinear() - 2.0 / 3.0).abs() < 0.03);
    // Displacement magnitudes follow V² (up to the small gap change):
    // 2.5 / 10 / 22.5 nm-ish.
    assert!((r5.x_nonlinear - 2.46e-9).abs() < 1e-10);
    assert!((r10.x_nonlinear - 9.84e-9).abs() < 2e-10);
    assert!((r15.x_nonlinear - 2.21e-8).abs() < 5e-10);
}

#[test]
fn under_damped_transient_peaks_before_settling() {
    // ζ ≈ 0.14: the step response overshoots by exp(−πζ/√(1−ζ²)) ≈ 64 %
    // for an ideal step; the 5 ms ramp reduces it, but a clear peak
    // above the settled value must remain in both models.
    let result = run(&Fig5Options {
        levels: vec![10.0],
        ..Fig5Options::default()
    })
    .unwrap();
    let r = result.row(10.0).unwrap();
    assert!(
        r.peak_nonlinear > r.x_nonlinear * 1.05,
        "no ringing: peak {} vs settled {}",
        r.peak_nonlinear,
        r.x_nonlinear
    );
    assert!(r.peak_linear > r.x_linear * 1.05);
}

#[test]
fn tangent_bias_linearization_also_matches_at_bias() {
    let result = run(&Fig5Options {
        levels: vec![10.0],
        linearized: LinearizedKind::TangentBias,
        ..Fig5Options::default()
    })
    .unwrap();
    let r = result.row(10.0).unwrap();
    assert!(r.static_rel_err() < 0.02, "{}", r.static_rel_err());
}

#[test]
fn full_electrical_style_gives_same_mechanics() {
    let paper = run(&Fig5Options {
        levels: vec![15.0],
        ..Fig5Options::default()
    })
    .unwrap();
    let full = run(&Fig5Options {
        levels: vec![15.0],
        style: ElectricalStyle::Full,
        ..Fig5Options::default()
    })
    .unwrap();
    let a = paper.row(15.0).unwrap().x_nonlinear;
    let b = full.row(15.0).unwrap().x_nonlinear;
    assert!((a - b).abs() < a.abs() * 0.01, "{a} vs {b}");
}
