//! Integration test: the full PXT loop — FE characterization →
//! extraction tables → HDL-A model generation → compile → simulate →
//! compare with the analytic transducer (paper Fig. 6 plus the
//! piecewise-linear and harmonic variants).

use mems::core::experiments::{fig6, harmonic};
use mems::core::TransverseElectrostatic;
use mems::pxt::codegen::pwl::generate_pwl_transducer_model;
use mems::pxt::recipes::{capacitance_vs_displacement, force_vs_voltage_displacement, PlateGapDut};
use mems::pxt::verify::verify_static_force;

#[test]
fn fig6_fe_force_matches_table3() {
    let r = fig6::run().unwrap();
    assert!(r.force_rel_error < 1e-6, "FE error {}", r.force_rel_error);
    assert!((r.force_analytic + 1.9676e-6).abs() < 1e-9);
    assert!(r.roundtrip_error < 5e-3, "roundtrip {}", r.roundtrip_error);
}

#[test]
fn pwl_table_model_roundtrips_within_table_resolution() {
    let dut = PlateGapDut::table4();
    let analytic = TransverseElectrostatic::table4();
    let xs: Vec<f64> = (0..9).map(|i| -2e-5 + 1e-5 * i as f64).collect();
    let cap = capacitance_vs_displacement(&dut, &xs).unwrap();
    let force = force_vs_voltage_displacement(&dut, &[5.0, 10.0, 15.0], &xs).unwrap();
    let model = generate_pwl_transducer_model("pwltran", &cap, &force).unwrap();
    // Verify at points *between* breakpoints — the table interpolates.
    let samples: Vec<(f64, f64, f64)> = [(10.0, 5e-6), (7.5, -5e-6), (12.0, 1.5e-5)]
        .iter()
        .map(|&(v, x)| (v, x, analytic.force(v, x)))
        .collect();
    let err = verify_static_force(&model.source, "pwltran", &samples).unwrap();
    // PWL segments over 10 µm on a 1/g² curve: sub-percent error.
    assert!(err < 1e-2, "PWL roundtrip error {err}");
}

#[test]
fn harmonic_dataflow_roundtrips() {
    let r = harmonic::run().unwrap();
    assert!(r.fit_error < 0.05, "fit error {}", r.fit_error);
    assert!(
        r.ac_roundtrip_error < 1e-6,
        "AC roundtrip {}",
        r.ac_roundtrip_error
    );
}
