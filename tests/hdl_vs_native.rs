//! Integration test: the HDL-compiled behavioral transducer agrees
//! with native closed-form physics, and the generated models agree
//! with the hand-written Listing 1.

use mems::core::{ElectricalStyle, TransverseElectrostatic};
use mems::hdl::HdlModel;
use mems::spice::analysis::transient::{run, TranOptions};
use mems::spice::circuit::Circuit;
use mems::spice::devices::{Damper, HdlDevice, Mass, Spring, VoltageSource};
use mems::spice::solver::SimOptions;
use mems::spice::wave::Waveform;

const LISTING1: &str = r#"
ENTITY eletran IS
 GENERIC (A, d, er : analog);
 PIN (a, b : electrical; c, d : mechanical1);
END ENTITY eletran;
ARCHITECTURE a OF eletran IS
VARIABLE e0, x : analog;
STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, d].tv;
      x := integ(S);
      [a, b].i %= e0*er*A/(d + x)*ddt(V);
      [c, d].f %= -e0*er*A*V*V/(2.0*(d+x)*(d+x));
  END RELATION;
END ARCHITECTURE a;
"#;

fn simulate_with(model: &HdlModel, generics: &[(&str, f64)]) -> Vec<f64> {
    let mut ckt = Circuit::new();
    let drive = ckt.enode("drive").unwrap();
    let vel = ckt.mnode("vel").unwrap();
    let gnd = ckt.ground();
    ckt.add(VoltageSource::new(
        "vsrc",
        drive,
        gnd,
        Waveform::Pulse {
            v1: 0.0,
            v2: 10.0,
            delay: 1e-3,
            rise: 4e-3,
            fall: 4e-3,
            width: 60e-3,
            period: 0.0,
        },
    ))
    .unwrap();
    ckt.add(HdlDevice::new("x1", model, generics, &[drive, gnd, vel, gnd]).unwrap())
        .unwrap();
    ckt.add(Mass::new("m1", vel, gnd, 1e-4)).unwrap();
    ckt.add(Spring::new("k1", vel, gnd, 200.0)).unwrap();
    ckt.add(Damper::new("d1", vel, gnd, 40e-3)).unwrap();
    let res = run(
        &mut ckt,
        &TranOptions::fixed_step(40e-3, 2e-5),
        &SimOptions::default(),
    )
    .unwrap();
    res.trace("i(k1,0)")
        .unwrap()
        .iter()
        .map(|f| f / 200.0)
        .collect()
}

#[test]
fn listing1_verbatim_equals_energy_generated_model() {
    let hand_written = HdlModel::compile(LISTING1, "eletran", None).unwrap();
    let x_hand = simulate_with(&hand_written, &[("a", 1e-4), ("d", 0.15e-3), ("er", 1.0)]);

    let generated_src = TransverseElectrostatic::table4()
        .hdl_source(ElectricalStyle::PaperStyle)
        .unwrap();
    let generated = HdlModel::compile(&generated_src, "eletran", None).unwrap();
    // The generated model's generics carry Table 4 defaults.
    let x_gen = simulate_with(&generated, &[]);

    assert_eq!(x_hand.len(), x_gen.len(), "fixed-step runs must align");
    let diff = mems::numerics::stats::max_abs_diff(&x_hand, &x_gen);
    let scale = x_hand.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    assert!(
        diff < scale * 1e-9,
        "hand-written vs generated diverge: {diff:e} (scale {scale:e})"
    );
}

#[test]
fn settled_displacement_matches_closed_form_equilibrium() {
    let model = HdlModel::compile(LISTING1, "eletran", None).unwrap();
    let x = simulate_with(&model, &[("a", 1e-4), ("d", 0.15e-3), ("er", 1.0)]);
    let settled = mems::numerics::stats::settled_value(&x, 0.05);
    let expect = TransverseElectrostatic::table4()
        .static_displacement(10.0, 200.0)
        .unwrap();
    assert!(
        (settled - expect).abs() < expect * 0.01,
        "settled {settled:e} vs equilibrium {expect:e}"
    );
}

#[test]
fn generic_override_scales_the_response() {
    let model = HdlModel::compile(LISTING1, "eletran", None).unwrap();
    let x_full = simulate_with(&model, &[("a", 1e-4), ("d", 0.15e-3), ("er", 1.0)]);
    // Half the area → half the force → half the displacement.
    let x_half = simulate_with(&model, &[("a", 0.5e-4), ("d", 0.15e-3), ("er", 1.0)]);
    let s_full = mems::numerics::stats::settled_value(&x_full, 0.05);
    let s_half = mems::numerics::stats::settled_value(&x_half, 0.05);
    assert!(
        (s_full / s_half - 2.0).abs() < 0.02,
        "area scaling broken: {s_full:e} vs {s_half:e}"
    );
    // εr = 2 doubles the force.
    let x_er2 = simulate_with(&model, &[("a", 1e-4), ("d", 0.15e-3), ("er", 2.0)]);
    let s_er2 = mems::numerics::stats::settled_value(&x_er2, 0.05);
    assert!((s_er2 / s_full - 2.0).abs() < 0.03);
}
