//! Differential properties for the supernodal engine: on random
//! sparse patterns the supernodal factorization must agree with the
//! scalar left-looking LU and the dense backend to ≤ 1e-10, the
//! answer must be bit-identical across worker-thread counts, the
//! Complex64 (AC) instantiation must agree the same way, and the
//! drift-guard → scalar-re-pivot fallback inside [`SparseSystem`]
//! must keep working when the supernodal engine is forced on.

use mems::numerics::ordering::FillOrdering;
use mems::numerics::sparse_lu::{CscMatrix, SparseLu};
use mems::numerics::supernodal::SupernodalLu;
use mems::numerics::Complex64;
use mems::spice::system::{DenseSystem, FactorKind, SparseSystem, SystemMatrix};
use proptest::prelude::*;

/// Deterministic pattern + values from a seed: `n`-node matrix with
/// full diagonal and ~`density` off-diagonal fill (same family the
/// ordering property tests use, so a 1e-10 tolerance is meaningful).
fn random_matrix(seed: u64, n: usize, density: f64, symmetric: bool) -> Vec<(usize, usize, f64)> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 6.0 + 2.0 * next()));
        for j in 0..n {
            if i != j && next() < density {
                let v = 2.0 * next() - 1.0;
                t.push((i, j, v));
                if symmetric {
                    t.push((j, i, v));
                }
            }
        }
    }
    t
}

fn dense_solve(triplets: &[(usize, usize, f64)], n: usize, b: &[f64]) -> Vec<f64> {
    let mut sys = DenseSystem::<f64>::new(n);
    for &(i, j, v) in triplets {
        sys.add(i, j, v);
    }
    sys.factor().unwrap();
    sys.solve(b).unwrap()
}

fn assert_close(label: &str, a: &[f64], b: &[f64], rel: f64) {
    let scale = a.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= rel * scale,
            "{label}[{i}]: {x:e} vs {y:e} (scale {scale:e})"
        );
    }
}

proptest! {
    /// Supernodal ≡ scalar ≡ dense on random patterns, symmetric and
    /// unsymmetric, across explicit worker-thread requests.
    #[test]
    fn supernodal_matches_scalar_and_dense(
        seed in 0i64..1_000_000,
        n in 5usize..70,
        density in 0.02f64..0.3,
        threads in 1usize..9,
        sym in 0usize..2,
    ) {
        let t = random_matrix(seed as u64, n, density, sym == 1);
        let csc = CscMatrix::from_triplets(n, &t);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let snl = SupernodalLu::<f64>::factor(&csc.view(), FillOrdering::Amd, threads).unwrap();
        let x_snl = snl.solve(&b).unwrap();
        let x_scalar = SparseLu::factor(&csc.view()).unwrap().solve(&b).unwrap();
        let x_dense = dense_solve(&t, n, &b);
        let scale = x_dense.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
        for i in 0..n {
            prop_assert!((x_snl[i] - x_scalar[i]).abs() <= 1e-10 * scale,
                "vs scalar: {} vs {}", x_snl[i], x_scalar[i]);
            prop_assert!((x_snl[i] - x_dense[i]).abs() <= 1e-10 * scale,
                "vs dense: {} vs {}", x_snl[i], x_dense[i]);
        }
    }

    /// The level scheduler is deterministic by construction: updater
    /// supernodes are applied in ascending order regardless of which
    /// worker owns a panel, so the factorization — and therefore the
    /// solve — is bit-identical across thread counts.
    #[test]
    fn thread_count_is_bitwise_invariant(
        seed in 0i64..1_000_000,
        n in 5usize..60,
        density in 0.05f64..0.25,
    ) {
        let t = random_matrix(seed as u64 ^ 0x7ead, n, density, false);
        let csc = CscMatrix::from_triplets(n, &t);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let x1 = SupernodalLu::<f64>::factor(&csc.view(), FillOrdering::Amd, 1)
            .unwrap().solve(&b).unwrap();
        for threads in [2usize, 8] {
            let xt = SupernodalLu::<f64>::factor(&csc.view(), FillOrdering::Amd, threads)
                .unwrap().solve(&b).unwrap();
            for i in 0..n {
                prop_assert!(x1[i].to_bits() == xt[i].to_bits(),
                    "threads={threads}: {} vs {}", x1[i], xt[i]);
            }
        }
    }

    /// Complex64 instantiation (the AC path): supernodal ≡ scalar ≡
    /// dense on random complex systems.
    #[test]
    fn complex_supernodal_matches_scalar_and_dense(
        seed in 0i64..1_000_000,
        n in 5usize..50,
        density in 0.05f64..0.25,
    ) {
        let tre = random_matrix(seed as u64, n, density, false);
        let t: Vec<(usize, usize, Complex64)> = tre
            .iter()
            .map(|&(i, j, v)| {
                let im = if i == j { 0.5 } else { -0.3 * v };
                (i, j, Complex64::new(v, im))
            })
            .collect();
        let csc = CscMatrix::from_triplets(n, &t);
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.31).cos(), (i as f64 * 0.17).sin()))
            .collect();
        let x_snl = SupernodalLu::<Complex64>::factor(&csc.view(), FillOrdering::Amd, 2)
            .unwrap().solve(&b).unwrap();
        let x_scalar = SparseLu::factor(&csc.view()).unwrap().solve(&b).unwrap();
        let mut dense = DenseSystem::<Complex64>::new(n);
        for &(i, j, v) in &t {
            dense.add(i, j, v);
        }
        dense.factor().unwrap();
        let x_dense = dense.solve(&b).unwrap();
        let scale = x_dense.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
        for i in 0..n {
            prop_assert!((x_snl[i] - x_scalar[i]).abs() <= 1e-10 * scale,
                "vs scalar: {:?} vs {:?}", x_snl[i], x_scalar[i]);
            prop_assert!((x_snl[i] - x_dense[i]).abs() <= 1e-10 * scale,
                "vs dense: {:?} vs {:?}", x_snl[i], x_dense[i]);
        }
    }

    /// Refactor on the same pattern with perturbed-but-stable values
    /// agrees with the scalar engine on the new values.
    #[test]
    fn supernodal_refactor_matches_scalar(
        seed in 0i64..1_000_000,
        n in 5usize..50,
    ) {
        let t_a = random_matrix(seed as u64 ^ 0xf00d, n, 0.15, false);
        let t_b: Vec<(usize, usize, f64)> = t_a
            .iter()
            .map(|&(i, j, v)| (i, j, v * 1.25 + if i == j { 0.5 } else { 0.0 }))
            .collect();
        let csc_a = CscMatrix::from_triplets(n, &t_a);
        let csc_b = CscMatrix::from_triplets(n, &t_b);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut snl = SupernodalLu::<f64>::factor(&csc_a.view(), FillOrdering::Amd, 2).unwrap();
        snl.refactor(&csc_b.view()).unwrap();
        let x_re = snl.solve(&b).unwrap();
        let x_scalar = SparseLu::factor(&csc_b.view()).unwrap().solve(&b).unwrap();
        let scale = x_scalar.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
        for i in 0..n {
            prop_assert!((x_re[i] - x_scalar[i]).abs() <= 1e-10 * scale,
                "{} vs {}", x_re[i], x_scalar[i]);
        }
    }

    /// The dead-pivot/drift fallback with the supernodal engine forced
    /// on: zeroing a diagonal entry after the first factorization must
    /// trip the static-pivot drift guard, fall back to the scalar
    /// re-pivoting path inside [`SparseSystem`], and still agree with
    /// a plain scalar-natural backend.
    #[test]
    fn drift_fallback_survives_forced_supernodal(
        seed in 0i64..1_000_000,
        n in 6usize..30,
        kill in 0usize..6,
    ) {
        let t = random_matrix(seed as u64 ^ 0x5eed, n, 0.2, false);
        let kill = kill % n;
        let mut snl_sys =
            SparseSystem::<f64>::with_solver(n, FillOrdering::Amd, FactorKind::Supernodal, 2);
        let mut nat_sys =
            SparseSystem::<f64>::with_solver(n, FillOrdering::Natural, FactorKind::Scalar, 0);
        for &(i, j, v) in &t {
            snl_sys.add(i, j, v);
            nat_sys.add(i, j, v);
        }
        snl_sys.factor().unwrap();
        nat_sys.factor().unwrap();
        snl_sys.clear();
        nat_sys.clear();
        for &(i, j, v) in &t {
            let v = if i == kill && j == kill { 0.0 } else { v };
            snl_sys.add(i, j, v);
            nat_sys.add(i, j, v);
        }
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.5).collect();
        // A zeroed diagonal is (almost surely) still nonsingular via
        // the off-diagonals; if either path calls it singular, both
        // must agree on that verdict.
        match (snl_sys.factor(), nat_sys.factor()) {
            (Ok(()), Ok(())) => {
                let xs = snl_sys.solve(&b).unwrap();
                let xn = nat_sys.solve(&b).unwrap();
                let scale = xn.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
                for (a, c) in xs.iter().zip(&xn) {
                    prop_assert!((a - c).abs() <= 1e-10 * scale, "{a} vs {c}");
                }
            }
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "fallback asymmetry: {other:?}"),
        }
    }
}

/// The MNA structure of the meshed tier at a size where upper levels
/// cross the parallel work threshold, so an explicit `threads = 8`
/// request genuinely spawns workers: the answer must still be
/// bit-identical to the inline single-thread run.
#[test]
fn thread_count_invariant_at_parallel_scale() {
    let (rows, cols) = (51usize, 51usize);
    let nn = rows * cols;
    let node = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((node(r, c), node(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((node(r, c), node(r + 1, c)));
            }
        }
    }
    let n = nn + 2 * edges.len();
    let (g, gm, alpha, m_h, k_h) = (1e-3, 2e-4, 2e-3, 1e-2, 5e-2);
    let mut t: Vec<(usize, usize, f64)> = Vec::with_capacity(12 * edges.len());
    for (e, &(a, b)) in edges.iter().enumerate() {
        let vel = nn + 2 * e;
        let fb = nn + 2 * e + 1;
        t.extend_from_slice(&[
            (a, a, g),
            (b, b, g),
            (a, b, -g),
            (b, a, -g),
            (vel, a, gm),
            (vel, b, -gm),
            (a, vel, -gm),
            (b, vel, gm),
            (vel, vel, alpha + m_h),
            (vel, fb, 1.0),
            (fb, vel, -k_h),
            (fb, fb, 1.0),
        ]);
    }
    t.push((0, 0, 1.0));
    t.push((nn - 1, nn - 1, 1e-3));
    let csc = CscMatrix::from_triplets(n, &t);
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).sin()).collect();
    let lu1 = SupernodalLu::<f64>::factor(&csc.view(), FillOrdering::Amd, 1).unwrap();
    let lu8 = SupernodalLu::<f64>::factor(&csc.view(), FillOrdering::Amd, 8).unwrap();
    assert_eq!(lu1.threads_used(), 1);
    assert_eq!(lu8.threads_used(), 8);
    let x1 = lu1.solve(&b).unwrap();
    let x8 = lu8.solve(&b).unwrap();
    for i in 0..n {
        assert_eq!(
            x1[i].to_bits(),
            x8[i].to_bits(),
            "x[{i}]: {} vs {}",
            x1[i],
            x8[i]
        );
    }
    // Sanity against the scalar engine — AMD-ordered: natural order at
    // this size has catastrophic fill and would dominate the test.
    let order = mems::numerics::ordering::amd_order(n, &csc.col_ptr, &csc.row_idx);
    let x_scalar = SparseLu::factor_ordered(&csc.view(), &order)
        .unwrap()
        .solve(&b)
        .unwrap();
    assert_close("sanity vs scalar", &x1, &x_scalar, 1e-10);
}
