//! Integration test: energy bookkeeping of the conservative
//! transducer ("All the transducers presented are considered
//! conservative") — electrical energy in equals mechanical energy
//! delivered plus field energy stored, within integration tolerance.

use mems::core::{ElectricalStyle, TransducerResonatorSystem, TransducerVariant};
use mems::numerics::quad::trapezoid;
use mems::spice::analysis::transient::{run, TranOptions};
use mems::spice::solver::SimOptions;

#[test]
fn transducer_power_balance_holds() {
    // Use the Full electrical style: the paper-style model omits the
    // motional current, so only the full model is exactly conservative.
    let sys = TransducerResonatorSystem::table4(TransducerResonatorSystem::fig5_pulse(10.0));
    let mut ckt = sys
        .build(TransducerVariant::Behavioral(ElectricalStyle::Full))
        .unwrap();
    let result = run(
        &mut ckt,
        &TranOptions::fixed_step(30e-3, 5e-6),
        &SimOptions::default(),
    )
    .unwrap();

    let v = result.node_trace("drive").unwrap();
    let vel = result.node_trace("vel").unwrap();
    // The source branch current flows from node `drive` through the
    // source; current drawn by the transducer is −i(vsrc).
    let i_src = result.trace("i(vsrc,0)").unwrap();
    let i_in: Vec<f64> = i_src.iter().map(|i| -i).collect();

    // Electrical energy delivered to the transducer: ∫ v·i dt.
    let p_elec: Vec<f64> = v.iter().zip(&i_in).map(|(v, i)| v * i).collect();
    let e_elec = trapezoid(&result.time, &p_elec);

    // Mechanical energy delivered by the transducer to the resonator:
    // ∫ F·velocity dt, where F is the net force into the mechanical
    // node = m·dv/dt + k·x + α·v. Read it from the resonator's own
    // elements: F_net = i(res_m is not a branch) — use component sum.
    let f_spring = result.trace("i(res_k,0)").unwrap();
    // Damper force α·vel; mass force m·dvel/dt via finite differences.
    let m = sys.resonator.mass;
    let alpha = sys.resonator.damping;
    let mut p_mech = Vec::with_capacity(vel.len());
    for n in 0..vel.len() {
        let dv = if n == 0 {
            0.0
        } else {
            (vel[n] - vel[n - 1]) / (result.time[n] - result.time[n - 1])
        };
        let f_net = m * dv + f_spring[n] + alpha * vel[n];
        p_mech.push(f_net * vel[n]);
    }
    let e_mech = trapezoid(&result.time, &p_mech);

    // Energy stored in the transducer field at the end: ½·C(x)·V².
    let x_final: f64 = trapezoid(&result.time, &vel);
    let c_final = 8.8542e-12 * 1e-4 / (0.15e-3 + x_final);
    let v_final = *v.last().unwrap();
    let e_stored = 0.5 * c_final * v_final * v_final;

    // Balance: e_elec = e_mech + e_stored (within a few % for the
    // trapezoid post-processing of a discrete trace).
    let residual = (e_elec - e_mech - e_stored).abs();
    let scale = e_elec.abs().max(e_stored);
    assert!(
        residual < scale * 0.05,
        "energy imbalance: in {e_elec:.4e}, mech {e_mech:.4e}, stored {e_stored:.4e}"
    );
    // Sanity: the numbers are non-trivial.
    assert!(e_elec > 1e-10, "no electrical energy flowed: {e_elec:.3e}");
}
