//! Integration tests for the shipped example decks
//! (`examples/decks/*.cir`): every deck must parse, elaborate, and
//! run — and the Listing-1 eletran deck must reproduce the hand-built
//! `mems_spice` API run exactly.

use mems::netlist::{
    batch_points, run_batch, run_deck, AnalysisOutcome, BatchOptions, Deck, Elaborator, FsResolver,
};
use mems::numerics::rootfind::brent;
use mems::numerics::stats::settled_value;
use mems::spice::analysis::transient::{run as run_tran, TranOptions};
use mems::spice::circuit::Circuit;
use mems::spice::devices::{Damper, HdlDevice, Mass, Spring, VoltageSource};
use mems::spice::solver::SimOptions;
use mems::spice::wave::Waveform;

fn deck_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/decks")
        .join(name)
}

fn load(name: &str) -> Deck {
    let path = deck_path(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut resolver = FsResolver {
        base: deck_path(""),
    };
    Deck::parse_with_includes(&src, &mut resolver)
        .unwrap_or_else(|e| panic!("{name}: {}", e.render(&src)))
}

#[test]
fn every_shipped_deck_parses_and_elaborates() {
    let dir = deck_path("");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/decks exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "cir") {
            continue;
        }
        seen += 1;
        let src = std::fs::read_to_string(&path).unwrap();
        let mut resolver = FsResolver {
            base: deck_path(""),
        };
        let deck = Deck::parse_with_includes(&src, &mut resolver)
            .unwrap_or_else(|e| panic!("{}: {}", path.display(), e.render(&src)));
        let elab = Elaborator::new(&deck)
            .unwrap_or_else(|e| panic!("{}: {}", path.display(), e.render(&src)));
        let (mut ckt, _) = elab
            .build(&Default::default(), None)
            .unwrap_or_else(|e| panic!("{}: {}", path.display(), e.render(&src)));
        assert!(ckt.layout().n_unknowns > 0, "{}", path.display());
        assert!(
            !deck.analyses.is_empty(),
            "{} declares no analyses",
            path.display()
        );
    }
    assert!(seen >= 5, "expected at least 5 shipped decks, found {seen}");
}

// Constants of the Listing-1 / Fig. 3 system (paper Table 4).
const E0: f64 = 8.8542e-12;
const AREA: f64 = 1.0e-4;
const GAP: f64 = 0.15e-3;
const MASS: f64 = 1.0e-4;
const K: f64 = 200.0;
const ALPHA: f64 = 40e-3;

const LISTING1: &str = r#"
ENTITY eletran IS
 GENERIC (A, d, er : analog);
 PIN (a, b : electrical; c, d : mechanical1);
END ENTITY eletran;
ARCHITECTURE a OF eletran IS
VARIABLE e0, x : analog;
STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, d].tv;
      x := integ(S);
      [a, b].i %= e0*er*A/(d + x)*ddt(V);
      [c, d].f %= -e0*er*A*V*V/(2.0*(d+x)*(d+x));
  END RELATION;
END ARCHITECTURE a;
"#;

/// Hand-built equivalent of `eletran_transient.cir`: same names, same
/// device order (hence the same unknown layout), same waveform, same
/// integration options.
fn build_eletran_api_circuit() -> Circuit {
    let model = mems::hdl::HdlModel::compile(LISTING1, "eletran", None).unwrap();
    let mut ckt = Circuit::new();
    let drive = ckt.enode("drive").unwrap();
    let vel = ckt.mnode("vel").unwrap();
    let gnd = ckt.ground();
    ckt.add(VoltageSource::new(
        "vsrc",
        drive,
        gnd,
        Waveform::Pulse {
            v1: 0.0,
            v2: 10.0,
            delay: 2e-3,
            rise: 5e-3,
            fall: 5e-3,
            width: 120e-3,
            period: 0.0,
        },
    ))
    .unwrap();
    ckt.add(
        HdlDevice::new(
            "xducer",
            &model,
            &[("a", AREA), ("d", GAP), ("er", 1.0)],
            &[drive, gnd, vel, gnd],
        )
        .unwrap(),
    )
    .unwrap();
    ckt.add(Mass::new("mm1", vel, gnd, MASS)).unwrap();
    ckt.add(Spring::new("kk1", vel, gnd, K)).unwrap();
    ckt.add(Damper::new("dd1", vel, gnd, ALPHA)).unwrap();
    ckt
}

/// Acceptance: the deck run and the equivalent hand-built API run
/// agree within 1e-9 relative error.
#[test]
fn eletran_deck_matches_api_run_to_1e9() {
    let deck = load("eletran_transient.cir");
    let run = run_deck(&deck).unwrap();
    let deck_tran = match &run.outcomes[0].1 {
        AnalysisOutcome::Tran(tr) => tr,
        other => panic!("expected .TRAN outcome, got {other:?}"),
    };

    let mut ckt = build_eletran_api_circuit();
    // Mirror the deck's `.TRAN 0.2m 90m`: tstep is both h_init and h_max.
    let mut opts = TranOptions::new(90e-3);
    opts.h_init = Some(0.2e-3);
    opts.h_max = Some(0.2e-3);
    let api_tran = run_tran(&mut ckt, &opts, &SimOptions::default()).unwrap();

    assert_eq!(deck_tran.time.len(), api_tran.time.len());
    assert_eq!(deck_tran.labels, api_tran.labels);
    for label in ["v(drive)", "v(vel)", "i(kk1,0)"] {
        let a = deck_tran.trace(label).unwrap();
        let b = api_tran.trace(label).unwrap();
        let scale = b.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-9 * scale,
                "{label}[{i}]: deck {x:e} vs api {y:e} (scale {scale:e})"
            );
        }
    }

    // And both reproduce the paper's Table 4 static deflection.
    let x_spring: Vec<f64> = deck_tran
        .trace("i(kk1,0)")
        .unwrap()
        .iter()
        .map(|f| f / K)
        .collect();
    let settled = settled_value(&x_spring, 0.05);
    assert!(
        (settled - 1.0e-8).abs() < 3e-10,
        "settled x = {settled:e}, Table 4 says 1.0e-8"
    );
}

#[test]
fn relay_deck_dc_sweep_tracks_static_equilibrium() {
    let deck = load("relay_pull_in.cir");
    let run = run_deck(&deck).unwrap();
    let (var, result) = match &run.outcomes[0].1 {
        AnalysisOutcome::Dc { var, result } => (var, result),
        other => panic!("expected .DC outcome, got {other:?}"),
    };
    assert_eq!(var, "v(vbias)");
    let x = result.trace("i(xrelay,0)").unwrap();

    // Monotone gap closing, zero at zero bias.
    assert_eq!(x[0], 0.0);
    for w in x.windows(2) {
        assert!(w[1] > w[0] - 1e-15, "displacement must rise: {w:?}");
    }

    // Each point solves k·x = ε0·A·v²/(2(d−x)²) — compare to Brent.
    let (area, gap, k) = (4e-8, 2e-6, 5.0);
    for (v, xi) in result.values.iter().zip(&x) {
        if *v == 0.0 {
            continue;
        }
        let expect = brent(
            |x| k * x - E0 * area * v * v / (2.0 * (gap - x) * (gap - x)),
            0.0,
            gap / 3.0,
            1e-20,
        )
        .unwrap();
        assert!(
            (xi - expect).abs() < expect.abs() * 1e-6 + 1e-15,
            "v = {v}: deck {xi:e} vs brent {expect:e}"
        );
    }

    // The sweep's final point approaches (but stays below) the
    // pull-in travel d/3.
    let last = *x.last().unwrap();
    assert!(last > 0.3e-6 && last < gap / 3.0, "x(5.5 V) = {last:e}");
}

#[test]
fn speaker_deck_ac_peaks_near_damped_resonance() {
    let deck = load("speaker_ac.cir");
    let run = run_deck(&deck).unwrap();
    let ac = match &run.outcomes[0].1 {
        AnalysisOutcome::Ac(ac) => ac,
        other => panic!("expected .AC outcome, got {other:?}"),
    };
    let mag = ac.magnitude("v(cone)").unwrap();
    let (peak_idx, peak) = mag
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
        .unwrap();
    let f_peak = ac.freqs[peak_idx];
    // Mechanical f0 ≈ 195 Hz; the voice-coil coupling shifts and damps
    // the velocity resonance but keeps it in the same octave.
    assert!(
        (140.0..=280.0).contains(&f_peak),
        "velocity peak at {f_peak} Hz"
    );
    // Response rolls off on both sides of the peak.
    assert!(*peak > 2.0 * mag[0], "peak {peak} vs LF {}", mag[0]);
    assert!(
        *peak > 2.0 * mag.last().unwrap(),
        "peak {peak} vs HF {}",
        mag.last().unwrap()
    );
}

/// Acceptance: a ≥32-point deck batch runs in parallel with
/// identical results for any thread count.
#[test]
fn deck_batch_is_deterministic_across_thread_counts() {
    let src = "\
relay spring-spread monte carlo
.param area=4e-8 gap=2e-6 k=5
.HDL
ENTITY relaydc IS
  GENERIC (area, d, k : analog; er : analog := 1.0);
  PIN (a, b : electrical);
END ENTITY relaydc;
ARCHITECTURE a OF relaydc IS
CONSTANT e0 : analog := 8.8542e-12;
VARIABLE v : analog;
UNKNOWN x : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      v := [a, b].v;
      [a, b].i %= e0*er*area/(d - x)*ddt(v);
    EQUATION FOR dc, ac, transient =>
      k*x == e0*er*area*v*v/(2.0*(d - x)*(d - x));
  END RELATION;
END ARCHITECTURE a;
.ENDHDL
Vbias drive 0 DC 5
Xrelay drive 0 relaydc area={area} d={gap} k={k}
.OP
.PRINT op i(xrelay,0)
.MC 36 SEED=2026 k TOL=0.1
.END
";
    let deck = Deck::parse(src).unwrap();
    assert_eq!(batch_points(&deck).unwrap().len(), 36);

    let serial = run_batch(&deck, &BatchOptions::with_threads(1)).unwrap();
    let parallel = run_batch(&deck, &BatchOptions::with_threads(6)).unwrap();
    assert_eq!(serial.threads_used, 1);
    assert_eq!(parallel.threads_used, 6);
    assert_eq!(serial.ok_count(), 36);
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a.point, b.point);
        let (ma, mb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        assert_eq!(ma.len(), mb.len());
        for (x, y) in ma.iter().zip(mb) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.value.to_bits(), y.value.to_bits(), "{}", x.name);
        }
    }
    // The spread actually moves the displacement (the batch is not
    // degenerate): softer springs deflect further.
    let agg = serial.aggregate();
    let (_, stats) = agg
        .iter()
        .find(|(name, _)| name == "op:i(xrelay,0)")
        .expect("displacement metric aggregated");
    assert_eq!(stats.n, 36);
    assert!(stats.max > stats.min * 1.05, "{stats:?}");
}

// ---------------------------------------------------------------
// Elaborate-once (`set_param`) invariance
// ---------------------------------------------------------------

/// Asserts two deck runs are bit-identical outcome by outcome.
fn assert_runs_bit_identical(a: &mems::netlist::DeckRun, b: &mems::netlist::DeckRun, what: &str) {
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{what}: outcome count");
    let bits_eq = |x: &[f64], y: &[f64], ctx: &str| {
        assert_eq!(x.len(), y.len(), "{what}/{ctx}: length");
        for (i, (p, q)) in x.iter().zip(y).enumerate() {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "{what}/{ctx}[{i}]: {p:e} vs {q:e}"
            );
        }
    };
    for (i, ((_, oa), (_, ob))) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        match (oa, ob) {
            (AnalysisOutcome::Op(x), AnalysisOutcome::Op(y)) => {
                assert_eq!(x.layout.labels, y.layout.labels);
                bits_eq(&x.x, &y.x, &format!("op{i}"));
            }
            (AnalysisOutcome::Dc { result: x, .. }, AnalysisOutcome::Dc { result: y, .. }) => {
                bits_eq(&x.values, &y.values, &format!("dc{i}.values"));
                assert_eq!(x.points.len(), y.points.len());
                for (k, (p, q)) in x.points.iter().zip(&y.points).enumerate() {
                    bits_eq(&p.x, &q.x, &format!("dc{i}.pt{k}"));
                }
            }
            (AnalysisOutcome::Ac(x), AnalysisOutcome::Ac(y)) => {
                bits_eq(&x.freqs, &y.freqs, &format!("ac{i}.freqs"));
                assert_eq!(x.labels, y.labels);
                assert_eq!(x.data.len(), y.data.len());
                for (k, (p, q)) in x.data.iter().zip(&y.data).enumerate() {
                    for (j, (z, w)) in p.iter().zip(q).enumerate() {
                        assert_eq!(
                            (z.re.to_bits(), z.im.to_bits()),
                            (w.re.to_bits(), w.im.to_bits()),
                            "{what}/ac{i}.row{k}[{j}]"
                        );
                    }
                }
            }
            (AnalysisOutcome::Tran(x), AnalysisOutcome::Tran(y)) => {
                bits_eq(&x.time, &y.time, &format!("tran{i}.time"));
                assert_eq!(x.labels, y.labels);
                assert_eq!(x.samples.len(), y.samples.len());
                for (k, (p, q)) in x.samples.iter().zip(&y.samples).enumerate() {
                    bits_eq(p, q, &format!("tran{i}.row{k}"));
                }
            }
            (a, b) => panic!("{what}: outcome {i} kind mismatch: {a:?} vs {b:?}"),
        }
    }
}

/// Acceptance: every shipped deck produces bit-identical results
/// whether each point re-elaborates the parse tree or patches the
/// cached circuit through the devices' `set_param` hooks — including
/// repeated runs over one context (exercising the patch path) and a
/// perturbed parameter (exercising actual re-binding, not just
/// same-value rewrites).
#[test]
fn elaborate_once_matches_reelaboration_on_every_deck() {
    use mems::netlist::{run_elaborated_ctx, RunCtx};
    let dir = deck_path("");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/decks exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "cir") {
            continue;
        }
        seen += 1;
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(&path).unwrap();
        let mut resolver = FsResolver {
            base: deck_path(""),
        };
        let deck = Deck::parse_with_includes(&src, &mut resolver).unwrap();
        let elab = Elaborator::new(&deck).unwrap();
        let nominal = Default::default();

        // Baseline: the pre-elaborate-once behavior.
        let baseline = run_elaborated_ctx(&elab, &nominal, &mut RunCtx::without_reuse()).unwrap();

        // One reusing context, run twice: the first run builds and
        // caches, the second patches every circuit in place.
        let mut ctx = RunCtx::default();
        let first = run_elaborated_ctx(&elab, &nominal, &mut ctx).unwrap();
        let patched = run_elaborated_ctx(&elab, &nominal, &mut ctx).unwrap();
        assert_runs_bit_identical(&baseline, &first, &format!("{name}: build vs no-reuse"));
        assert_runs_bit_identical(&baseline, &patched, &format!("{name}: patch vs no-reuse"));

        // Perturb the deck's first parameter: the patched circuit
        // must match a freshly built one under the same override.
        let param = deck.params.first().expect("shipped decks declare params");
        let mut over = mems::netlist::elab::ParamEnv::new();
        over.insert(
            param.name.clone(),
            param.value.eval(&Default::default()).unwrap() * 1.05,
        );
        let fresh = run_elaborated_ctx(&elab, &over, &mut RunCtx::without_reuse()).unwrap();
        let repatch = run_elaborated_ctx(&elab, &over, &mut ctx).unwrap();
        assert_runs_bit_identical(&fresh, &repatch, &format!("{name}: perturbed"));
    }
    assert!(seen >= 5, "expected all 5 shipped decks, found {seen}");
}

/// Acceptance: the `.STEP` batch of `resonator_step.cir` is
/// bit-identical between the elaborate-once default and forced
/// re-elaboration, and stays thread-count invariant with patching on.
#[test]
fn resonator_step_batch_patching_is_bit_identical_and_thread_invariant() {
    let deck = load("resonator_step.cir");
    let patched_1 = run_batch(&deck, &BatchOptions::with_threads(1)).unwrap();
    let rebuilt_1 = run_batch(
        &deck,
        &BatchOptions {
            threads: 1,
            reelaborate: true,
            cancel: None,
        },
    )
    .unwrap();
    let patched_4 = run_batch(&deck, &BatchOptions::with_threads(4)).unwrap();

    assert!(patched_1.ok_count() >= 5, "all points solve");
    for other in [&rebuilt_1, &patched_4] {
        assert_eq!(patched_1.points.len(), other.points.len());
        for (a, b) in patched_1.points.iter().zip(&other.points) {
            assert_eq!(a.point, b.point);
            let (ma, mb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
            assert_eq!(ma.len(), mb.len());
            for (x, y) in ma.iter().zip(mb) {
                assert_eq!(x.name, y.name);
                assert_eq!(x.value.to_bits(), y.value.to_bits(), "{}", x.name);
            }
        }
    }
}

/// Patch errors surface exactly like build errors: a swept value
/// that zeroes a resistance fails that point (with the same spanned
/// message) whether the circuit is rebuilt or patched.
#[test]
fn patch_validation_matches_build_validation() {
    let src = "f\n.param rbot=1k\nVs in 0 1\nR1 in out 1k\nR2 out 0 {rbot}\n.op\n.step param rbot LIST 1k 0 2k\n";
    let deck = Deck::parse(src).unwrap();
    let patched = run_batch(&deck, &BatchOptions::with_threads(1)).unwrap();
    let rebuilt = run_batch(
        &deck,
        &BatchOptions {
            threads: 1,
            reelaborate: true,
            cancel: None,
        },
    )
    .unwrap();
    assert_eq!(patched.ok_count(), 2);
    assert_eq!(rebuilt.ok_count(), 2);
    let (pe, re_) = (
        patched.points[1].outcome.as_ref().unwrap_err(),
        rebuilt.points[1].outcome.as_ref().unwrap_err(),
    );
    assert_eq!(pe, re_, "patch and build report the same failure");
    assert!(pe.contains("resistance must be nonzero"), "{pe}");
}

// ---------------------------------------------------------------
// Hierarchical (.SUBCKT) decks
// ---------------------------------------------------------------

/// Acceptance: a two-level nested deck flattens **bit-identically**
/// to its hand-flattened equivalent across `.OP`, `.AC`, and `.TRAN`.
/// Only instance/node *names* differ between the two decks (the
/// hierarchy prefixes); device order, node creation order, and every
/// value are the same, so the solver trajectories must agree to the
/// last bit. Compared positionally (labels intentionally differ).
#[test]
fn nested_subckt_deck_flattens_bit_identically_to_hand_flat() {
    let nested = Deck::parse(
        "nested rc chain\n\
         .param rtop=1k\n\
         .subckt stage in out PARAMS: r=1k c=100n\n\
         Rt in out {r}\n\
         Cb out 0 {c}\n\
         .ends stage\n\
         Vs in 0 SIN(0 1 1k) AC 1 0\n\
         X1 in a stage r={rtop}\n\
         X2 a b stage c=50n\n\
         Rl b 0 1meg\n\
         .op\n\
         .ac dec 5 10 100k\n\
         .tran 10u 2m\n",
    )
    .unwrap();
    let flat = Deck::parse(
        "hand-flattened rc chain\n\
         .param rtop=1k\n\
         Vs in 0 SIN(0 1 1k) AC 1 0\n\
         Rt1 in a {rtop}\n\
         Cb1 a 0 100n\n\
         Rt2 a b 1k\n\
         Cb2 b 0 50n\n\
         Rl b 0 1meg\n\
         .op\n\
         .ac dec 5 10 100k\n\
         .tran 10u 2m\n",
    )
    .unwrap();
    let rn = run_deck(&nested).unwrap();
    let rf = run_deck(&flat).unwrap();
    assert_eq!(rn.outcomes.len(), rf.outcomes.len());
    let bits_eq = |x: &[f64], y: &[f64], ctx: &str| {
        assert_eq!(x.len(), y.len(), "{ctx}: length");
        for (i, (p, q)) in x.iter().zip(y).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "{ctx}[{i}]: {p:e} vs {q:e}");
        }
    };
    for (i, ((_, on), (_, of))) in rn.outcomes.iter().zip(&rf.outcomes).enumerate() {
        match (on, of) {
            (AnalysisOutcome::Op(a), AnalysisOutcome::Op(b)) => {
                // Ports map straight onto the caller's nodes, so this
                // deck (no private nodes) even shares its node labels
                // with the hand-flat one.
                assert_eq!(a.layout.labels[1], "v(a)");
                assert_eq!(b.layout.labels[1], "v(a)");
                bits_eq(&a.x, &b.x, &format!("op{i}"));
            }
            (AnalysisOutcome::Ac(a), AnalysisOutcome::Ac(b)) => {
                bits_eq(&a.freqs, &b.freqs, "ac.freqs");
                assert_eq!(a.data.len(), b.data.len());
                for (k, (p, q)) in a.data.iter().zip(&b.data).enumerate() {
                    for (j, (z, w)) in p.iter().zip(q).enumerate() {
                        assert_eq!(
                            (z.re.to_bits(), z.im.to_bits()),
                            (w.re.to_bits(), w.im.to_bits()),
                            "ac row {k} col {j}"
                        );
                    }
                }
            }
            (AnalysisOutcome::Tran(a), AnalysisOutcome::Tran(b)) => {
                bits_eq(&a.time, &b.time, "tran.time");
                assert_eq!(a.samples.len(), b.samples.len());
                for (k, (p, q)) in a.samples.iter().zip(&b.samples).enumerate() {
                    bits_eq(p, q, &format!("tran row {k}"));
                }
            }
            (a, b) => panic!("outcome {i} kind mismatch: {a:?} vs {b:?}"),
        }
    }
}

/// Acceptance: the shipped two-level bridge deck's hierarchical
/// `.STEP` (over `x1.k`) is bit-identical between the elaborate-once
/// patch path and forced re-elaboration, and thread-count invariant.
#[test]
fn bridge_deck_hierarchical_step_patch_equals_rebuild_across_threads() {
    let deck = load("bridge_cells.cir");
    let points = batch_points(&deck).unwrap();
    assert_eq!(points.len(), 3);
    assert_eq!(points[0].overrides, vec![("x1.k".to_string(), 150.0)]);

    let patched_1 = run_batch(&deck, &BatchOptions::with_threads(1)).unwrap();
    let rebuilt_1 = run_batch(
        &deck,
        &BatchOptions {
            threads: 1,
            reelaborate: true,
            cancel: None,
        },
    )
    .unwrap();
    let patched_4 = run_batch(&deck, &BatchOptions::with_threads(4)).unwrap();
    assert_eq!(patched_1.ok_count(), 3, "all hierarchical points solve");
    for other in [&rebuilt_1, &patched_4] {
        for (a, b) in patched_1.points.iter().zip(&other.points) {
            assert_eq!(a.point, b.point);
            let (ma, mb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
            assert_eq!(ma.len(), mb.len());
            for (x, y) in ma.iter().zip(mb) {
                assert_eq!(x.name, y.name);
                assert_eq!(x.value.to_bits(), y.value.to_bits(), "{}", x.name);
            }
        }
    }
    // The sweep only moves instance X1: its settled spring force
    // stays the electrostatic drive force (the suspension always
    // balances it), while X2's metrics are untouched across points.
    let m = |p: usize, name: &str| {
        patched_1.points[p].outcome.as_ref().unwrap()[..]
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("metric {name}"))
            .value
    };
    let f_expected = E0 * AREA * 100.0 / (2.0 * GAP * GAP);
    for p in 0..3 {
        let f = m(p, "tran:i(x1.kk,0):settled");
        assert!((f - f_expected).abs() < 0.02 * f_expected, "{f:e}");
    }
    // X2 is only perturbed through the (weak) electrical coupling of
    // the shared drive node — its peak velocity barely moves while
    // X1's softens visibly.
    let v2_spread = (m(0, "tran:v(v2):peak") - m(2, "tran:v(v2):peak")).abs();
    assert!(
        v2_spread < 1e-4 * m(0, "tran:v(v2):peak").abs(),
        "{v2_spread:e}"
    );
    assert!(
        m(0, "tran:v(v1):peak") > 1.2 * m(2, "tran:v(v1):peak"),
        "softer x1 spring must ring further"
    );
}
