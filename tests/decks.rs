//! Integration tests for the shipped example decks
//! (`examples/decks/*.cir`): every deck must parse, elaborate, and
//! run — and the Listing-1 eletran deck must reproduce the hand-built
//! `mems_spice` API run exactly.

use mems::netlist::{
    batch_points, run_batch, run_deck, AnalysisOutcome, BatchOptions, Deck, Elaborator,
};
use mems::numerics::rootfind::brent;
use mems::numerics::stats::settled_value;
use mems::spice::analysis::transient::{run as run_tran, TranOptions};
use mems::spice::circuit::Circuit;
use mems::spice::devices::{Damper, HdlDevice, Mass, Spring, VoltageSource};
use mems::spice::solver::SimOptions;
use mems::spice::wave::Waveform;

fn deck_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/decks")
        .join(name)
}

fn load(name: &str) -> Deck {
    let path = deck_path(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Deck::parse(&src).unwrap_or_else(|e| panic!("{name}: {}", e.render(&src)))
}

#[test]
fn every_shipped_deck_parses_and_elaborates() {
    let dir = deck_path("");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/decks exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "cir") {
            continue;
        }
        seen += 1;
        let src = std::fs::read_to_string(&path).unwrap();
        let deck =
            Deck::parse(&src).unwrap_or_else(|e| panic!("{}: {}", path.display(), e.render(&src)));
        let elab = Elaborator::new(&deck)
            .unwrap_or_else(|e| panic!("{}: {}", path.display(), e.render(&src)));
        let (mut ckt, _) = elab
            .build(&Default::default(), None)
            .unwrap_or_else(|e| panic!("{}: {}", path.display(), e.render(&src)));
        assert!(ckt.layout().n_unknowns > 0, "{}", path.display());
        assert!(
            !deck.analyses.is_empty(),
            "{} declares no analyses",
            path.display()
        );
    }
    assert!(seen >= 3, "expected at least 3 shipped decks, found {seen}");
}

// Constants of the Listing-1 / Fig. 3 system (paper Table 4).
const E0: f64 = 8.8542e-12;
const AREA: f64 = 1.0e-4;
const GAP: f64 = 0.15e-3;
const MASS: f64 = 1.0e-4;
const K: f64 = 200.0;
const ALPHA: f64 = 40e-3;

const LISTING1: &str = r#"
ENTITY eletran IS
 GENERIC (A, d, er : analog);
 PIN (a, b : electrical; c, d : mechanical1);
END ENTITY eletran;
ARCHITECTURE a OF eletran IS
VARIABLE e0, x : analog;
STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, d].tv;
      x := integ(S);
      [a, b].i %= e0*er*A/(d + x)*ddt(V);
      [c, d].f %= -e0*er*A*V*V/(2.0*(d+x)*(d+x));
  END RELATION;
END ARCHITECTURE a;
"#;

/// Hand-built equivalent of `eletran_transient.cir`: same names, same
/// device order (hence the same unknown layout), same waveform, same
/// integration options.
fn build_eletran_api_circuit() -> Circuit {
    let model = mems::hdl::HdlModel::compile(LISTING1, "eletran", None).unwrap();
    let mut ckt = Circuit::new();
    let drive = ckt.enode("drive").unwrap();
    let vel = ckt.mnode("vel").unwrap();
    let gnd = ckt.ground();
    ckt.add(VoltageSource::new(
        "vsrc",
        drive,
        gnd,
        Waveform::Pulse {
            v1: 0.0,
            v2: 10.0,
            delay: 2e-3,
            rise: 5e-3,
            fall: 5e-3,
            width: 120e-3,
            period: 0.0,
        },
    ))
    .unwrap();
    ckt.add(
        HdlDevice::new(
            "xducer",
            &model,
            &[("a", AREA), ("d", GAP), ("er", 1.0)],
            &[drive, gnd, vel, gnd],
        )
        .unwrap(),
    )
    .unwrap();
    ckt.add(Mass::new("mm1", vel, gnd, MASS)).unwrap();
    ckt.add(Spring::new("kk1", vel, gnd, K)).unwrap();
    ckt.add(Damper::new("dd1", vel, gnd, ALPHA)).unwrap();
    ckt
}

/// Acceptance: the deck run and the equivalent hand-built API run
/// agree within 1e-9 relative error.
#[test]
fn eletran_deck_matches_api_run_to_1e9() {
    let deck = load("eletran_transient.cir");
    let run = run_deck(&deck).unwrap();
    let deck_tran = match &run.outcomes[0].1 {
        AnalysisOutcome::Tran(tr) => tr,
        other => panic!("expected .TRAN outcome, got {other:?}"),
    };

    let mut ckt = build_eletran_api_circuit();
    // Mirror the deck's `.TRAN 0.2m 90m`: tstep is both h_init and h_max.
    let mut opts = TranOptions::new(90e-3);
    opts.h_init = Some(0.2e-3);
    opts.h_max = Some(0.2e-3);
    let api_tran = run_tran(&mut ckt, &opts, &SimOptions::default()).unwrap();

    assert_eq!(deck_tran.time.len(), api_tran.time.len());
    assert_eq!(deck_tran.labels, api_tran.labels);
    for label in ["v(drive)", "v(vel)", "i(kk1,0)"] {
        let a = deck_tran.trace(label).unwrap();
        let b = api_tran.trace(label).unwrap();
        let scale = b.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-9 * scale,
                "{label}[{i}]: deck {x:e} vs api {y:e} (scale {scale:e})"
            );
        }
    }

    // And both reproduce the paper's Table 4 static deflection.
    let x_spring: Vec<f64> = deck_tran
        .trace("i(kk1,0)")
        .unwrap()
        .iter()
        .map(|f| f / K)
        .collect();
    let settled = settled_value(&x_spring, 0.05);
    assert!(
        (settled - 1.0e-8).abs() < 3e-10,
        "settled x = {settled:e}, Table 4 says 1.0e-8"
    );
}

#[test]
fn relay_deck_dc_sweep_tracks_static_equilibrium() {
    let deck = load("relay_pull_in.cir");
    let run = run_deck(&deck).unwrap();
    let (var, result) = match &run.outcomes[0].1 {
        AnalysisOutcome::Dc { var, result } => (var, result),
        other => panic!("expected .DC outcome, got {other:?}"),
    };
    assert_eq!(var, "v(vbias)");
    let x = result.trace("i(xrelay,0)").unwrap();

    // Monotone gap closing, zero at zero bias.
    assert_eq!(x[0], 0.0);
    for w in x.windows(2) {
        assert!(w[1] > w[0] - 1e-15, "displacement must rise: {w:?}");
    }

    // Each point solves k·x = ε0·A·v²/(2(d−x)²) — compare to Brent.
    let (area, gap, k) = (4e-8, 2e-6, 5.0);
    for (v, xi) in result.values.iter().zip(&x) {
        if *v == 0.0 {
            continue;
        }
        let expect = brent(
            |x| k * x - E0 * area * v * v / (2.0 * (gap - x) * (gap - x)),
            0.0,
            gap / 3.0,
            1e-20,
        )
        .unwrap();
        assert!(
            (xi - expect).abs() < expect.abs() * 1e-6 + 1e-15,
            "v = {v}: deck {xi:e} vs brent {expect:e}"
        );
    }

    // The sweep's final point approaches (but stays below) the
    // pull-in travel d/3.
    let last = *x.last().unwrap();
    assert!(last > 0.3e-6 && last < gap / 3.0, "x(5.5 V) = {last:e}");
}

#[test]
fn speaker_deck_ac_peaks_near_damped_resonance() {
    let deck = load("speaker_ac.cir");
    let run = run_deck(&deck).unwrap();
    let ac = match &run.outcomes[0].1 {
        AnalysisOutcome::Ac(ac) => ac,
        other => panic!("expected .AC outcome, got {other:?}"),
    };
    let mag = ac.magnitude("v(cone)").unwrap();
    let (peak_idx, peak) = mag
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
        .unwrap();
    let f_peak = ac.freqs[peak_idx];
    // Mechanical f0 ≈ 195 Hz; the voice-coil coupling shifts and damps
    // the velocity resonance but keeps it in the same octave.
    assert!(
        (140.0..=280.0).contains(&f_peak),
        "velocity peak at {f_peak} Hz"
    );
    // Response rolls off on both sides of the peak.
    assert!(*peak > 2.0 * mag[0], "peak {peak} vs LF {}", mag[0]);
    assert!(
        *peak > 2.0 * mag.last().unwrap(),
        "peak {peak} vs HF {}",
        mag.last().unwrap()
    );
}

/// Acceptance: a ≥32-point deck batch runs in parallel with
/// identical results for any thread count.
#[test]
fn deck_batch_is_deterministic_across_thread_counts() {
    let src = "\
relay spring-spread monte carlo
.param area=4e-8 gap=2e-6 k=5
.HDL
ENTITY relaydc IS
  GENERIC (area, d, k : analog; er : analog := 1.0);
  PIN (a, b : electrical);
END ENTITY relaydc;
ARCHITECTURE a OF relaydc IS
CONSTANT e0 : analog := 8.8542e-12;
VARIABLE v : analog;
UNKNOWN x : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      v := [a, b].v;
      [a, b].i %= e0*er*area/(d - x)*ddt(v);
    EQUATION FOR dc, ac, transient =>
      k*x == e0*er*area*v*v/(2.0*(d - x)*(d - x));
  END RELATION;
END ARCHITECTURE a;
.ENDHDL
Vbias drive 0 DC 5
Xrelay drive 0 relaydc area={area} d={gap} k={k}
.OP
.PRINT op i(xrelay,0)
.MC 36 SEED=2026 k TOL=0.1
.END
";
    let deck = Deck::parse(src).unwrap();
    assert_eq!(batch_points(&deck).unwrap().len(), 36);

    let serial = run_batch(&deck, &BatchOptions { threads: 1 }).unwrap();
    let parallel = run_batch(&deck, &BatchOptions { threads: 6 }).unwrap();
    assert_eq!(serial.threads_used, 1);
    assert_eq!(parallel.threads_used, 6);
    assert_eq!(serial.ok_count(), 36);
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a.point, b.point);
        let (ma, mb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        assert_eq!(ma.len(), mb.len());
        for (x, y) in ma.iter().zip(mb) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.value.to_bits(), y.value.to_bits(), "{}", x.name);
        }
    }
    // The spread actually moves the displacement (the batch is not
    // degenerate): softer springs deflect further.
    let agg = serial.aggregate();
    let (_, stats) = agg
        .iter()
        .find(|(name, _)| name == "op:i(xrelay,0)")
        .expect("displacement metric aggregated");
    assert_eq!(stats.n, 36);
    assert!(stats.max > stats.min * 1.05, "{stats:?}");
}
