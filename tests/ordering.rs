//! Property tests for the fill-reducing orderings: on random sparse
//! patterns — diagonally-dominant SPD-ish and plainly unsymmetric —
//! the AMD and nested-dissection permutations must always be valid
//! bijections, permuted factor/refactor solves must agree with
//! natural-order solves to ≤ 1e-12, and the dead-pivot → full
//! re-pivot fallback must keep working under a permutation.

use mems::numerics::ordering::{amd_order, is_permutation, nd_order, FillOrdering};
use mems::numerics::sparse_lu::{CscMatrix, SparseLu};
use mems::spice::system::{SparseSystem, SystemMatrix};
use proptest::prelude::*;

/// Deterministic pattern + values from a seed: `n`-node matrix with
/// full diagonal and ~`density` off-diagonal fill.
fn random_matrix(seed: u64, n: usize, density: f64, symmetric: bool) -> Vec<(usize, usize, f64)> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut t = Vec::new();
    for i in 0..n {
        // Strong diagonal keeps the systems comfortably conditioned,
        // so a 1e-12 cross-ordering tolerance is meaningful.
        t.push((i, i, 6.0 + 2.0 * next()));
        for j in 0..n {
            if i != j && next() < density {
                let v = 2.0 * next() - 1.0;
                t.push((i, j, v));
                if symmetric {
                    t.push((j, i, v));
                }
            }
        }
    }
    t
}

fn solve_both_orders(triplets: &[(usize, usize, f64)], n: usize) -> (Vec<f64>, Vec<f64>) {
    let csc = CscMatrix::from_triplets(n, triplets);
    let order = amd_order(n, &csc.col_ptr, &csc.row_idx);
    assert!(is_permutation(&order, n), "invalid AMD permutation");
    let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
    let x_nat = SparseLu::factor(&csc.view()).unwrap().solve(&b).unwrap();
    let x_amd = SparseLu::factor_ordered(&csc.view(), &order)
        .unwrap()
        .solve(&b)
        .unwrap();
    (x_nat, x_amd)
}

proptest! {
    /// SPD-ish (symmetric, diagonally dominant) patterns.
    #[test]
    fn amd_matches_natural_on_symmetric_patterns(
        seed in 0i64..1_000_000,
        n in 5usize..60,
        density in 0.02f64..0.3,
    ) {
        let t = random_matrix(seed as u64, n, density, true);
        let (x_nat, x_amd) = solve_both_orders(&t, n);
        let scale = x_nat.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
        for (a, b) in x_nat.iter().zip(&x_amd) {
            prop_assert!((a - b).abs() <= 1e-12 * scale, "{a} vs {b} (scale {scale})");
        }
    }

    /// Unsymmetric patterns (the ordering works on the symmetrized
    /// graph; the factorization itself stays unsymmetric).
    #[test]
    fn amd_matches_natural_on_unsymmetric_patterns(
        seed in 0i64..1_000_000,
        n in 5usize..60,
        density in 0.02f64..0.3,
    ) {
        let t = random_matrix(seed as u64 ^ 0xdead_beef, n, density, false);
        let (x_nat, x_amd) = solve_both_orders(&t, n);
        let scale = x_nat.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
        for (a, b) in x_nat.iter().zip(&x_amd) {
            prop_assert!((a - b).abs() <= 1e-12 * scale, "{a} vs {b} (scale {scale})");
        }
    }

    /// Refactor with drifted-but-stable values agrees with a fresh
    /// ordered factorization to machine precision, and the solution
    /// still matches the natural-order one to 1e-12.
    #[test]
    fn ordered_refactor_matches_fresh_factor(
        seed in 0i64..1_000_000,
        n in 5usize..40,
    ) {
        let t_a = random_matrix(seed as u64, n, 0.15, false);
        // Same pattern, perturbed values (keeps the pivots stable).
        let t_b: Vec<(usize, usize, f64)> = t_a
            .iter()
            .map(|&(i, j, v)| (i, j, v * 1.25 + if i == j { 0.5 } else { 0.0 }))
            .collect();
        let csc_a = CscMatrix::from_triplets(n, &t_a);
        let csc_b = CscMatrix::from_triplets(n, &t_b);
        let order = amd_order(n, &csc_a.col_ptr, &csc_a.row_idx);
        prop_assert!(is_permutation(&order, n));
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut lu = SparseLu::factor_ordered(&csc_a.view(), &order).unwrap();
        lu.refactor(&csc_b.view()).unwrap();
        let x_re = lu.solve(&b).unwrap();
        let x_fresh = SparseLu::factor_ordered(&csc_b.view(), &order)
            .unwrap()
            .solve(&b)
            .unwrap();
        let x_nat = SparseLu::factor(&csc_b.view()).unwrap().solve(&b).unwrap();
        let scale = x_nat.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
        for i in 0..n {
            prop_assert!((x_re[i] - x_fresh[i]).abs() <= 1e-12 * scale);
            prop_assert!((x_re[i] - x_nat[i]).abs() <= 1e-12 * scale);
        }
    }

    /// Nested dissection on random sym/unsym patterns: the permutation
    /// is always a valid bijection, and ND-permuted solves agree with
    /// natural order and AMD to ≤ 1e-12.
    #[test]
    fn nd_is_a_valid_permutation_and_matches_natural_and_amd(
        seed in 0i64..1_000_000,
        n in 5usize..60,
        density in 0.02f64..0.3,
        symmetric in 0usize..2,
    ) {
        let t = random_matrix(seed as u64 ^ 0x4e44, n, density, symmetric == 1);
        let csc = CscMatrix::from_triplets(n, &t);
        let nd = nd_order(n, &csc.col_ptr, &csc.row_idx);
        prop_assert!(is_permutation(&nd, n), "invalid ND permutation");
        let b: Vec<f64> = (0..n).map(|i| ((i * 5 + 2) % 13) as f64 - 6.0).collect();
        let x_nat = SparseLu::factor(&csc.view()).unwrap().solve(&b).unwrap();
        let x_nd = SparseLu::factor_ordered(&csc.view(), &nd)
            .unwrap()
            .solve(&b)
            .unwrap();
        let amd = amd_order(n, &csc.col_ptr, &csc.row_idx);
        let x_amd = SparseLu::factor_ordered(&csc.view(), &amd)
            .unwrap()
            .solve(&b)
            .unwrap();
        let scale = x_nat.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
        for i in 0..n {
            prop_assert!((x_nat[i] - x_nd[i]).abs() <= 1e-12 * scale,
                "nd {} vs natural {}", x_nd[i], x_nat[i]);
            prop_assert!((x_amd[i] - x_nd[i]).abs() <= 1e-12 * scale,
                "nd {} vs amd {}", x_nd[i], x_amd[i]);
        }
    }

    /// Full-backend agreement under ND: factor + refactor through
    /// `SparseSystem` with `order=nd` matches the natural-order
    /// backend on the same stamps (exercises the lazy ordering path
    /// and the machine-wide ordering cache end to end).
    #[test]
    fn nd_system_factor_and_refactor_match_natural(
        seed in 0i64..1_000_000,
        n in 5usize..40,
    ) {
        let t = random_matrix(seed as u64 ^ 0x0d15_5ec7, n, 0.15, false);
        let mut nd_sys = SparseSystem::<f64>::with_ordering(n, FillOrdering::Nd);
        let mut nat_sys = SparseSystem::<f64>::with_ordering(n, FillOrdering::Natural);
        for &(i, j, v) in &t {
            nd_sys.add(i, j, v);
            nat_sys.add(i, j, v);
        }
        nd_sys.factor().unwrap();
        nat_sys.factor().unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
        let x_nd = nd_sys.solve(&b).unwrap();
        let x_nat = nat_sys.solve(&b).unwrap();
        let scale = x_nat.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
        for (a, c) in x_nd.iter().zip(&x_nat) {
            prop_assert!((a - c).abs() <= 1e-12 * scale, "{a} vs {c}");
        }
        // Same pattern, perturbed values: the numeric-only refactor
        // replay under ND must track natural order too.
        nd_sys.clear();
        nat_sys.clear();
        for &(i, j, v) in &t {
            let v = v * 1.5 + if i == j { 0.25 } else { 0.0 };
            nd_sys.add(i, j, v);
            nat_sys.add(i, j, v);
        }
        nd_sys.factor().unwrap();
        nat_sys.factor().unwrap();
        let x_nd = nd_sys.solve(&b).unwrap();
        let x_nat = nat_sys.solve(&b).unwrap();
        let scale = x_nat.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
        for (a, c) in x_nd.iter().zip(&x_nat) {
            prop_assert!((a - c).abs() <= 1e-12 * scale, "{a} vs {c}");
        }
    }

    /// The sparse backend's dead-pivot fallback (refactor fails → full
    /// re-pivoting factorization under the same column order) holds
    /// under AMD: zeroing a diagonal entry after the symbolic analysis
    /// must still solve, and agree with the natural-order backend.
    #[test]
    fn dead_pivot_fallback_survives_permutation(
        seed in 0i64..1_000_000,
        n in 6usize..30,
        kill in 0usize..6,
    ) {
        let t = random_matrix(seed as u64 ^ 0x5eed, n, 0.2, false);
        let kill = kill % n;
        let mut amd_sys = SparseSystem::<f64>::with_ordering(n, FillOrdering::Amd);
        let mut nat_sys = SparseSystem::<f64>::with_ordering(n, FillOrdering::Natural);
        for &(i, j, v) in &t {
            amd_sys.add(i, j, v);
            nat_sys.add(i, j, v);
        }
        amd_sys.factor().unwrap();
        nat_sys.factor().unwrap();
        // Same pattern, dead diagonal at `kill`: the replayed pivot
        // dies (or drifts), forcing the full re-pivot fallback.
        amd_sys.clear();
        nat_sys.clear();
        for &(i, j, v) in &t {
            let v = if i == kill && j == kill { 0.0 } else { v };
            amd_sys.add(i, j, v);
            nat_sys.add(i, j, v);
        }
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.5).collect();
        // A zeroed diagonal in a random matrix is (almost surely)
        // still nonsingular thanks to the off-diagonal entries; if
        // either backend calls it singular, both must.
        match (amd_sys.factor(), nat_sys.factor()) {
            (Ok(()), Ok(())) => {
                let xa = amd_sys.solve(&b).unwrap();
                let xn = nat_sys.solve(&b).unwrap();
                let scale = xn.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
                for (a, c) in xa.iter().zip(&xn) {
                    prop_assert!((a - c).abs() <= 1e-10 * scale, "{a} vs {c}");
                }
            }
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "fallback asymmetry: {other:?}"),
        }
    }
}
