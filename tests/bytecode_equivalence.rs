//! Differential harness: the bytecode VM must be indistinguishable
//! from the tree-walking evaluator.
//!
//! Random compiled models — arithmetic, builtins, `if`/branch
//! contributions, `ddt`/`integ` call sites, table lookups, implicit
//! residuals — are evaluated by both evaluators over identical
//! environments. Every contribution/residual value AND every gradient
//! entry must agree to ≤ 1e-12 (they are bit-identical in practice:
//! the VM shares the tree walk's scalar kernels), scratch state must
//! match after each pass, committed history must match across
//! DC → transient chains, and runtime *errors* (failed assertions,
//! unassigned reads, non-finite contributions) must fire with the
//! same messages. Both AD scalar types are covered: [`DualReal`]
//! (DC/transient) and [`DualComplex`] (AC).

use mems::hdl::ast::{BinOp, ObjectKind, UnOp};
use mems::hdl::bytecode::{run_pass_bytecode, BytecodeModel, RegBank};
use mems::hdl::compile::{
    BranchInfo, Builtin, CExpr, CStmt, CompiledModel, GenericInfo, ObjectInfo, PinInfo,
};
use mems::hdl::eval::{run_pass, Analysis, DualComplex, DualReal, EvalEnv, InstanceState};
use mems::hdl::model::{EvalMode, HdlModel};
use mems::hdl::Nature;
use mems::numerics::ode::IntegrationMethod;
use mems::numerics::pwl::Pwl1;
use mems::numerics::Complex64;
use proptest::prelude::*;

const TOL: f64 = 1e-12;

// ---------------------------------------------------------------
// Random model generation
// ---------------------------------------------------------------

const N_GENERICS: usize = 2;
const N_BRANCHES: usize = 2;
const MAX_SITES: usize = 3;

struct Gen {
    rng: TestRng,
    n_ddt: usize,
    n_integ: usize,
    n_tables: usize,
    has_unknown: bool,
    /// Object slots surely assigned at the current program point.
    readable: Vec<usize>,
    n_objects: usize,
}

impl Gen {
    fn f(&mut self) -> f64 {
        self.rng.next_f64()
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.rng.next_u64() % n.max(1) as u64) as usize
    }

    fn leaf(&mut self) -> CExpr {
        match self.pick(12) {
            0 | 1 => CExpr::Const((self.f() - 0.5) * 6.0),
            2 | 3 => CExpr::Generic(self.pick(N_GENERICS)),
            4 => CExpr::Time,
            5..=8 => CExpr::Across(self.pick(N_BRANCHES)),
            _ => {
                // Mostly surely-assigned objects; rarely an arbitrary
                // slot, exercising the unassigned-read error path in
                // both evaluators.
                if !self.readable.is_empty() && self.pick(10) != 0 {
                    let i = self.pick(self.readable.len());
                    CExpr::Object(self.readable[i])
                } else {
                    CExpr::Object(self.pick(self.n_objects))
                }
            }
        }
    }

    fn expr(&mut self, depth: usize) -> CExpr {
        if depth == 0 {
            return self.leaf();
        }
        match self.pick(10) {
            0 | 1 => self.leaf(),
            2 => {
                let op = if self.pick(4) == 0 {
                    UnOp::Not
                } else {
                    UnOp::Neg
                };
                CExpr::Unary(op, Box::new(self.expr(depth - 1)))
            }
            3..=5 => {
                let op = match self.pick(12) {
                    0 | 1 => BinOp::Add,
                    2 | 3 => BinOp::Sub,
                    4 | 5 => BinOp::Mul,
                    6 => BinOp::Div,
                    7 => BinOp::Pow,
                    8 => BinOp::Lt,
                    9 => BinOp::Ge,
                    10 => BinOp::And,
                    _ => BinOp::Or,
                };
                CExpr::Binary(
                    op,
                    Box::new(self.expr(depth - 1)),
                    Box::new(self.expr(depth - 1)),
                )
            }
            6 | 7 => {
                let (b, arity) = match self.pick(14) {
                    0 => (Builtin::Abs, 1),
                    1 => (Builtin::Sqrt, 1),
                    2 => (Builtin::Exp, 1),
                    3 => (Builtin::Ln, 1),
                    4 => (Builtin::Sin, 1),
                    5 => (Builtin::Cos, 1),
                    6 => (Builtin::Tanh, 1),
                    7 => (Builtin::Atan, 1),
                    8 => (Builtin::Sgn, 1),
                    9 => (Builtin::Floor, 1),
                    10 => (Builtin::Atan2, 2),
                    11 => (Builtin::Min, 2),
                    12 => (Builtin::Max, 2),
                    _ => (Builtin::Limit, 3),
                };
                let args = (0..arity).map(|_| self.expr(depth - 1)).collect();
                CExpr::Call(b, args)
            }
            8 => {
                if self.n_ddt < MAX_SITES {
                    let site = self.n_ddt;
                    self.n_ddt += 1;
                    CExpr::Ddt {
                        site,
                        arg: Box::new(self.expr(depth - 1)),
                    }
                } else if self.n_integ < MAX_SITES {
                    let site = self.n_integ;
                    self.n_integ += 1;
                    CExpr::Integ {
                        site,
                        arg: Box::new(self.expr(depth - 1)),
                        ic: (self.f() - 0.5) * 2.0,
                    }
                } else {
                    self.leaf()
                }
            }
            _ => {
                if self.n_tables < MAX_SITES {
                    let site = self.n_tables;
                    self.n_tables += 1;
                    // `Pwl1` rejects NaN abscissae (it panics in both
                    // evaluators, which would abort the comparison),
                    // so table arguments are clamped through the
                    // selection builtins — whose runtime semantics
                    // map NaN to the clamp bound.
                    let clamped = CExpr::Call(
                        Builtin::Min,
                        vec![
                            CExpr::Call(
                                Builtin::Max,
                                vec![self.expr(depth - 1), CExpr::Const(-2.0)],
                            ),
                            CExpr::Const(2.5),
                        ],
                    );
                    CExpr::Table {
                        site,
                        arg: Box::new(clamped),
                    }
                } else if self.n_integ < MAX_SITES {
                    let site = self.n_integ;
                    self.n_integ += 1;
                    CExpr::Integ {
                        site,
                        arg: Box::new(self.expr(depth - 1)),
                        ic: (self.f() - 0.5) * 2.0,
                    }
                } else {
                    self.leaf()
                }
            }
        }
    }

    fn stmts(&mut self, n: usize, nesting: usize) -> Vec<CStmt> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.pick(8) {
                0..=2 => {
                    let object = self.pick(self.n_objects);
                    let value = self.expr(3);
                    out.push(CStmt::Assign { object, value });
                    if !self.readable.contains(&object) {
                        self.readable.push(object);
                    }
                }
                3 | 4 => out.push(CStmt::Contribute {
                    branch: self.pick(N_BRANCHES),
                    value: self.expr(3),
                }),
                5 if nesting > 0 => {
                    // Arm-local assignments are not surely assigned
                    // afterwards: snapshot and restore the readable
                    // set around each body.
                    let n_arms = 1 + self.pick(2);
                    let mut arms = Vec::with_capacity(n_arms);
                    for _ in 0..n_arms {
                        let cond = self.expr(2);
                        let saved = self.readable.clone();
                        let body_len = 1 + self.pick(2);
                        let body = self.stmts(body_len, nesting - 1);
                        self.readable = saved;
                        arms.push((cond, body));
                    }
                    let saved = self.readable.clone();
                    let else_len = self.pick(2);
                    let otherwise = self.stmts(else_len, nesting - 1);
                    self.readable = saved;
                    out.push(CStmt::If { arms, otherwise });
                }
                5 => out.push(CStmt::Report {
                    message: "tick".into(),
                }),
                6 if self.has_unknown => out.push(CStmt::Residual {
                    index: 0,
                    lhs: self.expr(2),
                    rhs: self.expr(2),
                }),
                6 => out.push(CStmt::Contribute {
                    branch: self.pick(N_BRANCHES),
                    value: self.expr(2),
                }),
                _ => {
                    // A rarely failing assertion exercises the error
                    // path; the comparison is usually true.
                    out.push(CStmt::Assert {
                        cond: CExpr::Binary(
                            BinOp::Lt,
                            Box::new(self.expr(2)),
                            Box::new(CExpr::Const(1e6)),
                        ),
                        message: "guard".into(),
                    });
                }
            }
        }
        out
    }
}

/// One random model plus everything needed to evaluate it.
struct Case {
    model: CompiledModel,
    code: BytecodeModel,
    generics: Vec<f64>,
    init_values: Vec<Option<f64>>,
    tables: Vec<Pwl1>,
    across: Vec<f64>,
    unknowns: Vec<f64>,
}

fn build_case(seed: i64) -> Case {
    let mut rng = TestRng::deterministic(&format!("bytecode-case-{seed}"));
    let has_unknown = rng.next_u64().is_multiple_of(2);
    let n_objects = 4 + usize::from(has_unknown);
    let mut g = Gen {
        rng,
        n_ddt: 0,
        n_integ: 0,
        n_tables: 0,
        has_unknown,
        // Slots 0 (initialized variable), 2 (state), and the unknown
        // are readable from the start; slots 1/3 need assignment.
        readable: if has_unknown {
            vec![0, 2, 4]
        } else {
            vec![0, 2]
        },
        n_objects,
    };
    let n_stmts = 4 + g.pick(4);
    let program = g.stmts(n_stmts, 2);

    let mut objects = vec![
        ObjectInfo {
            name: "w0".into(),
            kind: ObjectKind::Variable,
            init: None,
            unknown_index: None,
        },
        ObjectInfo {
            name: "w1".into(),
            kind: ObjectKind::Variable,
            init: None,
            unknown_index: None,
        },
        ObjectInfo {
            name: "s0".into(),
            kind: ObjectKind::State,
            init: None,
            unknown_index: None,
        },
        ObjectInfo {
            name: "w3".into(),
            kind: ObjectKind::Variable,
            init: None,
            unknown_index: None,
        },
    ];
    if has_unknown {
        objects.push(ObjectInfo {
            name: "u0".into(),
            kind: ObjectKind::Unknown,
            init: None,
            unknown_index: Some(0),
        });
    }

    let pins: Vec<PinInfo> = (0..4)
        .map(|i| PinInfo {
            name: format!("p{i}"),
            nature: Nature::Electrical,
        })
        .collect();
    let branches = vec![
        BranchInfo {
            pin_a: 0,
            pin_b: 1,
            nature: Nature::Electrical,
        },
        BranchInfo {
            pin_a: 2,
            pin_b: 3,
            nature: Nature::Electrical,
        },
    ];

    let model = CompiledModel {
        name: "randmodel".into(),
        arch: "a".into(),
        generics: (0..N_GENERICS)
            .map(|i| GenericInfo {
                name: format!("g{i}"),
                default: None,
            })
            .collect(),
        pins,
        branches,
        objects,
        n_unknowns: usize::from(has_unknown),
        n_ddt_sites: g.n_ddt,
        n_integ_sites: g.n_integ,
        tables: Vec::new(),
        init_program: Vec::new(),
        dc_program: program.clone(),
        ac_program: program.clone(),
        tran_program: program,
    };
    let code = BytecodeModel::compile(&model);

    let tables = (0..g.n_tables)
        .map(|_| {
            let xs = vec![-2.0, -0.5, 0.0, 1.0, 2.5];
            let ys: Vec<f64> = (0..5).map(|_| (g.f() - 0.5) * 4.0).collect();
            Pwl1::new(xs, ys).expect("strictly increasing axis")
        })
        .collect();

    let generics: Vec<f64> = (0..N_GENERICS).map(|_| (g.f() - 0.5) * 4.0).collect();
    let init_values =
        vec![Some((g.f() - 0.5) * 2.0), None, None, None, None][..model.objects.len()].to_vec();
    let across: Vec<f64> = (0..N_BRANCHES).map(|_| (g.f() - 0.5) * 3.0).collect();
    let unknowns: Vec<f64> = (0..model.n_unknowns).map(|_| (g.f() - 0.5) * 2.0).collect();

    Case {
        model,
        code,
        generics,
        init_values,
        tables,
        across,
        unknowns,
    }
}

// ---------------------------------------------------------------
// Capture environments and comparison
// ---------------------------------------------------------------

/// Everything an evaluation pass hands the simulator, recorded in
/// order.
enum Event<S> {
    Contribute(usize, S),
    Residual(usize, S),
    Report(String),
}

struct CaptureEnv<S> {
    n: usize,
    across: Vec<f64>,
    unknowns: Vec<f64>,
    events: Vec<Event<S>>,
}

impl<S> CaptureEnv<S> {
    fn new(n: usize, across: &[f64], unknowns: &[f64]) -> Self {
        CaptureEnv {
            n,
            across: across.to_vec(),
            unknowns: unknowns.to_vec(),
            events: Vec::new(),
        }
    }
}

impl EvalEnv<DualReal> for CaptureEnv<DualReal> {
    fn n_grad(&self) -> usize {
        self.n
    }
    fn across(&self, branch: usize) -> DualReal {
        DualReal::variable(self.across[branch], self.n, branch)
    }
    fn unknown(&self, index: usize) -> DualReal {
        DualReal::variable(self.unknowns[index], self.n, self.across.len() + index)
    }
    fn contribute(&mut self, branch: usize, value: DualReal) {
        self.events.push(Event::Contribute(branch, value));
    }
    fn residual(&mut self, index: usize, value: DualReal) {
        self.events.push(Event::Residual(index, value));
    }
    fn report(&mut self, message: &str) {
        self.events.push(Event::Report(message.to_string()));
    }
}

impl EvalEnv<DualComplex> for CaptureEnv<DualComplex> {
    fn n_grad(&self) -> usize {
        self.n
    }
    fn across(&self, branch: usize) -> DualComplex {
        DualComplex::variable(self.across[branch], self.n, branch)
    }
    fn unknown(&self, index: usize) -> DualComplex {
        DualComplex::variable(self.unknowns[index], self.n, self.across.len() + index)
    }
    fn contribute(&mut self, branch: usize, value: DualComplex) {
        self.events.push(Event::Contribute(branch, value));
    }
    fn residual(&mut self, index: usize, value: DualComplex) {
        self.events.push(Event::Residual(index, value));
    }
    fn report(&mut self, message: &str) {
        self.events.push(Event::Report(message.to_string()));
    }
}

/// NaN/∞-tolerant closeness: bitwise-equal specials count as
/// agreeing (`inf − inf` is NaN, so the difference test alone would
/// reject matching infinities).
fn close(a: f64, b: f64) -> bool {
    a == b || (a.is_nan() && b.is_nan()) || (a - b).abs() <= TOL * 1.0_f64.max(a.abs().max(b.abs()))
}

trait GradDual {
    fn val(&self) -> f64;
    fn grad_close(&self, other: &Self) -> bool;
}

impl GradDual for DualReal {
    fn val(&self) -> f64 {
        self.v
    }
    fn grad_close(&self, other: &Self) -> bool {
        self.g.len() == other.g.len() && self.g.iter().zip(&other.g).all(|(a, b)| close(*a, *b))
    }
}

impl GradDual for DualComplex {
    fn val(&self) -> f64 {
        self.v
    }
    fn grad_close(&self, other: &Self) -> bool {
        self.g.len() == other.g.len()
            && self
                .g
                .iter()
                .zip(&other.g)
                .all(|(a, b)| close(a.re, b.re) && close(a.im, b.im))
    }
}

fn events_match<S: GradDual>(tree: &[Event<S>], byte: &[Event<S>]) -> Result<(), String> {
    if tree.len() != byte.len() {
        return Err(format!("event count {} vs {}", tree.len(), byte.len()));
    }
    for (i, (a, b)) in tree.iter().zip(byte).enumerate() {
        let ok = match (a, b) {
            (Event::Contribute(ba, va), Event::Contribute(bb, vb)) => {
                ba == bb && close(va.val(), vb.val()) && va.grad_close(vb)
            }
            (Event::Residual(ia, va), Event::Residual(ib, vb)) => {
                ia == ib && close(va.val(), vb.val()) && va.grad_close(vb)
            }
            (Event::Report(ma), Event::Report(mb)) => ma == mb,
            _ => false,
        };
        if !ok {
            return Err(format!("event {i} diverges"));
        }
    }
    Ok(())
}

fn scratch_match(a: &InstanceState, b: &InstanceState) -> Result<(), String> {
    for (i, (x, y)) in a.scratch_objects.iter().zip(&b.scratch_objects).enumerate() {
        if !close(*x, *y) {
            return Err(format!("scratch object {i}: {x} vs {y}"));
        }
    }
    for (i, (x, y)) in a.scratch_ddt.iter().zip(&b.scratch_ddt).enumerate() {
        if !(close(x.0, y.0) && close(x.1, y.1)) {
            return Err(format!("ddt scratch {i}: {x:?} vs {y:?}"));
        }
    }
    for (i, (x, y)) in a.scratch_integ.iter().zip(&b.scratch_integ).enumerate() {
        if !(close(x.0, y.0) && close(x.1, y.1)) {
            return Err(format!("integ scratch {i}: {x:?} vs {y:?}"));
        }
    }
    if a.reports != b.reports {
        return Err("reports diverge".into());
    }
    Ok(())
}

/// Runs one analysis through both evaluators and compares everything.
/// Returns `Ok(true)` when both succeeded (the chain may continue),
/// `Ok(false)` when both failed identically, `Err` on divergence.
#[allow(clippy::too_many_arguments)]
fn compare_real(
    case: &Case,
    analysis: Analysis,
    st_tree: &mut InstanceState,
    st_byte: &mut InstanceState,
    bank: &mut RegBank<DualReal>,
) -> Result<bool, String> {
    let n = N_BRANCHES + case.unknowns.len();
    let mut env_tree = CaptureEnv::<DualReal>::new(n, &case.across, &case.unknowns);
    let mut env_byte = CaptureEnv::<DualReal>::new(n, &case.across, &case.unknowns);
    let r_tree = run_pass(
        &case.model,
        analysis,
        &case.generics,
        &case.init_values,
        &case.tables,
        st_tree,
        &mut env_tree,
    );
    let r_byte = run_pass_bytecode(
        &case.model,
        &case.code,
        analysis,
        &case.generics,
        &case.init_values,
        &case.tables,
        st_byte,
        bank,
        &mut env_byte,
    );
    match (r_tree, r_byte) {
        (Ok(()), Ok(())) => {
            events_match(&env_tree.events, &env_byte.events)?;
            scratch_match(st_tree, st_byte)?;
            Ok(true)
        }
        (Err(a), Err(b)) => {
            if a.to_string() == b.to_string() {
                Ok(false)
            } else {
                Err(format!("different errors: `{a}` vs `{b}`"))
            }
        }
        (Ok(()), Err(e)) => Err(format!("only bytecode failed: {e}")),
        (Err(e), Ok(())) => Err(format!("only tree walk failed: {e}")),
    }
}

fn compare_ac(
    case: &Case,
    omega: f64,
    st_tree: &mut InstanceState,
    st_byte: &mut InstanceState,
    bank: &mut RegBank<DualComplex>,
) -> Result<bool, String> {
    let n = N_BRANCHES + case.unknowns.len();
    let mut env_tree = CaptureEnv::<DualComplex>::new(n, &case.across, &case.unknowns);
    let mut env_byte = CaptureEnv::<DualComplex>::new(n, &case.across, &case.unknowns);
    let analysis = Analysis::Ac { omega };
    let r_tree = run_pass(
        &case.model,
        analysis,
        &case.generics,
        &case.init_values,
        &case.tables,
        st_tree,
        &mut env_tree,
    );
    let r_byte = run_pass_bytecode(
        &case.model,
        &case.code,
        analysis,
        &case.generics,
        &case.init_values,
        &case.tables,
        st_byte,
        bank,
        &mut env_byte,
    );
    match (r_tree, r_byte) {
        (Ok(()), Ok(())) => {
            events_match(&env_tree.events, &env_byte.events)?;
            Ok(true)
        }
        (Err(a), Err(b)) if a.to_string() == b.to_string() => Ok(false),
        (a, b) => Err(format!("divergent outcomes: {a:?} vs {b:?}")),
    }
}

// ---------------------------------------------------------------
// The differential properties
// ---------------------------------------------------------------

proptest! {
    /// Full DC → transient chain: both evaluators agree pass by pass,
    /// through commits, across integration methods — with one bank
    /// reused for every pass (shape changes included).
    #[test]
    fn dc_and_transient_chains_agree(seed in 0i64..1_000_000_000) {
        let case = build_case(seed);
        let mut st_tree = InstanceState::for_model(&case.model);
        let mut st_byte = InstanceState::for_model(&case.model);
        // Seed the STATE object's committed value identically.
        st_tree.committed[2] = 0.25;
        st_byte.committed[2] = 0.25;
        let mut bank = RegBank::<DualReal>::default();

        let dc = compare_real(&case, Analysis::Dc, &mut st_tree, &mut st_byte, &mut bank)
            .map_err(|e| TestCaseError(format!("seed {seed}, dc: {e}")))?;
        if dc {
            st_tree.commit_dc();
            st_byte.commit_dc();
            let h = 1e-4;
            let steps = [
                (h, h, IntegrationMethod::BackwardEuler),
                (2.0 * h, h, IntegrationMethod::Trapezoidal),
                (3.0 * h, h, IntegrationMethod::Gear2),
            ];
            for (t, h, method) in steps {
                let ok = compare_real(
                    &case,
                    Analysis::Transient { t, h, method },
                    &mut st_tree,
                    &mut st_byte,
                    &mut bank,
                )
                .map_err(|e| TestCaseError(format!("seed {seed}, tran t={t}: {e}")))?;
                if !ok {
                    break;
                }
                st_tree.commit_transient(h);
                st_byte.commit_transient(h);
                for (a, b) in st_tree.committed.iter().zip(&st_byte.committed) {
                    prop_assert!(close(*a, *b), "committed diverges: {a} vs {b}");
                }
            }
        }
    }

    /// AC small-signal linearization: complex gradients agree entry
    /// by entry (after a shared DC commit priming the histories).
    #[test]
    fn ac_linearizations_agree(seed in 0i64..1_000_000_000) {
        let case = build_case(seed);
        let mut st_tree = InstanceState::for_model(&case.model);
        let mut st_byte = InstanceState::for_model(&case.model);
        st_tree.committed[2] = -0.5;
        st_byte.committed[2] = -0.5;
        let mut bank_r = RegBank::<DualReal>::default();
        let mut bank_c = RegBank::<DualComplex>::default();

        let dc = compare_real(&case, Analysis::Dc, &mut st_tree, &mut st_byte, &mut bank_r)
            .map_err(|e| TestCaseError(format!("seed {seed}, dc: {e}")))?;
        if dc {
            st_tree.commit_dc();
            st_byte.commit_dc();
            for omega in [1.0, 6.28e3] {
                let ok = compare_ac(&case, omega, &mut st_tree, &mut st_byte, &mut bank_c)
                    .map_err(|e| TestCaseError(format!("seed {seed}, ac ω={omega}: {e}")))?;
                if !ok {
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------
// Deterministic fixtures
// ---------------------------------------------------------------

/// The paper's Listing 1 through the full `HdlModel` front end: one
/// instance per evaluator, driven through a DC → transient → AC
/// sequence; contributions must match exactly.
#[test]
fn eletran_instance_modes_agree() {
    const LISTING1: &str = r#"
ENTITY eletran IS
 GENERIC (A, d, er : analog);
 PIN (a, b : electrical; c, d : mechanical1);
END ENTITY eletran;
ARCHITECTURE a OF eletran IS
VARIABLE e0, x : analog;
STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, d].tv;
      x := integ(S);
      [a, b].i %= e0*er*A/(d + x)*ddt(V);
      [c, d].f %= -e0*er*A*V*V/(2.0*(d+x)*(d+x));
  END RELATION;
END ARCHITECTURE a;
"#;
    let model = HdlModel::compile(LISTING1, "eletran", None).unwrap();
    let generics = [("a", 1.0e-4), ("d", 0.15e-3), ("er", 1.0)];
    let mut tree = model.instantiate("x1", &generics).unwrap();
    tree.set_eval_mode(EvalMode::TreeWalk);
    let mut byte = model.instantiate("x2", &generics).unwrap();
    assert_eq!(byte.eval_mode(), EvalMode::Bytecode);

    let run = |inst: &mut mems::hdl::Instance, volts: f64, vel: f64, step: Option<f64>| {
        let mut env = CaptureEnv::<DualReal>::new(2, &[volts, vel], &[]);
        match step {
            None => inst.eval_dc(&mut env).unwrap(),
            Some(h) => inst
                .eval_transient(h, h, IntegrationMethod::BackwardEuler, &mut env)
                .unwrap(),
        }
        env.events
    };

    // DC at 10 V.
    let (a, b) = (
        run(&mut tree, 10.0, 0.0, None),
        run(&mut byte, 10.0, 0.0, None),
    );
    events_match(&a, &b).unwrap();
    tree.commit_dc();
    byte.commit_dc();

    // Three transient steps with a closing gap.
    for k in 1..=3 {
        let h = 1e-5;
        let (a, b) = (
            run(&mut tree, 10.0 + k as f64, 1e-6, Some(h)),
            run(&mut byte, 10.0 + k as f64, 1e-6, Some(h)),
        );
        events_match(&a, &b).unwrap_or_else(|e| panic!("step {k}: {e}"));
        tree.commit_transient(h);
        byte.commit_transient(h);
    }

    // AC at 1 kHz on the committed operating point.
    let omega = 2.0 * std::f64::consts::PI * 1e3;
    let mut env_a = CaptureEnv::<DualComplex>::new(2, &[10.0, 0.0], &[]);
    let mut env_b = CaptureEnv::<DualComplex>::new(2, &[10.0, 0.0], &[]);
    tree.eval_ac(omega, &mut env_a).unwrap();
    byte.eval_ac(omega, &mut env_b).unwrap();
    events_match(&env_a.events, &env_b.events).unwrap();
    // Sanity anchor: the electrical branch admittance is jωC (the
    // committed displacement of ~3e-11 m shifts C by ~2e-7 relative,
    // hence the loose bound).
    let c0 = 8.8542e-12 * 1.0e-4 / 0.15e-3;
    match &env_b.events[0] {
        Event::Contribute(0, v) => {
            let di_dv = v.g[0];
            assert!((di_dv - Complex64::new(0.0, omega * c0)).abs() < omega * c0 * 1e-4);
        }
        _ => panic!("expected the electrical contribution first"),
    }
}

/// Table lookups, selection builtins, and `if`/`elsif` chains through
/// the HDL front end: both evaluators, same numbers.
#[test]
fn table_and_branch_model_modes_agree() {
    const SRC: &str = r#"
ENTITY shaper IS
  GENERIC (k : analog := 2.0);
  PIN (p, q : electrical);
END ENTITY shaper;
ARCHITECTURE a OF shaper IS
VARIABLE y : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      y := table1d([p, q].v, -1.0, -2.0, 0.0, 0.5, 1.0, 3.0);
      IF [p, q].v < 0.0 THEN
        y := y + limit([p, q].v, -0.25, 0.25);
      ELSIF [p, q].v > 2.0 THEN
        y := max(y, k);
      ELSE
        y := min(y, k * [p, q].v);
      END IF;
      [p, q].i %= y;
  END RELATION;
END ARCHITECTURE a;
"#;
    let model = HdlModel::compile(SRC, "shaper", None).unwrap();
    let mut tree = model.instantiate("t", &[]).unwrap();
    tree.set_eval_mode(EvalMode::TreeWalk);
    let mut byte = model.instantiate("b", &[]).unwrap();

    for v in [-1.5, -0.6, -0.1, 0.0, 0.3, 0.9, 1.4, 2.5, 7.0] {
        let mut env_t = CaptureEnv::<DualReal>::new(1, &[v], &[]);
        let mut env_b = CaptureEnv::<DualReal>::new(1, &[v], &[]);
        tree.eval_dc(&mut env_t).unwrap();
        byte.eval_dc(&mut env_b).unwrap();
        events_match(&env_t.events, &env_b.events).unwrap_or_else(|e| panic!("v = {v}: {e}"));
    }
}

/// The three runtime error classes carry identical messages through
/// both evaluators.
#[test]
fn runtime_errors_match() {
    // 1. Failed assertion.
    let assert_model = CompiledModel {
        name: "guard".into(),
        arch: "a".into(),
        generics: vec![],
        pins: vec![
            PinInfo {
                name: "p".into(),
                nature: Nature::Electrical,
            },
            PinInfo {
                name: "q".into(),
                nature: Nature::Electrical,
            },
        ],
        branches: vec![BranchInfo {
            pin_a: 0,
            pin_b: 1,
            nature: Nature::Electrical,
        }],
        objects: vec![ObjectInfo {
            name: "x".into(),
            kind: ObjectKind::Variable,
            init: None,
            unknown_index: None,
        }],
        n_unknowns: 0,
        n_ddt_sites: 0,
        n_integ_sites: 0,
        tables: Vec::new(),
        init_program: vec![],
        dc_program: vec![CStmt::Assert {
            cond: CExpr::Binary(
                BinOp::Lt,
                Box::new(CExpr::Across(0)),
                Box::new(CExpr::Const(0.0)),
            ),
            message: "gap closed".into(),
        }],
        ac_program: vec![],
        tran_program: vec![],
    };

    // 2. Read of an unassigned variable.
    let mut unassigned_model = assert_model.clone();
    unassigned_model.dc_program = vec![CStmt::Contribute {
        branch: 0,
        value: CExpr::Object(0),
    }];

    // 3. Non-finite contribution (1/0).
    let mut nonfinite_model = assert_model.clone();
    nonfinite_model.dc_program = vec![CStmt::Contribute {
        branch: 0,
        value: CExpr::Binary(
            BinOp::Div,
            Box::new(CExpr::Const(1.0)),
            Box::new(CExpr::Binary(
                BinOp::Sub,
                Box::new(CExpr::Across(0)),
                Box::new(CExpr::Across(0)),
            )),
        ),
    }];

    for model in [&assert_model, &unassigned_model, &nonfinite_model] {
        let code = BytecodeModel::compile(model);
        let mut st_a = InstanceState::for_model(model);
        let mut st_b = InstanceState::for_model(model);
        let mut env_a = CaptureEnv::<DualReal>::new(1, &[1.0], &[]);
        let mut env_b = CaptureEnv::<DualReal>::new(1, &[1.0], &[]);
        let mut bank = RegBank::<DualReal>::default();
        let ea = run_pass(
            model,
            Analysis::Dc,
            &[],
            &[None],
            &[],
            &mut st_a,
            &mut env_a,
        )
        .unwrap_err();
        let eb = run_pass_bytecode(
            model,
            &code,
            Analysis::Dc,
            &[],
            &[None],
            &[],
            &mut st_b,
            &mut bank,
            &mut env_b,
        )
        .unwrap_err();
        assert_eq!(ea.to_string(), eb.to_string());
    }
}

// ---------------------------------------------------------------
// `init` program: compiled tape vs tree interpreter
// ---------------------------------------------------------------

/// Asserts both init evaluators produce bit-identical value vectors —
/// or identical error messages — for every generic binding given.
fn assert_init_paths_agree(src: &str, entity: &str, bindings: &[Vec<f64>]) {
    let model = HdlModel::compile(src, entity, None).unwrap();
    assert!(
        model.bytecode().init.is_some(),
        "{entity}: init program should compile to a tape"
    );
    for bound in bindings {
        let tree = model.init_values_with(bound, false);
        let tape = model.init_values_with(bound, true);
        match (tree, tape) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len());
                for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                    match (x, y) {
                        (Some(p), Some(q)) => assert_eq!(
                            p.to_bits(),
                            q.to_bits(),
                            "{entity} object {i} under {bound:?}: {p:e} vs {q:e}"
                        ),
                        (None, None) => {}
                        other => panic!("{entity} object {i} under {bound:?}: {other:?}"),
                    }
                }
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "{entity} under {bound:?}");
            }
            (a, b) => panic!("{entity} under {bound:?}: one path failed: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn init_tape_matches_tree_walk_on_branchy_programs() {
    // Branches on generics, shadowed assignments, selection builtins,
    // derived constants — the shapes `init` blocks actually take.
    let src = r#"
ENTITY gapcell IS
  GENERIC (g0, mode : analog);
  PIN (p, q : electrical);
END ENTITY gapcell;
ARCHITECTURE a OF gapcell IS
VARIABLE e0, gap, c0, guard : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
      IF mode > 1.5 THEN
        gap := g0 * 2.0;
      ELSIF mode > 0.5 THEN
        gap := limit(g0, 1.0e-6, 1.0e-3);
      ELSE
        gap := max(g0, 1.0e-6);
      END IF;
      guard := min(gap, 1.0e-3);
      ASSERT gap > 0.0 REPORT "gap must be positive";
      c0 := e0 / gap;
    PROCEDURAL FOR dc, ac, transient =>
      [p, q].i %= c0 * [p, q].v;
  END RELATION;
END ARCHITECTURE a;
"#;
    let mut bindings = vec![
        vec![0.15e-3, 0.0],
        vec![0.15e-3, 1.0],
        vec![0.15e-3, 2.0],
        vec![1.0e-9, 1.0],
        vec![-1.0, 0.0],          // max() keeps it positive
        vec![-1.0, 2.0],          // assertion fails on both paths
        vec![f64::NAN, 0.0],      // NaN flows identically
        vec![f64::INFINITY, 1.0], // limit() clamps
    ];
    // A deterministic spray of additional points.
    let mut x = 0x9e3779b97f4a7c15u64;
    for _ in 0..64 {
        x = x.wrapping_mul(0xd1342543de82ef95).wrapping_add(1);
        let g0 = ((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 1e-3;
        let mode = ((x >> 3) % 3) as f64;
        bindings.push(vec![g0, mode]);
    }
    assert_init_paths_agree(src, "gapcell", &bindings);
}

#[test]
fn init_tape_matches_tree_walk_on_listing1() {
    let src = r#"
ENTITY eletran IS
 GENERIC (A, d, er : analog);
 PIN (a, b : electrical; c, d : mechanical1);
END ENTITY eletran;
ARCHITECTURE a OF eletran IS
VARIABLE e0, x : analog;
STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, d].tv;
      x := integ(S);
      [a, b].i %= e0*er*A/(d + x)*ddt(V);
      [c, d].f %= -e0*er*A*V*V/(2.0*(d+x)*(d+x));
  END RELATION;
END ARCHITECTURE a;
"#;
    assert_init_paths_agree(
        src,
        "eletran",
        &[vec![1.0e-4, 0.15e-3, 1.0], vec![2.0e-4, 1.0e-4, 3.9]],
    );
}

#[test]
fn init_unassigned_read_errors_identically() {
    // `gap` is read before any assignment: both evaluators must
    // refuse with the same message.
    let src = r#"
ENTITY broken IS
  GENERIC (g0 : analog := 1.0);
  PIN (p, q : electrical);
END ENTITY broken;
ARCHITECTURE a OF broken IS
VARIABLE gap, c0 : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      c0 := gap * g0;
    PROCEDURAL FOR dc, ac, transient =>
      [p, q].i %= c0 * [p, q].v;
  END RELATION;
END ARCHITECTURE a;
"#;
    let model = HdlModel::compile(src, "broken", None).unwrap();
    let tree = model.init_values_with(&[1.0], false).unwrap_err();
    let tape = model.init_values_with(&[1.0], true).unwrap_err();
    assert_eq!(tree.to_string(), tape.to_string());
    assert!(tree.to_string().contains("no value yet"), "{tree}");
}

#[test]
fn unsupported_init_programs_fall_back_to_tree_walk() {
    // A hand-built init program with a contribution: inexpressible on
    // the init VM, so compile_init_program declines and the model
    // keeps the tree interpreter (whose "unsupported statement"
    // diagnostic fires at elaboration).
    use mems::hdl::bytecode::compile_init_program;
    let contribute = vec![CStmt::Contribute {
        branch: 0,
        value: CExpr::Const(1.0),
    }];
    assert!(compile_init_program(&contribute).is_none());
    let across = vec![CStmt::Assign {
        object: 0,
        value: CExpr::Across(0),
    }];
    assert!(compile_init_program(&across).is_none());
    let fine = vec![CStmt::Assign {
        object: 0,
        value: CExpr::Call(Builtin::Sqrt, vec![CExpr::Generic(0)]),
    }];
    assert!(compile_init_program(&fine).is_some());
}

// ---------------------------------------------------------------
// table1d breakpoint folding: fold tape vs tree folder
// ---------------------------------------------------------------

/// Compares both table-fold paths for every binding: bit-identical
/// breakpoints on success, identical messages on failure.
fn assert_table_folds_agree(src: &str, entity: &str, bindings: &[Vec<f64>]) {
    let model = HdlModel::compile(src, entity, None).unwrap();
    assert!(
        model.bytecode().table_fold.is_some(),
        "{entity}: breakpoints should compile to a fold tape"
    );
    for bound in bindings {
        let init = model
            .init_values_with(bound, true)
            .unwrap_or_else(|e| panic!("{entity}: init failed under {bound:?}: {e}"));
        let tree = model.fold_tables_with(bound, &init, false);
        let tape = model.fold_tables_with(bound, &init, true);
        match (tree, tape) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len());
                for (t, (ta, tb)) in a.iter().zip(&b).enumerate() {
                    assert_eq!(ta.xs().len(), tb.xs().len());
                    for i in 0..ta.xs().len() {
                        assert_eq!(
                            ta.xs()[i].to_bits(),
                            tb.xs()[i].to_bits(),
                            "{entity} table {t} x[{i}] under {bound:?}"
                        );
                        assert_eq!(
                            ta.ys()[i].to_bits(),
                            tb.ys()[i].to_bits(),
                            "{entity} table {t} y[{i}] under {bound:?}"
                        );
                    }
                }
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "{entity} under {bound:?}");
            }
            (a, b) => panic!("{entity} under {bound:?}: one path failed: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn table_fold_tape_matches_tree_folder() {
    // Breakpoints over generics and init-derived objects, including a
    // shape that inverts the axis for some bindings (both paths must
    // then report the identical invalid-breakpoints error through
    // `Pwl1::new`).
    let src = r#"
ENTITY tcell IS
  GENERIC (scale, span : analog);
  PIN (p, q : electrical);
END ENTITY tcell;
ARCHITECTURE a OF tcell IS
VARIABLE x0, gain : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      x0 := 0.0 - span;
      gain := max(scale, 0.1);
    PROCEDURAL FOR dc, ac, transient =>
      [p, q].i %= table1d([p, q].v,
        x0, 0.0 - gain,
        x0 * 0.5, 0.0 - gain * 0.5,
        0.0, 0.0,
        span * 0.5, gain * 0.5,
        span, gain);
  END RELATION;
END ARCHITECTURE a;
"#;
    let mut bindings = vec![
        vec![1.0, 1.0],
        vec![2.5, 0.3],
        vec![0.0, 2.0],  // gain clamps at 0.1
        vec![1.0, -1.0], // inverted axis: identical error both paths
        vec![1.0, 0.0],  // duplicate breakpoints: identical error
        vec![f64::NAN, 1.0],
    ];
    let mut x = 0xc0ffee_u64;
    for _ in 0..48 {
        x = x.wrapping_mul(0xd1342543de82ef95).wrapping_add(7);
        let scale = ((x >> 11) as f64 / (1u64 << 53) as f64) * 4.0;
        let span = ((x >> 7) as f64 / (1u64 << 57) as f64) * 2.0 - 0.25;
        bindings.push(vec![scale, span]);
    }
    assert_table_folds_agree(src, "tcell", &bindings);
}

#[test]
fn table_fold_unassigned_object_errors_identically() {
    // A breakpoint reads a variable the init program never assigns:
    // both folders must refuse with the tree folder's message.
    let src = r#"
ENTITY tlate IS
  GENERIC (g : analog := 1.0);
  PIN (p, q : electrical);
END ENTITY tlate;
ARCHITECTURE a OF tlate IS
VARIABLE never : analog;
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      never := [p, q].v;
      [p, q].i %= table1d([p, q].v, never, 0.0, g, 1.0);
  END RELATION;
END ARCHITECTURE a;
"#;
    let model = HdlModel::compile(src, "tlate", None).unwrap();
    assert!(model.bytecode().table_fold.is_some());
    let init = model.init_values_with(&[1.0], true).unwrap();
    let tree = model.fold_tables_with(&[1.0], &init, false).unwrap_err();
    let tape = model.fold_tables_with(&[1.0], &init, true).unwrap_err();
    assert_eq!(tree.to_string(), tape.to_string());
    assert!(tree.to_string().contains("no value yet"), "{tree}");
    // And the full instantiate path surfaces the same error.
    let err = model.instantiate("t1", &[]).unwrap_err();
    assert_eq!(err.to_string(), tree.to_string());
}

#[test]
fn runtime_breakpoints_decline_the_fold_tape() {
    // Inject a runtime-dependent breakpoint into a compiled model:
    // `compile_table_fold` must decline so the tree folder keeps its
    // "not a constant expression" diagnostic.
    use mems::hdl::bytecode::compile_table_fold;
    let src = r#"
ENTITY tok IS
  PIN (p, q : electrical);
END ENTITY tok;
ARCHITECTURE a OF tok IS
BEGIN
  RELATION
    PROCEDURAL FOR dc, ac, transient =>
      [p, q].i %= table1d([p, q].v, 0.0, 0.0, 1.0, 2.0);
  END RELATION;
END ARCHITECTURE a;
"#;
    let model = HdlModel::compile(src, "tok", None).unwrap();
    assert!(compile_table_fold(model.compiled()).is_some());
    let mut broken = model.compiled().clone();
    broken.tables[0].breakpoints[0].0 = CExpr::Across(0);
    assert!(compile_table_fold(&broken).is_none());
    // No tables at all → no tape either.
    let mut empty = model.compiled().clone();
    empty.tables.clear();
    assert!(compile_table_fold(&empty).is_none());
}
